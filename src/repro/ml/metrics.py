"""Classification statistics used by the fairness measures.

The paper's subgroup fairness (Definition 1) compares a statistic ``gamma``
computed on a subgroup against the same statistic on the whole dataset.  The
statistics here all accept an optional boolean ``mask`` restricting the rows
considered, so ``fpr(y, pred, mask=subgroup_mask)`` is the subgroup FPR and
``fpr(y, pred)`` is the dataset FPR.

All rate functions return ``nan`` when their denominator is empty (e.g. FPR
of a subgroup with no negative examples); callers treat ``nan`` statistics
as undefined rather than zero so empty groups never masquerade as fair.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError

FPR = "fpr"
FNR = "fnr"
ERROR_RATE = "error_rate"
ACCURACY = "accuracy"
POSITIVE_RATE = "positive_rate"

STATISTICS = (FPR, FNR, ERROR_RATE, ACCURACY, POSITIVE_RATE)


def _checked(
    y_true: np.ndarray, y_pred: np.ndarray, mask: np.ndarray | None
) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise DataError(
            f"y_true {y_true.shape} and y_pred {y_pred.shape} must be equal 1-D"
        )
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != y_true.shape:
            raise DataError(f"mask shape {mask.shape} != labels shape {y_true.shape}")
        y_true, y_pred = y_true[mask], y_pred[mask]
    return y_true, y_pred


def confusion(
    y_true: np.ndarray, y_pred: np.ndarray, mask: np.ndarray | None = None
) -> tuple[int, int, int, int]:
    """``(tp, fp, tn, fn)`` over the (optionally masked) rows."""
    y_true, y_pred = _checked(y_true, y_pred, mask)
    tp = int(((y_true == 1) & (y_pred == 1)).sum())
    fp = int(((y_true == 0) & (y_pred == 1)).sum())
    tn = int(((y_true == 0) & (y_pred == 0)).sum())
    fn = int(((y_true == 1) & (y_pred == 0)).sum())
    return tp, fp, tn, fn


def fpr(
    y_true: np.ndarray, y_pred: np.ndarray, mask: np.ndarray | None = None
) -> float:
    """False-positive rate ``Pr[h(x)=1 | y=0]``; nan when no negatives."""
    __, fp, tn, __ = confusion(y_true, y_pred, mask)
    negatives = fp + tn
    return fp / negatives if negatives else float("nan")


def fnr(
    y_true: np.ndarray, y_pred: np.ndarray, mask: np.ndarray | None = None
) -> float:
    """False-negative rate ``Pr[h(x)=0 | y=1]``; nan when no positives."""
    tp, __, __, fn = confusion(y_true, y_pred, mask)
    positives = tp + fn
    return fn / positives if positives else float("nan")


def accuracy(
    y_true: np.ndarray, y_pred: np.ndarray, mask: np.ndarray | None = None
) -> float:
    """Fraction of correct predictions; nan on an empty selection."""
    y_true, y_pred = _checked(y_true, y_pred, mask)
    if y_true.size == 0:
        return float("nan")
    return float((y_true == y_pred).mean())


def error_rate(
    y_true: np.ndarray, y_pred: np.ndarray, mask: np.ndarray | None = None
) -> float:
    """``P(h(x) != y)``; nan on an empty selection."""
    acc = accuracy(y_true, y_pred, mask)
    return float("nan") if np.isnan(acc) else 1.0 - acc


def zero_one_loss(
    y_true: np.ndarray, y_pred: np.ndarray, mask: np.ndarray | None = None
) -> float:
    """Absolute count of misclassifications ``sum(I(h(x) != y))`` (§VI)."""
    y_true, y_pred = _checked(y_true, y_pred, mask)
    return float((np.asarray(y_true) != np.asarray(y_pred)).sum())


def positive_rate(
    y_true: np.ndarray, y_pred: np.ndarray, mask: np.ndarray | None = None
) -> float:
    """``P(h(x)=1)`` — the statistic behind statistical parity (§VI)."""
    __, y_pred = _checked(y_true, y_pred, mask)
    if y_pred.size == 0:
        return float("nan")
    return float((np.asarray(y_pred) == 1).mean())


_STATISTIC_FUNCS = {
    FPR: fpr,
    FNR: fnr,
    ERROR_RATE: error_rate,
    ACCURACY: accuracy,
    POSITIVE_RATE: positive_rate,
}


def statistic(
    name: str,
    y_true: np.ndarray,
    y_pred: np.ndarray,
    mask: np.ndarray | None = None,
) -> float:
    """Dispatch a statistic by name (one of :data:`STATISTICS`)."""
    try:
        func = _STATISTIC_FUNCS[name]
    except KeyError:
        raise DataError(
            f"unknown statistic {name!r}; choose from {STATISTICS}"
        ) from None
    return func(y_true, y_pred, mask)


def error_indicator(name: str, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """Per-instance 0/1 indicator whose conditional mean equals the statistic.

    Used by the t-test behind the fairness index: for FPR the indicator is
    ``h(x)=1`` restricted to true negatives, for FNR ``h(x)=0`` restricted to
    true positives, etc.  Returns a float array with ``nan`` at rows outside
    the statistic's conditioning event.
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    out = np.full(y_true.shape, np.nan)
    if name == FPR:
        sel = y_true == 0
        out[sel] = (y_pred[sel] == 1).astype(float)
    elif name == FNR:
        sel = y_true == 1
        out[sel] = (y_pred[sel] == 0).astype(float)
    elif name in (ERROR_RATE, ACCURACY):
        correct = (y_true == y_pred).astype(float)
        out = correct if name == ACCURACY else 1.0 - correct
    elif name == POSITIVE_RATE:
        out = (y_pred == 1).astype(float)
    else:
        raise DataError(f"unknown statistic {name!r}; choose from {STATISTICS}")
    return out
