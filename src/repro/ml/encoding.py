"""Dataset → design-matrix encoding for the matrix-level classifiers.

The encoder one-hot expands categorical columns and passes numeric columns
through unchanged (classifiers standardise internally where they need to).
It is fitted once on the training schema so train and test encode to the
same column layout — a new dataset with a different schema is rejected.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import FitError, SchemaError


class DatasetEncoder:
    """One-hot + passthrough encoder with a frozen column layout.

    Parameters
    ----------
    features:
        Column names to encode, in order.  ``None`` means every schema
        column.  The paper's downstream classifiers train on all attributes
        (protected ones included — e.g. its decision tree splits on race and
        age), so the default includes them.
    exclude:
        Convenience subtraction applied to ``features``.
    """

    def __init__(
        self,
        features: Sequence[str] | None = None,
        exclude: Sequence[str] = (),
    ):
        self._requested = tuple(features) if features is not None else None
        self._exclude = tuple(exclude)
        self._fitted = False

    def fit(self, dataset: Dataset) -> "DatasetEncoder":
        names = (
            self._requested if self._requested is not None else dataset.schema.names
        )
        names = tuple(n for n in names if n not in self._exclude)
        dataset.schema.require(names)
        if not names:
            raise FitError("encoder has no features to encode")
        self._features = names
        self._schema = dataset.schema.subset(names)
        self._fitted = True
        return self

    @property
    def features(self) -> tuple[str, ...]:
        if not self._fitted:
            raise FitError("encoder must be fitted first")
        return self._features

    @property
    def n_output_columns(self) -> int:
        """Width of the encoded design matrix."""
        if not self._fitted:
            raise FitError("encoder must be fitted first")
        width = 0
        for col in self._schema:
            width += col.cardinality if col.is_categorical else 1
        return width

    def transform(self, dataset: Dataset) -> np.ndarray:
        """Encode ``dataset`` with the fitted layout."""
        if not self._fitted:
            raise FitError("encoder must be fitted first")
        for col in self._schema:
            if col.name not in dataset.schema:
                raise SchemaError(f"dataset is missing encoded column {col.name!r}")
            other = dataset.schema[col.name]
            if other != col:
                raise SchemaError(
                    f"column {col.name!r} changed between fit and transform"
                )
        return dataset.feature_matrix(self._features, one_hot=True)

    def fit_transform(self, dataset: Dataset) -> np.ndarray:
        return self.fit(dataset).transform(dataset)
