"""From-scratch ML substrate: classifiers, metrics, encoding, model search."""

from repro.ml.base import Classifier, check_X, check_Xy
from repro.ml.calibration import (
    brier_score,
    calibration_curve,
    expected_calibration_error,
)
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.encoding import DatasetEncoder
from repro.ml.forest import RandomForestClassifier
from repro.ml.grid_search import GridSearchResult, grid_search, iter_grid
from repro.ml.knn import nearest_neighbors, pairwise_sq_distances
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.metrics import (
    ACCURACY,
    ERROR_RATE,
    FNR,
    FPR,
    POSITIVE_RATE,
    STATISTICS,
    accuracy,
    confusion,
    error_indicator,
    error_rate,
    fnr,
    fpr,
    positive_rate,
    statistic,
    zero_one_loss,
)
from repro.ml.models import (
    MODEL_NAMES,
    DatasetClassifier,
    make_estimator,
    make_model,
)
from repro.ml.ranking import group_auc_divergence, roc_auc
from repro.ml.naive_bayes import (
    CategoricalNaiveBayes,
    GaussianNaiveBayes,
    MixedNaiveBayes,
)
from repro.ml.neural import NeuralNetworkClassifier
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "Classifier",
    "check_X",
    "check_Xy",
    "DatasetEncoder",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "GradientBoostingClassifier",
    "LogisticRegressionClassifier",
    "NeuralNetworkClassifier",
    "CategoricalNaiveBayes",
    "GaussianNaiveBayes",
    "MixedNaiveBayes",
    "DatasetClassifier",
    "make_estimator",
    "make_model",
    "MODEL_NAMES",
    "grid_search",
    "iter_grid",
    "GridSearchResult",
    "nearest_neighbors",
    "pairwise_sq_distances",
    "accuracy",
    "confusion",
    "error_indicator",
    "error_rate",
    "fnr",
    "fpr",
    "positive_rate",
    "statistic",
    "zero_one_loss",
    "brier_score",
    "calibration_curve",
    "expected_calibration_error",
    "roc_auc",
    "group_auc_divergence",
    "ACCURACY",
    "ERROR_RATE",
    "FNR",
    "FPR",
    "POSITIVE_RATE",
    "STATISTICS",
]
