"""Brute-force k-nearest-neighbour search.

Used by the Fair-SMOTE baseline (§V-A.c) to find within-group neighbours for
synthetic-point interpolation, and by its deliberately expensive runtime
profile in the Table III reproduction.  Distances are Euclidean; computation
is blocked so memory stays bounded on large inputs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


def pairwise_sq_distances(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of ``A`` and rows of ``B``."""
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[1]:
        raise DataError(
            f"incompatible shapes for distance: {A.shape} vs {B.shape}"
        )
    # ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b ; clip tiny negatives from
    # floating-point cancellation.
    sq = (
        (A * A).sum(axis=1)[:, None]
        + (B * B).sum(axis=1)[None, :]
        - 2.0 * (A @ B.T)
    )
    return np.maximum(sq, 0.0)


def nearest_neighbors(
    X: np.ndarray, k: int, block_size: int = 1024
) -> np.ndarray:
    """Indices of each row's ``k`` nearest *other* rows (shape ``(n, k)``).

    When fewer than ``k`` other rows exist, the available neighbours are
    cycled to fill the row, so the result is always rectangular.
    """
    X = np.asarray(X, dtype=np.float64)
    n = X.shape[0]
    if n < 2:
        raise DataError("need at least 2 rows for neighbour search")
    if k < 1:
        raise DataError("k must be >= 1")
    k_eff = min(k, n - 1)
    out = np.empty((n, k), dtype=np.int64)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        d = pairwise_sq_distances(X[start:stop], X)
        rows = np.arange(start, stop)
        d[np.arange(stop - start), rows] = np.inf  # exclude self
        idx = np.argpartition(d, k_eff - 1, axis=1)[:, :k_eff]
        # Order the k_eff candidates by actual distance for determinism.
        order = np.argsort(np.take_along_axis(d, idx, axis=1), axis=1)
        idx = np.take_along_axis(idx, order, axis=1)
        if k_eff < k:
            reps = int(np.ceil(k / k_eff))
            idx = np.tile(idx, (1, reps))[:, :k]
        out[start:stop] = idx
    return out
