"""L2-regularised logistic regression fitted by IRLS (Newton) iterations.

Replacement for sklearn's ``LogisticRegression`` — the paper's LG downstream
model and, importantly, the linear learner used in the Table III comparison
against GerryFair.  Supports sample weights.  Features are standardised
internally so the Newton solver is well conditioned regardless of the
caller's encoding.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FitError, NotFittedError
from repro.ml.base import Classifier, check_X, check_Xy


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegressionClassifier(Classifier):
    """Binary logistic regression.

    Parameters
    ----------
    l2:
        L2 penalty strength on the (standardised) coefficients; the
        intercept is not penalised.
    max_iter / tol:
        IRLS iteration budget and convergence tolerance on the coefficient
        update norm.
    """

    def __init__(self, l2: float = 1.0, max_iter: int = 50, tol: float = 1e-6):
        if l2 < 0:
            raise FitError("l2 must be non-negative")
        if max_iter < 1:
            raise FitError("max_iter must be >= 1")
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol
        self._n_features: int | None = None
        self._coef: np.ndarray | None = None
        self._intercept: float = 0.0
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "LogisticRegressionClassifier":
        X, y, w = check_Xy(X, y, sample_weight)
        self._n_features = X.shape[1]
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        self._scale = scale
        Z = (X - self._mean) / scale

        n, m = Z.shape
        beta = np.zeros(m + 1)  # [intercept, coefs]
        design = np.hstack([np.ones((n, 1)), Z])
        ridge = np.diag([0.0] + [self.l2] * m)
        w_norm = w * (n / w.sum())  # keep the ridge strength scale-invariant

        for _ in range(self.max_iter):
            eta = design @ beta
            mu = _sigmoid(eta)
            # IRLS working weights; clip so the Hessian stays invertible.
            s = np.clip(mu * (1.0 - mu), 1e-6, None) * w_norm
            grad = design.T @ (w_norm * (y - mu)) - ridge @ beta
            hess = (design * s[:, None]).T @ design + ridge
            try:
                step = np.linalg.solve(hess, grad)
            except np.linalg.LinAlgError:
                step = np.linalg.lstsq(hess, grad, rcond=None)[0]
            beta += step
            if np.linalg.norm(step) < self.tol:
                break

        self._intercept = float(beta[0])
        self._coef = beta[1:]
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        n_features = self._require_fitted()
        X = check_X(X, n_features)
        if self._coef is None or self._mean is None:
            raise NotFittedError("predict_proba called before fit")
        Z = (X - self._mean) / self._scale
        return _sigmoid(Z @ self._coef + self._intercept)

    @property
    def coef_(self) -> np.ndarray:
        """Fitted coefficients in the standardised feature space."""
        self._require_fitted()
        if self._coef is None:
            raise NotFittedError("coef_ accessed before fit")
        return self._coef.copy()

    @property
    def intercept_(self) -> float:
        self._require_fitted()
        return self._intercept
