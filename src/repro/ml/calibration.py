"""Probability calibration diagnostics.

The remedy changes the training distribution, so a natural question beyond
the paper's accuracy measurements is whether the downstream model's
*probabilities* stay calibrated.  These utilities support that ablation:

* :func:`brier_score` — mean squared error of predicted probabilities;
* :func:`expected_calibration_error` — the standard binned |confidence −
  accuracy| average (ECE);
* :func:`calibration_curve` — per-bin mean prediction vs. empirical rate.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


def _checked_probs(y_true: np.ndarray, probs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    probs = np.asarray(probs, dtype=np.float64)
    if y_true.shape != probs.shape or y_true.ndim != 1:
        raise DataError(
            f"y_true {y_true.shape} and probs {probs.shape} must be equal 1-D"
        )
    if y_true.size == 0:
        raise DataError("need at least one prediction")
    if (probs < 0).any() or (probs > 1).any():
        raise DataError("probabilities must lie in [0, 1]")
    return y_true, probs


def brier_score(y_true: np.ndarray, probs: np.ndarray) -> float:
    """``mean((p - y)^2)`` — lower is better, 0.25 is the coin-flip level."""
    y_true, probs = _checked_probs(y_true, probs)
    return float(np.mean((probs - y_true) ** 2))


def calibration_curve(
    y_true: np.ndarray, probs: np.ndarray, n_bins: int = 10
) -> list[tuple[float, float, int]]:
    """Per-bin ``(mean_predicted, empirical_rate, count)``; empty bins skipped.

    Bins are equal-width over [0, 1]; the right edge is inclusive so a
    probability of exactly 1.0 lands in the last bin.
    """
    if n_bins < 2:
        raise DataError("need at least 2 bins")
    y_true, probs = _checked_probs(y_true, probs)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    bins = np.clip(np.digitize(probs, edges[1:-1], right=False), 0, n_bins - 1)
    out = []
    for b in range(n_bins):
        sel = bins == b
        count = int(sel.sum())
        if count == 0:
            continue
        out.append(
            (float(probs[sel].mean()), float(y_true[sel].mean()), count)
        )
    return out


def expected_calibration_error(
    y_true: np.ndarray, probs: np.ndarray, n_bins: int = 10
) -> float:
    """Count-weighted mean of per-bin |mean_predicted − empirical_rate|."""
    curve = calibration_curve(y_true, probs, n_bins=n_bins)
    total = sum(count for __, __r, count in curve)
    return float(
        sum(abs(p - r) * count for p, r, count in curve) / total
    )
