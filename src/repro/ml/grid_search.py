"""Grid search with k-fold cross-validation.

The paper tunes each downstream classifier's hyperparameters by grid search
(§V-A.b).  This is a small, dependency-free implementation: it takes an
estimator factory, a parameter grid, and returns the best parameters by mean
CV accuracy, with deterministic tie-breaking (first grid point wins).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.data.split import kfold_indices
from repro.errors import FitError, InternalError
from repro.ml.base import Classifier
from repro.ml.metrics import accuracy


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of a grid search."""

    best_params: dict[str, object]
    best_score: float
    scores: tuple[tuple[dict[str, object], float], ...]


def iter_grid(grid: Mapping[str, Sequence[object]]) -> Iterator[dict[str, object]]:
    """Yield every parameter combination of ``grid`` as a dict."""
    if not grid:
        yield {}
        return
    keys = list(grid)
    for combo in itertools.product(*(grid[k] for k in keys)):
        yield dict(zip(keys, combo))


def grid_search(
    factory: Callable[..., Classifier],
    grid: Mapping[str, Sequence[object]],
    X: np.ndarray,
    y: np.ndarray,
    n_folds: int = 3,
    seed: int = 0,
) -> GridSearchResult:
    """Exhaustive CV grid search maximising accuracy.

    ``factory(**params)`` must build a fresh unfitted estimator.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    folds = kfold_indices(len(y), n_folds, seed=seed)
    all_idx = np.arange(len(y))

    scores: list[tuple[dict[str, object], float]] = []
    best_params: dict[str, object] | None = None
    best_score = -np.inf
    for params in iter_grid(grid):
        fold_scores = []
        for fold in folds:
            train_mask = np.ones(len(y), dtype=bool)
            train_mask[fold] = False
            train_idx = all_idx[train_mask]
            if len(np.unique(y[train_idx])) < 2:
                continue  # degenerate fold; skip rather than crash
            model = factory(**params)
            model.fit(X[train_idx], y[train_idx])
            fold_scores.append(accuracy(y[fold], model.predict(X[fold])))
        if not fold_scores:
            raise FitError("every CV fold was degenerate (single-class)")
        mean_score = float(np.mean(fold_scores))
        scores.append((params, mean_score))
        if mean_score > best_score:
            best_score = mean_score
            best_params = params
    if best_params is None:
        raise InternalError("grid search finished without selecting parameters")
    return GridSearchResult(best_params, best_score, tuple(scores))
