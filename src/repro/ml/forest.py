"""Random-forest classifier: bagged CART trees with feature subsampling.

Replacement for sklearn's ``RandomForestClassifier`` (the paper's RF
downstream model).  Each tree is trained on a bootstrap resample —
implemented as a multinomial reweighting of the original rows, which
composes correctly with user-supplied sample weights — and probabilities are
averaged across trees.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FitError
from repro.ml.base import Classifier, check_X, check_Xy
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier(Classifier):
    """Bagging ensemble of :class:`DecisionTreeClassifier`.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth / min_samples_leaf:
        Passed through to each tree.
    max_features:
        Features sampled per split; ``None`` uses ``ceil(sqrt(n_features))``.
    bootstrap:
        Draw a bootstrap resample per tree (True, default) or train every
        tree on the full data (False; trees then differ only via feature
        subsampling).
    random_state:
        Master seed; per-tree seeds are derived deterministically.
    """

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int = 10,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        bootstrap: bool = True,
        random_state: int = 0,
    ):
        if n_estimators < 1:
            raise FitError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self._trees: list[DecisionTreeClassifier] = []
        self._n_features: int | None = None

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "RandomForestClassifier":
        X, y, w = check_Xy(X, y, sample_weight)
        self._n_features = X.shape[1]
        n = X.shape[0]
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, int(np.ceil(np.sqrt(self._n_features))))
        rng = np.random.default_rng(self.random_state)

        self._trees = []
        for t in range(self.n_estimators):
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                random_state=int(rng.integers(2**31 - 1)),
            )
            if self.bootstrap:
                # Multinomial bootstrap expressed as integer row counts,
                # multiplied into the incoming sample weights.
                counts = rng.multinomial(n, np.full(n, 1.0 / n))
                tree_w = w * counts
                if tree_w.sum() <= 0:  # pathological resample; fall back
                    tree_w = w
                tree.fit(X, y, sample_weight=tree_w)
            else:
                tree.fit(X, y, sample_weight=w)
            self._trees.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        n_features = self._require_fitted()
        X = check_X(X, n_features)
        if not self._trees:
            raise FitError("forest has no trees; was fit() interrupted?")
        probs = np.zeros(X.shape[0])
        for tree in self._trees:
            probs += tree.predict_proba(X)
        return probs / len(self._trees)
