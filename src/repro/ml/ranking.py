"""Ranking quality metrics: ROC AUC and per-group AUC divergence.

AUC is threshold-free, which makes it a useful companion to the paper's
FPR/FNR statistics: a remedy that merely moves thresholds leaves AUC
unchanged, while one that alters what the model *learns* shifts it.  The
implementation uses the rank-statistic identity
``AUC = (R_pos − n_pos(n_pos+1)/2) / (n_pos · n_neg)`` with midrank tie
handling, equivalent to the Mann–Whitney U statistic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


def roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve; ``nan`` when a class is absent."""
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape or y_true.ndim != 1:
        raise DataError(
            f"y_true {y_true.shape} and scores {scores.shape} must be equal 1-D"
        )
    n_pos = int((y_true == 1).sum())
    n_neg = int((y_true == 0).sum())
    if n_pos == 0 or n_neg == 0:
        return float("nan")
    # Midranks: average rank within tied score groups.
    order = np.argsort(scores, kind="stable")
    ranks = np.empty(len(scores), dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    rank_sum_pos = float(ranks[y_true == 1].sum())
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return u / (n_pos * n_neg)


def group_auc_divergence(
    y_true: np.ndarray,
    scores: np.ndarray,
    mask: np.ndarray,
) -> float:
    """``|AUC_group − AUC_dataset|``; nan when either side is undefined."""
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != np.asarray(y_true).shape:
        raise DataError("mask shape does not match labels")
    overall = roc_auc(y_true, scores)
    group = roc_auc(np.asarray(y_true)[mask], np.asarray(scores)[mask])
    if np.isnan(overall) or np.isnan(group):
        return float("nan")
    return abs(group - overall)
