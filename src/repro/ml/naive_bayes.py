"""Naive Bayes classifiers.

The paper's preferential-sampling and massaging remedies rank "borderline"
instances with a naive-Bayes model (§IV-A).  Two matrix-level variants are
provided — categorical (Laplace-smoothed count tables over integer codes)
and Gaussian (class-conditional normals) — plus a mixed model that combines
both over a :class:`~repro.data.Dataset`, which is what the ranker uses.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import FitError
from repro.ml.base import Classifier, check_X, check_Xy


class CategoricalNaiveBayes(Classifier):
    """Naive Bayes over integer-coded categorical features.

    ``X`` holds integer codes; ``cardinalities`` gives the domain size per
    column.  Laplace smoothing ``alpha`` avoids zero probabilities.
    """

    def __init__(self, cardinalities: Sequence[int], alpha: float = 1.0):
        if alpha <= 0:
            raise FitError("alpha must be positive")
        if any(c < 1 for c in cardinalities):
            raise FitError("cardinalities must all be >= 1")
        self.cardinalities = tuple(int(c) for c in cardinalities)
        self.alpha = alpha
        self._n_features: int | None = None

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "CategoricalNaiveBayes":
        X, y, w = check_Xy(X, y, sample_weight)
        if X.shape[1] != len(self.cardinalities):
            raise FitError(
                f"X has {X.shape[1]} columns but {len(self.cardinalities)} "
                "cardinalities were declared"
            )
        codes = X.astype(np.int64)
        if (codes != X).any():
            raise FitError("categorical NB expects integer codes in X")
        self._n_features = X.shape[1]

        w_pos = float(w[y == 1].sum())
        w_neg = float(w[y == 0].sum())
        total = w_pos + w_neg
        self._log_prior = np.log(
            np.clip(np.array([w_neg, w_pos]) / total, 1e-12, None)
        )

        self._log_likelihood: list[np.ndarray] = []
        for j, card in enumerate(self.cardinalities):
            if codes[:, j].max(initial=0) >= card or codes[:, j].min(initial=0) < 0:
                raise FitError(f"feature {j} has codes outside [0, {card})")
            table = np.full((2, card), self.alpha)
            for label in (0, 1):
                sel = y == label
                table[label] += np.bincount(
                    codes[sel, j], weights=w[sel], minlength=card
                )
            table /= table.sum(axis=1, keepdims=True)
            self._log_likelihood.append(np.log(table))
        return self

    def _joint_log(self, X: np.ndarray) -> np.ndarray:
        codes = X.astype(np.int64)
        joint = np.tile(self._log_prior, (X.shape[0], 1))
        for j, table in enumerate(self._log_likelihood):
            cj = np.clip(codes[:, j], 0, table.shape[1] - 1)
            joint += table[:, cj].T
        return joint

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        n_features = self._require_fitted()
        X = check_X(X, n_features)
        joint = self._joint_log(X)
        shifted = joint - joint.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs[:, 1]


class GaussianNaiveBayes(Classifier):
    """Naive Bayes with class-conditional Gaussian likelihoods."""

    def __init__(self, var_smoothing: float = 1e-9):
        if var_smoothing < 0:
            raise FitError("var_smoothing must be non-negative")
        self.var_smoothing = var_smoothing
        self._n_features: int | None = None

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "GaussianNaiveBayes":
        X, y, w = check_Xy(X, y, sample_weight)
        self._n_features = X.shape[1]
        w_pos = float(w[y == 1].sum())
        w_neg = float(w[y == 0].sum())
        total = w_pos + w_neg
        self._log_prior = np.log(
            np.clip(np.array([w_neg, w_pos]) / total, 1e-12, None)
        )
        eps = self.var_smoothing * max(X.var(axis=0).max(initial=0.0), 1.0) + 1e-12
        means, variances = [], []
        for label in (0, 1):
            sel = y == label
            wl = w[sel]
            if wl.sum() <= 0:
                # Degenerate class: fall back to the global moments so
                # prediction is driven entirely by the prior.
                means.append(np.average(X, axis=0, weights=w))
                variances.append(X.var(axis=0) + eps)
                continue
            mu = np.average(X[sel], axis=0, weights=wl)
            var = np.average((X[sel] - mu) ** 2, axis=0, weights=wl) + eps
            means.append(mu)
            variances.append(var)
        self._means = np.stack(means)
        self._vars = np.stack(variances)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        n_features = self._require_fitted()
        X = check_X(X, n_features)
        joint = np.tile(self._log_prior, (X.shape[0], 1))
        for label in (0, 1):
            diff = X - self._means[label]
            joint[:, label] += -0.5 * (
                np.log(2 * np.pi * self._vars[label]) + diff**2 / self._vars[label]
            ).sum(axis=1)
        shifted = joint - joint.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs[:, 1]


class MixedNaiveBayes:
    """Naive Bayes directly over a :class:`~repro.data.Dataset`.

    Categorical columns go through :class:`CategoricalNaiveBayes`, numeric
    columns through :class:`GaussianNaiveBayes`; per-class log scores are
    summed (the prior is counted once).  This is the borderline-instance
    ranker of §IV-A.
    """

    def __init__(self, alpha: float = 1.0):
        self.alpha = alpha
        self._fitted = False

    def fit(self, dataset: Dataset) -> "MixedNaiveBayes":
        self._cat_names = dataset.schema.categorical_names
        self._num_names = dataset.schema.numeric_names
        self._cat_nb: CategoricalNaiveBayes | None = None
        self._num_nb: GaussianNaiveBayes | None = None
        if self._cat_names:
            codes = np.column_stack(
                [dataset.column(n) for n in self._cat_names]
            ).astype(np.float64)
            cards = dataset.schema.cardinalities(self._cat_names)
            self._cat_nb = CategoricalNaiveBayes(cards, alpha=self.alpha).fit(
                codes, dataset.y
            )
        if self._num_names:
            nums = np.column_stack([dataset.column(n) for n in self._num_names])
            self._num_nb = GaussianNaiveBayes().fit(nums, dataset.y)
        if self._cat_nb is None and self._num_nb is None:
            raise FitError("dataset has no feature columns")
        self._fitted = True
        return self

    def predict_proba(self, dataset: Dataset) -> np.ndarray:
        """Positive-class probability per row of ``dataset``."""
        if not self._fitted:
            raise FitError("MixedNaiveBayes must be fitted first")
        log_odds = np.zeros(dataset.n_rows)
        n_parts = 0
        if self._cat_nb is not None:
            codes = np.column_stack(
                [dataset.column(n) for n in self._cat_names]
            ).astype(np.float64)
            p = np.clip(self._cat_nb.predict_proba(codes), 1e-12, 1 - 1e-12)
            log_odds += np.log(p / (1 - p))
            n_parts += 1
        if self._num_nb is not None:
            nums = np.column_stack([dataset.column(n) for n in self._num_names])
            p = np.clip(self._num_nb.predict_proba(nums), 1e-12, 1 - 1e-12)
            log_odds += np.log(p / (1 - p))
            n_parts += 1
        # Both parts include the prior once; with two parts one prior term is
        # double counted, which only shifts all scores by a constant and so
        # does not change the borderline ranking the remedy needs.
        del n_parts
        return 1.0 / (1.0 + np.exp(-log_odds))
