"""Dataset-facing model wrapper and the paper's four downstream classifiers.

:class:`DatasetClassifier` couples a :class:`~repro.ml.encoding.DatasetEncoder`
with a matrix-level :class:`~repro.ml.base.Classifier` so experiment code can
say ``model.fit(train); model.predict(test)`` on :class:`~repro.data.Dataset`
objects directly.  :func:`make_model` builds the paper's DT / RF / LG / NN
by short name with hyperparameters in the ranges its grid search covers.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import FitError
from repro.ml.base import Classifier
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.encoding import DatasetEncoder
from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.neural import NeuralNetworkClassifier
from repro.ml.tree import DecisionTreeClassifier
from repro.obs import trace as obs

# The paper's four downstream classifiers, plus gradient boosting as an
# extra model-agnosticism check (not part of the paper's evaluation grid).
MODEL_NAMES = ("dt", "rf", "lg", "nn", "gb")


class DatasetClassifier:
    """Train/predict on datasets instead of raw matrices.

    Parameters
    ----------
    estimator:
        Any matrix-level classifier.
    features / exclude:
        Forwarded to :class:`DatasetEncoder`; by default all columns
        (including protected attributes) are used, matching the paper.
    """

    def __init__(
        self,
        estimator: Classifier,
        features: Sequence[str] | None = None,
        exclude: Sequence[str] = (),
    ):
        self.estimator = estimator
        self._encoder = DatasetEncoder(features=features, exclude=exclude)
        self._fitted = False

    def fit(
        self, dataset: Dataset, sample_weight: np.ndarray | None = None
    ) -> "DatasetClassifier":
        with obs.span(
            "ml.fit",
            model=type(self.estimator).__name__,
            rows=dataset.n_rows,
        ):
            X = self._encoder.fit_transform(dataset)
            self.estimator.fit(X, dataset.y, sample_weight=sample_weight)
        obs.count("ml.fits")
        obs.count("ml.rows_fitted", dataset.n_rows)
        self._fitted = True
        return self

    def predict(self, dataset: Dataset) -> np.ndarray:
        if not self._fitted:
            raise FitError("DatasetClassifier must be fitted first")
        with obs.span(
            "ml.predict",
            model=type(self.estimator).__name__,
            rows=dataset.n_rows,
        ):
            return self.estimator.predict(self._encoder.transform(dataset))

    def predict_proba(self, dataset: Dataset) -> np.ndarray:
        if not self._fitted:
            raise FitError("DatasetClassifier must be fitted first")
        return self.estimator.predict_proba(self._encoder.transform(dataset))


_FACTORIES: dict[str, Callable[[int], Classifier]] = {
    "dt": lambda seed: DecisionTreeClassifier(
        max_depth=8, min_samples_leaf=5, random_state=seed
    ),
    "rf": lambda seed: RandomForestClassifier(
        n_estimators=15, max_depth=10, min_samples_leaf=3, random_state=seed
    ),
    "lg": lambda seed: LogisticRegressionClassifier(l2=1.0),
    "nn": lambda seed: NeuralNetworkClassifier(
        hidden_units=32, epochs=20, random_state=seed
    ),
    "gb": lambda seed: GradientBoostingClassifier(
        n_estimators=40, learning_rate=0.2, max_depth=3
    ),
}


def make_estimator(name: str, seed: int = 0) -> Classifier:
    """Matrix-level estimator for one of the paper's model short names."""
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise FitError(
            f"unknown model {name!r}; choose from {MODEL_NAMES}"
        ) from None
    return factory(seed)


def make_model(
    name: str,
    seed: int = 0,
    features: Sequence[str] | None = None,
    exclude: Sequence[str] = (),
) -> DatasetClassifier:
    """Dataset-facing classifier for 'dt' / 'rf' / 'lg' / 'nn'."""
    return DatasetClassifier(
        make_estimator(name, seed), features=features, exclude=exclude
    )
