"""Fairness drift alarms with hysteresis (the stream's alerting layer).

The :class:`DriftMonitor` watches the re-scored regions the incremental
engine hands it after every applied batch and maintains an *active alarm
set*: a region raises when its score difference crosses ``tau_c`` and
clears when it falls back to ``tau_c - hysteresis`` or below (or vanishes
under the size threshold).  The hysteresis band suppresses flapping — a
region oscillating within ``(tau_c - hysteresis, tau_c]`` stays on one
alarm instead of emitting a raise/clear pair per batch.  With
``hysteresis = 0`` the active set is exactly the IBS pattern set of the
current data, which is what the byte-identity property pins.

Every transition is a typed :class:`AlarmEvent` stamped with the *batch
seq* (a journal offset, never wall-clock), so replaying the same journal
reproduces the same event list bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ibs import RegionReport
from repro.core.pattern import Pattern
from repro.obs import trace as obs

ALARM_RAISE = "raise"
ALARM_CLEAR = "clear"


@dataclass(frozen=True)
class AlarmEvent:
    """One alarm transition, keyed by the batch seq that caused it.

    ``difference`` is the region's score difference at the transition;
    ``None`` on a clear caused by the region vanishing below the size
    threshold (there is no score to report).
    """

    kind: str
    batch_seq: int
    pattern: Pattern
    difference: float | None

    def to_payload(self) -> list:
        """JSON-safe form ``[kind, seq, pattern items, difference]``."""
        diff = None if self.difference is None else repr(self.difference)
        return [self.kind, self.batch_seq, list(self.pattern.items), diff]


class DriftMonitor:
    """Tracks the active alarm set and emits raise/clear events."""

    def __init__(self, tau_c: float, hysteresis: float = 0.0):
        self.tau_c = tau_c
        self.hysteresis = hysteresis
        #: pattern -> score difference at the most recent observation.
        self._active: dict[Pattern, float] = {}
        self.events: list[AlarmEvent] = []
        #: Events lost to journal compaction (the active set survives it).
        self.events_dropped = 0

    def observe(
        self,
        batch_seq: int,
        observations: list[tuple[Pattern, RegionReport | None]],
    ) -> list[AlarmEvent]:
        """Fold one batch's re-scored regions; return the new events.

        ``observations`` holds every region the batch dirtied, in the
        engine's deterministic order: its fresh report, or ``None`` when
        the region fell below the size threshold.  Regions not observed
        are unchanged by the batch and keep their alarm state.
        """
        new_events: list[AlarmEvent] = []
        for pattern, report in observations:
            active = pattern in self._active
            if report is None:
                if active:
                    del self._active[pattern]
                    new_events.append(
                        AlarmEvent(ALARM_CLEAR, batch_seq, pattern, None)
                    )
                continue
            diff = report.difference
            if diff > self.tau_c:
                if not active:
                    new_events.append(
                        AlarmEvent(ALARM_RAISE, batch_seq, pattern, diff)
                    )
                self._active[pattern] = diff
            elif active:
                if diff <= self.tau_c - self.hysteresis:
                    del self._active[pattern]
                    new_events.append(
                        AlarmEvent(ALARM_CLEAR, batch_seq, pattern, diff)
                    )
                else:
                    # Inside the hysteresis band: stays alarmed, no flap.
                    self._active[pattern] = diff
        self.events.extend(new_events)
        obs.count("stream.alarm_events", len(new_events))
        return new_events

    def active(self) -> list[tuple[Pattern, float]]:
        """The active alarms as ``(pattern, difference)``, sorted by pattern."""
        return sorted(self._active.items(), key=lambda item: item[0].items)

    def active_patterns(self) -> set[Pattern]:
        """The active alarm set (equals the IBS set when hysteresis is 0)."""
        return set(self._active)

    # -- compaction round-trip -------------------------------------------------
    def export_active(self) -> list:
        """JSON-safe active set for the rebase record."""
        return [
            [list(pattern.items), repr(diff)] for pattern, diff in self.active()
        ]

    @classmethod
    def from_rebase(
        cls,
        tau_c: float,
        hysteresis: float,
        alarms: list,
        events_dropped: int,
    ) -> "DriftMonitor":
        """Rebuild the monitor from a rebase record's active set.

        Event history before the rebase is gone by design (the rebase
        records how many were dropped); hysteresis state — which regions
        are *currently* alarmed — survives exactly.
        """
        monitor = cls(tau_c, hysteresis)
        for items, diff in alarms:
            pattern = Pattern((str(a), int(c)) for a, c in items)
            monitor._active[pattern] = float(diff)
        monitor.events_dropped = int(events_dropped)
        return monitor
