"""Mutable row store backing the streaming auditor.

A :class:`~repro.data.dataset.Dataset` is immutable-by-convention and
copies on every edit, which would make per-delta cost grow with the total
row count.  :class:`StreamState` instead keeps amortised-growth column
arrays plus an ``alive`` mask: inserts append in O(1) amortised, deletes
and relabels touch one slot, and the stable row id of a row is simply its
insertion index — so a delete arriving batches after its insert still
addresses the right row without any id map.

Every mutation validates against the schema first and raises a typed
:class:`~repro.errors.DeltaError` (mirroring the Dataset constructor's
column/row-naming messages) so the service can quarantine poison deltas
without wedging; validation never mutates, letting the service check a
whole batch *before* journalling it.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.errors import DeltaError
from repro.stream.deltas import (
    Delta,
    DeleteDelta,
    InsertDelta,
    KIND_DELETE,
    KIND_INSERT,
    KIND_RELABEL,
    RelabelDelta,
)

#: Initial per-column capacity; doubles on overflow.
_INITIAL_CAPACITY = 1024


class StreamState:
    """Append-only columnar row store with stable ids and an alive mask."""

    def __init__(self, schema: Schema, protected: Sequence[str]):
        self.schema = schema
        self.protected = tuple(protected)
        schema.require_categorical(self.protected)
        self._cap = _INITIAL_CAPACITY
        self._cols: dict[str, np.ndarray] = {}
        for col in schema:
            dtype = np.int64 if col.is_categorical else np.float64
            self._cols[col.name] = np.zeros(self._cap, dtype=dtype)
        self._y = np.zeros(self._cap, dtype=np.int8)
        self._alive = np.zeros(self._cap, dtype=bool)
        self._n = 0  # next row id == rows ever inserted

    # -- sizes ---------------------------------------------------------------
    @property
    def next_row_id(self) -> int:
        """The id the next inserted row will receive."""
        return self._n

    @property
    def n_alive(self) -> int:
        """Rows inserted and not (yet) deleted."""
        return int(self._alive[: self._n].sum())

    @property
    def n_alive_positive(self) -> int:
        """Alive rows with label 1."""
        mask = self._alive[: self._n]
        return int(self._y[: self._n][mask].sum())

    def is_alive(self, row: int) -> bool:
        """Whether ``row`` is a live (inserted, undeleted) row id."""
        return 0 <= row < self._n and bool(self._alive[row])

    # -- validation ----------------------------------------------------------
    def validate(self, delta: Delta) -> None:
        """Raise :class:`~repro.errors.DeltaError` unless ``delta`` applies.

        Pure check — the state is untouched, so a batch can be validated
        in full before any of it is journalled or applied.
        """
        if delta.kind == KIND_INSERT:
            self._validate_insert(delta, self._n)
        elif delta.kind == KIND_DELETE:
            self._validate_target(delta.row, "delete")
        elif delta.kind == KIND_RELABEL:
            self._validate_target(delta.row, "relabel")
            if delta.label not in (0, 1):
                raise DeltaError(
                    f"labels must be binary 0/1; row {delta.row} has "
                    f"{delta.label!r}"
                )
        else:  # pragma: no cover - delta types are closed
            raise DeltaError(f"unknown delta kind {delta.kind!r}")

    def _validate_insert(self, delta: InsertDelta, row: int) -> None:
        n_cols = sum(1 for _ in self.schema)
        if len(delta.values) != n_cols:
            raise DeltaError(
                f"insert for row {row} has {len(delta.values)} values for "
                f"{n_cols} schema columns {list(self.schema.names)}"
            )
        if delta.label not in (0, 1):
            raise DeltaError(
                f"labels must be binary 0/1; row {row} has {delta.label!r}"
            )
        for col, value in zip(self.schema, delta.values):
            if col.is_categorical:
                code = int(value)
                if code != value or not 0 <= code < col.cardinality:
                    raise DeltaError(
                        f"column {col.name!r} has code {value!r} at row {row}, "
                        f"outside [0, {col.cardinality})"
                    )
            elif not np.isfinite(value):
                raise DeltaError(
                    f"column {col.name!r} has non-finite value {value!r} at "
                    f"row {row}; features must be finite (no NaN/inf)"
                )

    def _validate_target(self, row: int, verb: str) -> None:
        if not 0 <= row < self._n:
            raise DeltaError(
                f"{verb} targets unknown row {row}; ids 0..{self._n - 1} "
                "have been inserted"
            )
        if not self._alive[row]:
            raise DeltaError(f"{verb} targets dead row {row} (already deleted)")

    # -- mutation -------------------------------------------------------------
    def _grow(self) -> None:
        new_cap = self._cap * 2
        for name, arr in self._cols.items():
            grown = np.zeros(new_cap, dtype=arr.dtype)
            grown[: self._n] = arr[: self._n]
            self._cols[name] = grown
        for attr in ("_y", "_alive"):
            arr = getattr(self, attr)
            grown = np.zeros(new_cap, dtype=arr.dtype)
            grown[: self._n] = arr[: self._n]
            setattr(self, attr, grown)
        self._cap = new_cap

    def insert(self, delta: InsertDelta) -> tuple[int, tuple[int, ...]]:
        """Append a validated insert; returns ``(row_id, protected codes)``."""
        self._validate_insert(delta, self._n)
        if self._n == self._cap:
            self._grow()
        row = self._n
        for col, value in zip(self.schema, delta.values):
            self._cols[col.name][row] = value
        self._y[row] = delta.label
        self._alive[row] = True
        self._n += 1
        return row, self.protected_codes(row)

    def delete(self, delta: DeleteDelta) -> tuple[tuple[int, ...], int]:
        """Tombstone a validated delete; returns ``(protected codes, label)``."""
        self._validate_target(delta.row, "delete")
        self._alive[delta.row] = False
        return self.protected_codes(delta.row), int(self._y[delta.row])

    def relabel(self, delta: RelabelDelta) -> tuple[tuple[int, ...], int, int]:
        """Apply a validated relabel; returns ``(codes, old_label, new_label)``."""
        self.validate(delta)
        old = int(self._y[delta.row])
        self._y[delta.row] = delta.label
        return self.protected_codes(delta.row), old, int(delta.label)

    def protected_codes(self, row: int) -> tuple[int, ...]:
        """The row's cell in the protected-attribute space (leaf coords)."""
        return tuple(int(self._cols[a][row]) for a in self.protected)

    # -- persistence ----------------------------------------------------------
    def export_rows(self, chunk_size: int = 100_000) -> Iterator[list[list]]:
        """Yield alive rows as ``[row_id, [values...], label]`` chunks.

        Consumed by journal compaction: the rebase segment stores exactly
        the live rows (dead ids stay dead implicitly) in id order, so a
        replay from the rebase reconstructs this state byte-identically.
        """
        names = list(self.schema.names)
        chunk: list[list] = []
        for row in range(self._n):
            if not self._alive[row]:
                continue
            values = [
                int(self._cols[name][row])
                if self.schema[name].is_categorical
                else float(self._cols[name][row])
                for name in names
            ]
            chunk.append([row, values, int(self._y[row])])
            if len(chunk) >= chunk_size:
                yield chunk
                chunk = []
        if chunk:
            yield chunk

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        protected: Sequence[str],
        next_row_id: int,
        rows: Sequence[Sequence],
    ) -> "StreamState":
        """Rebuild a state from a rebase's ``[row_id, values, label]`` rows."""
        state = cls(schema, protected)
        while state._cap < max(next_row_id, 1):
            state._grow()
        state._n = next_row_id
        for row_id, values, label in rows:
            row_id = int(row_id)
            if not 0 <= row_id < next_row_id:
                raise DeltaError(
                    f"rebase row id {row_id} outside [0, {next_row_id})"
                )
            delta = InsertDelta(values=tuple(values), label=int(label))
            state._validate_insert(delta, row_id)
            for col, value in zip(schema, delta.values):
                state._cols[col.name][row_id] = value
            state._y[row_id] = delta.label
            state._alive[row_id] = True
        return state

    def alive_row_ids(self) -> np.ndarray:
        """Stable ids of the alive rows, in id order.

        Position ``i`` of this array is the row id behind row ``i`` of
        :meth:`materialize`'s dataset — the mapping the remedy-on-drift
        controller uses to translate a positional label diff back into
        :class:`~repro.stream.deltas.RelabelDelta` targets.
        """
        return np.flatnonzero(self._alive[: self._n]).astype(np.int64)

    def materialize(self) -> Dataset:
        """The alive rows as an immutable :class:`Dataset` (id order).

        This is the full-rebuild oracle's input: a from-scratch
        ``identify_ibs`` over this dataset must match the incremental
        engine's streamed reports byte for byte.
        """
        mask = self._alive[: self._n]
        cols = {name: arr[: self._n][mask] for name, arr in self._cols.items()}
        return Dataset(self.schema, cols, self._y[: self._n][mask], self.protected)
