"""Streaming fairness auditor: durable delta log + incremental re-scoring.

The batch pipeline answers "is this dataset biased?"; this package answers
it *continuously* as the dataset changes.  Edits arrive as typed deltas
(:mod:`~repro.stream.deltas`) in micro-batches, are journalled durably
(:mod:`~repro.stream.journal`), folded incrementally into the region
hierarchy with dirty-region re-scoring (:mod:`~repro.stream.engine`), and
surfaced as drift alarms with hysteresis (:mod:`~repro.stream.monitor`).
The :mod:`~repro.stream.service` front adds backpressure and poison-delta
quarantine; :mod:`~repro.stream.chaos` proves the crash-recovery contract.
See ``docs/streaming.md``.
"""

from repro.stream.deltas import (
    Delta,
    DeleteDelta,
    InsertDelta,
    RelabelDelta,
    delta_from_record,
    deltas_from_records,
)
from repro.stream.engine import StreamAuditor
from repro.stream.journal import DeltaLog, RecoveryReport, StreamConfig
from repro.stream.monitor import AlarmEvent, DriftMonitor
from repro.stream.service import StreamService, read_batches_file
from repro.stream.state import StreamState

__all__ = [
    "AlarmEvent",
    "Delta",
    "DeleteDelta",
    "DeltaLog",
    "DriftMonitor",
    "InsertDelta",
    "RecoveryReport",
    "RelabelDelta",
    "StreamAuditor",
    "StreamConfig",
    "StreamService",
    "StreamState",
    "delta_from_record",
    "deltas_from_records",
    "read_batches_file",
]
