"""Ingestion service: bounded queue, quarantine, journal-then-apply.

The :class:`StreamService` is the write path of the streaming auditor.
Batches move through it in a strict order chosen so a crash at any point
leaves a recoverable journal:

1. **enqueue** — :meth:`submit` parks the batch in a bounded FIFO; a full
   queue raises :class:`~repro.errors.BackpressureError` so producers
   back off instead of the service buffering unboundedly;
2. **validate** — the whole batch is checked against the current state
   (sequential overlay semantics) *before* anything is journalled; poison
   deltas are quarantined to the dead-letter segment with their typed
   error and never reach the journal;
3. **journal** — the surviving deltas are fsynced into the
   :class:`~repro.stream.journal.DeltaLog` under the sha chain;
4. **apply** — only after the append is durable does the in-memory
   auditor fold the batch and advance the **watermark** (the seq of the
   last fully-applied batch).  Readers trust state only up to the
   watermark, so a crash between journal and apply is invisible: restart
   replays the journalled batch and the watermark catches up.

A ``chaos_hook(batch_id, stage)`` seam lets the chaos harness kill the
process between those steps deterministically.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import BackpressureError, DeltaError, StreamError
from repro.obs import trace as obs
from repro.stream.deltas import Delta, delta_from_record, deltas_from_records
from repro.stream.engine import StreamAuditor
from repro.stream.journal import DeltaLog, StreamConfig
from repro.stream.monitor import AlarmEvent

#: Chaos stages, in write-path order: after the durable append, before the
#: in-memory apply.
STAGE_POST_APPEND = "post-append"
STAGE_PRE_APPLY = "pre-apply"

DEAD_QUARANTINED = "quarantined"
DEAD_REQUEUED = "requeued"
DEAD_DEAD = "dead"


class StreamService:
    """Durable ingestion front of one stream directory."""

    def __init__(
        self,
        log: DeltaLog,
        auditor: StreamAuditor,
        chaos_hook: Callable[[str, str], None] | None = None,
    ):
        self.log = log
        self.auditor = auditor
        self.chaos_hook = chaos_hook
        self._queue: deque[tuple[str, list[Delta]]] = deque()
        self._dead_seq = len(self.log.dead_letters())
        self._n_outstanding = len(self.log.outstanding_dead_letters())

    # -- lifecycle ---------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str | Path,
        config: StreamConfig,
        chaos_hook: Callable[[str, str], None] | None = None,
    ) -> "StreamService":
        """Initialise a fresh stream directory (journal genesis) and open it."""
        log = DeltaLog.create(directory, config)
        return cls(log, StreamAuditor(config), chaos_hook=chaos_hook)

    @classmethod
    def open(
        cls,
        directory: str | Path,
        allow_empty: bool = False,
        chaos_hook: Callable[[str, str], None] | None = None,
    ) -> tuple["StreamService", object]:
        """Recover the journal and replay it into a live service.

        Returns ``(service, recovery_report)``.  ``allow_empty`` is the
        ingest path's opt-in: a journal with zero committed batches is a
        fine starting point for writing but an error for reading.
        """
        log, report = DeltaLog.recover(directory, allow_empty=allow_empty)
        auditor = StreamAuditor.from_journal(log)
        return cls(log, auditor, chaos_hook=chaos_hook), report

    def close(self) -> None:
        """Release the journal's file handle."""
        self.log.close()

    # -- write path --------------------------------------------------------------
    def submit(self, batch_id: str, deltas: Sequence[Delta]) -> bool:
        """Queue one batch for ingestion; ``False`` if it is a known duplicate.

        Duplicate ids (already journalled, or already queued) are skipped
        idempotently — a producer retrying after a timeout must not
        double-apply.  A full queue raises
        :class:`~repro.errors.BackpressureError` without enqueueing.
        """
        batch_id = str(batch_id)
        if batch_id in self.auditor.applied_ids or self.log.has_batch(batch_id):
            obs.count("stream.duplicate_batches")
            return False
        if any(batch_id == queued_id for queued_id, _ in self._queue):
            obs.count("stream.duplicate_batches")
            return False
        if len(self._queue) >= self.log.config.queue_limit:
            raise BackpressureError(
                f"ingestion queue is full ({self.log.config.queue_limit} "
                f"batches); retry batch {batch_id!r} after a drain"
            )
        self._queue.append((batch_id, list(deltas)))
        obs.gauge_set("stream.queue_depth", len(self._queue))
        return True

    def drain(self) -> list[AlarmEvent]:
        """Ingest every queued batch in FIFO order; returns new alarm events."""
        events: list[AlarmEvent] = []
        while self._queue:
            batch_id, deltas = self._queue.popleft()
            events.extend(self._ingest_one(batch_id, deltas))
            obs.gauge_set("stream.queue_depth", len(self._queue))
        return events

    def ingest(
        self, batches: Sequence[tuple[str, Sequence[Delta]]]
    ) -> list[AlarmEvent]:
        """Submit-and-drain convenience for a pre-collected batch list."""
        events: list[AlarmEvent] = []
        for batch_id, deltas in batches:
            if self.submit(batch_id, deltas):
                events.extend(self.drain())
        return events

    def _ingest_one(self, batch_id: str, deltas: list[Delta]) -> list[AlarmEvent]:
        with obs.span("stream.batch", id=batch_id, n=len(deltas)):
            valid, poison = self.auditor.validate_batch(deltas)
            for delta, error in poison:
                self._quarantine(batch_id, delta, error)
            if not valid:
                obs.count("stream.empty_batches")
                return []
            seq = self.log.append_batch(
                batch_id, [d.to_record() for d in valid]
            )
            if self.chaos_hook is not None:
                self.chaos_hook(batch_id, STAGE_POST_APPEND)
            if self.chaos_hook is not None:
                self.chaos_hook(batch_id, STAGE_PRE_APPLY)
            return self.auditor.apply_batch(seq, batch_id, valid)

    # -- quarantine --------------------------------------------------------------
    def _quarantine(
        self, batch_id: str, delta: Delta, error: DeltaError, attempts: int = 1
    ) -> None:
        self._dead_seq += 1
        self.log.append_dead_letter(
            {
                "id": f"dl-{self._dead_seq}",
                "batch": batch_id,
                "delta": delta.to_record(),
                "error": str(error),
                "attempts": attempts,
                "status": DEAD_QUARANTINED,
            }
        )
        self._n_outstanding += 1
        obs.count("stream.quarantined_deltas")
        obs.gauge_set("stream.dead_letter_depth", self._n_outstanding)

    def retry_dead_letters(self) -> dict[str, int]:
        """Re-validate quarantined deltas against the *current* state.

        A delta poisoned by ordering (a delete that raced its insert) can
        become valid later; one that keeps failing burns its retry budget
        and is marked dead.  Returns ``{"requeued": n, "dead": n,
        "requarantined": n}``.  Requeued deltas enter the normal write
        path under a fresh batch id, so the journal never holds a record
        of a delta that did not apply.
        """
        outcome = {"requeued": 0, "dead": 0, "requarantined": 0}
        obs.gauge_set(
            "stream.dead_letter_retry_budget", self.log.config.retry_budget
        )
        retried: list[Delta] = []
        for entry in self.log.outstanding_dead_letters():
            delta = delta_from_record(entry["delta"])
            attempts = int(entry["attempts"])
            try:
                self.auditor.state.validate(delta)
            except DeltaError as error:
                if attempts >= self.log.config.retry_budget:
                    self.log.append_dead_letter(
                        {**entry, "status": DEAD_DEAD, "error": str(error)}
                    )
                    outcome["dead"] += 1
                else:
                    self.log.append_dead_letter(
                        {
                            **entry,
                            "attempts": attempts + 1,
                            "error": str(error),
                            "status": DEAD_QUARANTINED,
                        }
                    )
                    outcome["requarantined"] += 1
            else:
                self.log.append_dead_letter({**entry, "status": DEAD_REQUEUED})
                retried.append(delta)
                outcome["requeued"] += 1
        self._n_outstanding -= outcome["requeued"] + outcome["dead"]
        for status, n in outcome.items():
            obs.count(f"stream.dead_letters_{status}", n)
        obs.gauge_set("stream.dead_letter_depth", self._n_outstanding)
        if retried:
            retry_id = f"retry-{self.auditor.watermark}-{self._dead_seq}"
            if self.submit(retry_id, retried):
                self.drain()
        return outcome

    # -- maintenance -------------------------------------------------------------
    def compact(self) -> None:
        """Fold the journal into a fresh generation seeded with current state."""
        with obs.span("stream.compact"):
            self.log.compact(
                self.auditor.export_rows(),
                self.auditor.state.next_row_id,
                self.auditor.state.n_alive,
                self.auditor.monitor.export_active(),
                self.auditor.monitor.events_dropped
                + len(self.auditor.monitor.events),
            )

    def maybe_compact(self) -> bool:
        """Compact when the live generation exceeds ``compact_bytes``."""
        limit = self.log.config.compact_bytes
        if limit is None or self.log.generation_bytes() < limit:
            return False
        self.compact()
        return True

    # -- read path ---------------------------------------------------------------
    def status(self) -> dict:
        """Snapshot of the service for the CLI (JSON-safe, no wall-clock)."""
        return {
            "watermark": self.auditor.watermark,
            "n_batches": self.auditor.n_batches,
            "next_row": self.auditor.state.next_row_id,
            "n_alive": self.auditor.state.n_alive,
            "n_positive": self.auditor.state.n_alive_positive,
            "n_biased": len(self.auditor.reports()),
            "active_alarms": len(self.auditor.monitor.active()),
            "queue_depth": len(self._queue),
            "generation_bytes": self.log.generation_bytes(),
            "segments": self.log.segment_names(),
            "digest": self.auditor.digest(),
        }


def read_batches_file(path: str | Path) -> list[tuple[str, list[Delta]]]:
    """Parse a batches JSONL file: ``{"id": ..., "deltas": [[tag, ...], ...]}``.

    The CLI's wire format for ``repro stream ingest``.  Malformed lines
    raise :class:`~repro.errors.StreamError` (the file, unlike a live
    stream, is trusted input — a broken file is an operator error, not a
    poison delta to quarantine).
    """
    batches: list[tuple[str, list[Delta]]] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise StreamError(
                f"{path}:{lineno}: not valid JSON ({exc.msg})"
            ) from exc
        if (
            not isinstance(payload, dict)
            or "id" not in payload
            or not isinstance(payload.get("deltas"), list)
        ):
            raise StreamError(
                f'{path}:{lineno}: each line must be {{"id": ..., '
                '"deltas": [...]}'
            )
        batches.append(
            (str(payload["id"]), deltas_from_records(payload["deltas"]))
        )
    return batches
