"""Incremental IBS auditor: dirty-region re-scoring over a live stream.

The :class:`StreamAuditor` keeps one :class:`~repro.core.hierarchy.Hierarchy`
current across micro-batches of row edits instead of rebuilding it per
audit.  Applying a batch is O(deltas), independent of the total row count:

1. every delta updates the :class:`~repro.stream.state.StreamState` row
   store and accumulates into a leaf-granular count-delta array;
2. one :meth:`~repro.core.hierarchy.Hierarchy.apply_count_delta` call
   folds the batch's delta into every hierarchy node in place;
3. the **dirty-region tracker** maps each changed leaf cell to the cells
   whose score the change can affect: in a node ``N``, a changed leaf
   cell ``c`` perturbs the projection ``proj_N(c)`` itself plus every
   cell within the Hamming budget of it (the neighbourhood relation is
   symmetric, so those are exactly the cells that count ``proj_N(c)`` in
   their neighbourhood); only those cells are re-scored through the same
   :func:`~repro.core.ibs.region_report` scalar path the batch engines
   share.

The resulting report set — and its ordering — is pinned byte-identical to
a from-scratch ``identify_ibs`` over the materialised data by a
hypothesis property (``tests/test_properties_stream.py``).  Alarm state is
delegated to the :class:`~repro.stream.monitor.DriftMonitor`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Iterator, Sequence

import numpy as np

from repro.core.hierarchy import Hierarchy
from repro.core.ibs import (
    METHOD_OPTIMIZED,
    METHOD_VECTORIZED,
    RegionReport,
    node_biased_reports,
    region_report,
    report_sort_key,
)
from repro.core.imbalance import is_biased
from repro.core.neighbors import hamming_budget, iter_neighbor_cells
from repro.core.pattern import Pattern
from repro.data.dataset import Dataset
from repro.errors import DeltaError, JournalError, StreamError
from repro.obs import trace as obs
from repro.stream.deltas import (
    Delta,
    KIND_DELETE,
    KIND_INSERT,
    KIND_RELABEL,
    deltas_from_records,
)
from repro.stream.journal import (
    DeltaLog,
    RECORD_BATCH,
    RECORD_GENESIS,
    RECORD_REBASE,
    RECORD_ROWS,
    StreamConfig,
)
from repro.stream.monitor import AlarmEvent, DriftMonitor
from repro.stream.state import StreamState


def _empty_dataset(config: StreamConfig) -> Dataset:
    cols = {
        col.name: np.zeros(0, dtype=np.int64 if col.is_categorical else np.float64)
        for col in config.schema
    }
    return Dataset(config.schema, cols, np.zeros(0, dtype=np.int8), config.protected)


class StreamAuditor:
    """Incrementally maintained IBS state over a delta stream."""

    def __init__(self, config: StreamConfig):
        self.config = config
        self.state = StreamState(config.schema, config.protected)
        self.hierarchy = Hierarchy(_empty_dataset(config))
        self.monitor = DriftMonitor(config.tau_c, config.hysteresis)
        self._axis_of = {a: i for i, a in enumerate(config.protected)}
        self._leaf_shape = config.schema.cardinalities(config.protected)
        #: pattern -> current RegionReport for every biased region.
        self._biased: dict[Pattern, RegionReport] = {}
        self.applied_ids: set[str] = set()
        self.watermark = 0
        self.n_batches = 0

    # -- validation -------------------------------------------------------------
    def validate_batch(
        self, deltas: Sequence[Delta]
    ) -> tuple[list[Delta], list[tuple[Delta, DeltaError]]]:
        """Split a batch into appliable deltas and poison ones, mutating nothing.

        Validation simulates the batch's sequential semantics with an
        overlay (an insert earlier in the batch makes a later delete of
        that row valid; a poisoned insert does not claim a row id), so the
        surviving prefix order applies cleanly.
        """
        next_id = self.state.next_row_id
        overlay: dict[int, bool] = {}
        valid: list[Delta] = []
        poison: list[tuple[Delta, DeltaError]] = []
        for delta in deltas:
            try:
                if delta.kind == KIND_INSERT:
                    self.state._validate_insert(delta, next_id)
                    overlay[next_id] = True
                    next_id += 1
                else:
                    row = delta.row
                    if row in overlay:
                        alive = overlay[row]
                    elif 0 <= row < self.state.next_row_id:
                        alive = self.state.is_alive(row)
                    else:
                        raise DeltaError(
                            f"{delta.kind} targets unknown row {row}; ids "
                            f"0..{next_id - 1} have been inserted"
                        )
                    if not alive:
                        raise DeltaError(
                            f"{delta.kind} targets dead row {row} "
                            "(already deleted)"
                        )
                    if delta.kind == KIND_RELABEL and delta.label not in (0, 1):
                        raise DeltaError(
                            f"labels must be binary 0/1; row {row} has "
                            f"{delta.label!r}"
                        )
                    if delta.kind == KIND_DELETE:
                        overlay[row] = False
            except DeltaError as exc:
                poison.append((delta, exc))
            else:
                valid.append(delta)
        return valid, poison

    # -- applying ---------------------------------------------------------------
    def apply_batch(
        self, seq: int, batch_id: str, deltas: Sequence[Delta]
    ) -> list[AlarmEvent]:
        """Apply one journalled batch: state, counts, dirty re-score, alarms.

        ``deltas`` must already have passed :meth:`validate_batch` (the
        journal only ever holds valid deltas); a failure here indicates a
        corrupted journal and raises typed.
        """
        if batch_id in self.applied_ids:
            raise JournalError(
                f"batch id {batch_id!r} applied twice (seq {seq}); the "
                "journal is corrupt"
            )
        with obs.span("stream.apply_batch", id=batch_id, n=len(deltas)):
            dpos = np.zeros(self._leaf_shape, dtype=np.int64)
            dneg = np.zeros(self._leaf_shape, dtype=np.int64)
            changed: set[tuple[int, ...]] = set()
            for delta in deltas:
                if delta.kind == KIND_INSERT:
                    _row, cell = self.state.insert(delta)
                    (dpos if delta.label == 1 else dneg)[cell] += 1
                    changed.add(cell)
                elif delta.kind == KIND_DELETE:
                    cell, label = self.state.delete(delta)
                    (dpos if label == 1 else dneg)[cell] -= 1
                    changed.add(cell)
                else:
                    cell, old, new = self.state.relabel(delta)
                    if old != new:
                        dpos[cell] += new - old
                        dneg[cell] += old - new
                        changed.add(cell)
            if changed:
                self.hierarchy.apply_count_delta(Pattern(), dpos, dneg)
            observations = self._rescore(changed)
            events = self.monitor.observe(seq, observations)
            self.applied_ids.add(batch_id)
            self.watermark = seq
            self.n_batches += 1
            obs.count("stream.deltas_applied", len(deltas))
            obs.count("stream.regions_rescored", len(observations))
            return events

    def _rescore(
        self, changed: set[tuple[int, ...]]
    ) -> list[tuple[Pattern, RegionReport | None]]:
        """Re-score exactly the regions the changed leaf cells can affect.

        Visits nodes bottom-up in canonical order and dirty cells in
        sorted order, so the observation sequence — and therefore the
        monitor's event order — is a pure function of the batch.
        """
        observations: list[tuple[Pattern, RegionReport | None]] = []
        if not changed:
            return observations
        k = self.config.k
        for level in range(self.hierarchy.max_level, 0, -1):
            for node in self.hierarchy.nodes_at_level(level):
                budget = hamming_budget(self.config.T, node.level)
                axes = tuple(self._axis_of[a] for a in node.attrs)
                dirty: set[tuple[int, ...]] = set()
                # Dedup on the *projections already expanded*, not on the
                # dirty set: a changed cell can enter `dirty` as a mere
                # neighbour of an earlier changed cell, and skipping it then
                # would leave its own neighbourhood unscored (stale reports).
                expanded: set[tuple[int, ...]] = set()
                for cell in changed:
                    proj = tuple(cell[ax] for ax in axes)
                    if proj in expanded:
                        continue
                    expanded.add(proj)
                    dirty.add(proj)
                    dirty.update(iter_neighbor_cells(node, proj, budget))
                for coords in sorted(dirty):
                    pattern = node.pattern_of(coords)
                    pos = int(node.pos[coords])
                    neg = int(node.neg[coords])
                    if pos + neg < k + 1:
                        self._biased.pop(pattern, None)
                        observations.append((pattern, None))
                        continue
                    report = region_report(
                        self.hierarchy, node, pattern, pos, neg,
                        self.config.T, method=METHOD_OPTIMIZED,
                    )
                    if is_biased(report.ratio, report.neighbor_ratio, self.config.tau_c):
                        self._biased[pattern] = report
                    else:
                        self._biased.pop(pattern, None)
                    observations.append((pattern, report))
        return observations

    def rescore_all(self) -> None:
        """Rebuild the biased-region map from the current counts (rebase load)."""
        self._biased = {}
        for level in range(self.hierarchy.max_level, 0, -1):
            cache: dict = {}
            for node in self.hierarchy.nodes_at_level(level):
                for report in node_biased_reports(
                    self.hierarchy, node, self.config.tau_c, T=self.config.T,
                    k=self.config.k, method=METHOD_VECTORIZED, cache=cache,
                ):
                    self._biased[report.pattern] = report

    # -- reading ------------------------------------------------------------------
    def reports(self) -> list[RegionReport]:
        """The current IBS in Algorithm 1's order (bottom-up, then by score).

        Byte-identical to ``identify_ibs(self.state.materialize(), ...)``
        — the property suite pins this for arbitrary delta sequences.
        """
        by_level: dict[int, list[RegionReport]] = {}
        for report in self._biased.values():
            by_level.setdefault(report.pattern.level, []).append(report)
        out: list[RegionReport] = []
        for level in range(self.hierarchy.max_level, 0, -1):
            level_reports = by_level.get(level, [])
            level_reports.sort(key=report_sort_key)
            out.extend(level_reports)
        return out

    def digest(self) -> str:
        """sha256 over the full audited state (row counts, reports, alarms).

        Floats are serialised via ``repr`` (shortest round-trip, handles
        ``inf``), so two states digest equal iff they are bit-identical —
        the chaos harness's recovery oracle.
        """
        payload = {
            "watermark": self.watermark,
            "n_batches": self.n_batches,
            "next_row": self.state.next_row_id,
            "n_alive": self.state.n_alive,
            "n_positive": self.state.n_alive_positive,
            "reports": [
                [
                    list(r.pattern.items), r.pos, r.neg, repr(r.ratio),
                    r.neighbor_pos, r.neighbor_neg, repr(r.neighbor_ratio),
                    repr(r.difference),
                ]
                for r in self.reports()
            ],
            "alarms": self.monitor.export_active(),
        }
        canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    # -- replay -------------------------------------------------------------------
    @classmethod
    def from_journal(
        cls, log: DeltaLog, upto_seq: int | None = None
    ) -> "StreamAuditor":
        """Reconstruct the audited state by replaying the journal.

        ``upto_seq`` replays only records with seq ≤ the offset (prefix
        recovery); an offset that predates the live generation's rebase
        horizon is unreachable and raises :class:`~repro.errors.StreamError`.
        """
        if (
            upto_seq is not None
            and log.rebase_seq is not None
            and upto_seq < log.rebase_seq
        ):
            raise StreamError(
                f"replay offset {upto_seq} predates the compaction horizon "
                f"(rebase at seq {log.rebase_seq}); earlier state was folded"
            )
        auditor = cls(log.config)
        rebase: dict | None = None
        rows: list[list] = []
        chunks_seen = 0
        with obs.span("stream.replay", upto=upto_seq):
            for record in log.records():
                if upto_seq is not None and record.seq > upto_seq:
                    break
                if record.type == RECORD_GENESIS:
                    continue
                if record.type == RECORD_REBASE:
                    rebase = record.payload
                    rows = []
                    chunks_seen = 0
                    if int(rebase["n_chunks"]) == 0:
                        auditor._load_rebase(rebase, rows)
                        rebase = None
                elif record.type == RECORD_ROWS:
                    if rebase is None:
                        raise JournalError(
                            f"rows record at seq {record.seq} without a "
                            "pending rebase"
                        )
                    rows.extend(record.payload["rows"])
                    chunks_seen += 1
                    if chunks_seen == int(rebase["n_chunks"]):
                        auditor._load_rebase(rebase, rows)
                        rebase = None
                elif record.type == RECORD_BATCH:
                    if rebase is not None:
                        raise JournalError(
                            f"batch at seq {record.seq} interleaved with an "
                            "incomplete rebase"
                        )
                    deltas = deltas_from_records(record.payload["deltas"])
                    auditor.apply_batch(
                        record.seq, str(record.payload["id"]), deltas
                    )
        if rebase is not None:
            raise JournalError(
                "journal ends mid-rebase: row chunks are missing"
            )
        return auditor

    def _load_rebase(self, payload: dict, rows: list[list]) -> None:
        self.state = StreamState.from_rows(
            self.config.schema, self.config.protected,
            int(payload["next_row"]), rows,
        )
        if self.state.n_alive != int(payload["n_rows"]):
            raise JournalError(
                f"rebase promised {payload['n_rows']} live rows, chunks "
                f"held {self.state.n_alive}"
            )
        self.hierarchy = Hierarchy(self.state.materialize())
        self.rescore_all()
        self.monitor = DriftMonitor.from_rebase(
            self.config.tau_c, self.config.hysteresis,
            payload["alarms"], int(payload["events_dropped"]),
        )
        self.applied_ids = set(str(b) for b in payload["applied"])
        self.watermark = int(payload["watermark"])
        self.n_batches = int(payload["n_batches"])

    def export_rows(self) -> Iterator[list[list]]:
        """Alive rows in journal-chunk form (compaction input)."""
        return self.state.export_rows()
