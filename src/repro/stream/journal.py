"""Durable write-ahead delta journal (``DeltaLog``).

Layout of a stream directory::

    CURRENT                         atomic pointer {"generation": g}
    segment-g00000000-000000000000.jsonl   append-only JSONL segments
    segment-g00000000-000000000042.jsonl   (generation, first seq)
    deadletter.jsonl                quarantined poison deltas (advisory)

Each journal record is one JSON line ``{"seq", "type", "payload", "prev",
"sha"}`` where ``sha = sha256(prev + canonical(seq, type, payload))`` —
a hash chain that makes any bit flip, reorder, or splice detectable.  The
first record of a generation starts the chain (``prev = ""``): generation
0 opens with a ``genesis`` record carrying the immutable stream config
(schema, protected attrs, thresholds); a compacted generation opens with a
``rebase`` record (surviving state summary) followed by ``rows`` chunks.
Batches of deltas land as ``batch`` records with a per-batch manifest.

Durability contract: every append is flushed and ``fsync``\\ ed before the
caller proceeds, so a batch either is fully on disk or its torn tail is
detected.  Segment rotation bounds file sizes; compaction writes the whole
next generation (rebase + rows), atomically flips ``CURRENT``, then
deletes the old generation — a crash at any point leaves either generation
fully intact, and :meth:`DeltaLog.recover`'s orphan sweep removes the
loser's leftovers.

Recovery modes:

* :meth:`DeltaLog.open` — **strict**: any torn or corrupt record raises a
  typed :class:`~repro.errors.JournalError` (used by ``repro stream
  replay`` and the corruption tests);
* :meth:`DeltaLog.recover` — **crash recovery**: tolerates exactly one
  torn *final* record of the *final* segment (the kill-mid-append window)
  by truncating it, explicitly reported in the returned
  :class:`RecoveryReport`; corruption anywhere else still raises.  A
  recovered journal holding zero committed batches raises unless
  ``allow_empty`` (only ingestion, which is about to add batches, opts in)
  — readers never see silent partial state.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.data.io import atomic_write_json
from repro.data.schema import Schema
from repro.data.schema_io import schema_from_dict, schema_to_dict
from repro.errors import JournalError, StreamError

RECORD_GENESIS = "genesis"
RECORD_BATCH = "batch"
RECORD_REBASE = "rebase"
RECORD_ROWS = "rows"

CURRENT_FILE = "CURRENT"
DEADLETTER_FILE = "deadletter.jsonl"
FORMAT_VERSION = 1

#: Default byte threshold after which the active segment is rotated.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

_SEGMENT_RE = re.compile(r"^segment-g(\d{8})-(\d{12})\.jsonl$")


def _segment_name(generation: int, first_seq: int) -> str:
    return f"segment-g{generation:08d}-{first_seq:012d}.jsonl"


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _record_sha(prev: str, seq: int, rtype: str, payload: object) -> str:
    body = _canonical({"payload": payload, "seq": seq, "type": rtype})
    return hashlib.sha256((prev + body).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StreamConfig:
    """Immutable configuration of one stream, persisted in the genesis record."""

    schema: Schema
    protected: tuple[str, ...]
    tau_c: float = 0.1
    T: float = 1.0
    k: int = 30
    hysteresis: float = 0.0
    queue_limit: int = 64
    retry_budget: int = 2
    segment_bytes: int = DEFAULT_SEGMENT_BYTES
    compact_bytes: int | None = None

    def __post_init__(self) -> None:
        if not self.protected:
            raise StreamError("stream config needs at least one protected attr")
        if self.tau_c < 0:
            raise StreamError(f"tau_c must be >= 0, got {self.tau_c}")
        if self.T < 1:
            raise StreamError(f"T must be >= 1, got {self.T}")
        if self.k < 0:
            raise StreamError(f"k must be >= 0, got {self.k}")
        if self.hysteresis < 0:
            raise StreamError(f"hysteresis must be >= 0, got {self.hysteresis}")
        if self.queue_limit < 1:
            raise StreamError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.retry_budget < 0:
            raise StreamError(
                f"retry_budget must be >= 0, got {self.retry_budget}"
            )
        if self.segment_bytes < 1:
            raise StreamError(
                f"segment_bytes must be >= 1, got {self.segment_bytes}"
            )
        if self.compact_bytes is not None and self.compact_bytes < 1:
            raise StreamError(
                f"compact_bytes must be >= 1, got {self.compact_bytes}"
            )

    def to_dict(self) -> dict:
        """JSON-safe form embedded in the genesis record."""
        payload = schema_to_dict(self.schema, self.protected)
        payload.update(
            tau_c=self.tau_c,
            T=self.T,
            k=self.k,
            hysteresis=self.hysteresis,
            queue_limit=self.queue_limit,
            retry_budget=self.retry_budget,
            segment_bytes=self.segment_bytes,
            compact_bytes=self.compact_bytes,
        )
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "StreamConfig":
        """Inverse of :meth:`to_dict` (raises on malformed genesis payloads)."""
        try:
            schema, protected = schema_from_dict(payload)
            return cls(
                schema=schema,
                protected=tuple(protected),
                tau_c=float(payload["tau_c"]),
                T=float(payload["T"]),
                k=int(payload["k"]),
                hysteresis=float(payload["hysteresis"]),
                queue_limit=int(payload["queue_limit"]),
                retry_budget=int(payload["retry_budget"]),
                segment_bytes=int(payload["segment_bytes"]),
                compact_bytes=(
                    None
                    if payload.get("compact_bytes") is None
                    else int(payload["compact_bytes"])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(f"malformed stream config in genesis: {exc}") from exc


@dataclass(frozen=True)
class JournalRecord:
    """One validated record yielded by a journal scan."""

    seq: int
    type: str
    payload: dict
    sha: str


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`DeltaLog.recover` had to do to reach a consistent state."""

    truncated_bytes: int = 0
    truncated_segment: str | None = None
    orphans_removed: tuple[str, ...] = ()
    n_batches: int = 0
    watermark: int = 0

    def describe(self) -> str:
        """One-line human summary for CLI output."""
        parts = [f"{self.n_batches} batches, watermark {self.watermark}"]
        if self.truncated_bytes:
            parts.append(
                f"truncated {self.truncated_bytes} torn bytes from "
                f"{self.truncated_segment}"
            )
        if self.orphans_removed:
            parts.append(
                f"swept {len(self.orphans_removed)} orphan segment(s)"
            )
        return "; ".join(parts)


@dataclass
class _ScanState:
    """Metadata accumulated by a full journal scan."""

    config: StreamConfig | None = None
    next_seq: int = 0
    last_sha: str = ""
    watermark: int = 0
    n_batches: int = 0
    applied_ids: set[str] = field(default_factory=set)
    rebase_seq: int | None = None


class DeltaLog:
    """Append-only, sha256-chained, segment-rotated delta journal."""

    def __init__(
        self,
        directory: str | Path,
        config: StreamConfig,
        generation: int,
        scan: _ScanState,
        segments: list[Path],
    ):
        self.directory = Path(directory)
        self.config = config
        self.generation = generation
        self._next_seq = scan.next_seq
        self._last_sha = scan.last_sha
        self.watermark = scan.watermark
        self.n_batches = scan.n_batches
        self.applied_ids = set(scan.applied_ids)
        self.rebase_seq = scan.rebase_seq
        self._segments = segments  # ordered paths of the live generation
        self._handle = None  # lazily opened append handle

    # -- creation / opening ----------------------------------------------------
    @classmethod
    def create(cls, directory: str | Path, config: StreamConfig) -> "DeltaLog":
        """Initialise a fresh stream directory with a genesis record."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if (directory / CURRENT_FILE).exists():
            raise JournalError(
                f"stream directory {directory} is already initialised"
            )
        scan = _ScanState(config=config)
        log = cls(directory, config, generation=0, scan=scan, segments=[])
        atomic_write_json(directory / CURRENT_FILE, {"generation": 0})
        log._start_segment(first_seq=0)
        log._append_record(
            RECORD_GENESIS,
            {"config": config.to_dict(), "version": FORMAT_VERSION},
        )
        return log

    @classmethod
    def open(cls, directory: str | Path) -> "DeltaLog":
        """Strict open: raise on any torn, corrupt, or inconsistent record."""
        log, _report = cls._load(directory, strict=True, allow_empty=True)
        return log

    @classmethod
    def recover(
        cls, directory: str | Path, allow_empty: bool = False
    ) -> tuple["DeltaLog", RecoveryReport]:
        """Crash-recovery open: truncate a torn final record, sweep orphans.

        Raises :class:`~repro.errors.JournalError` when the journal holds
        zero committed batches unless ``allow_empty`` — a reader pointed at
        a stream that never committed anything must fail loudly, not
        silently produce an empty state.
        """
        return cls._load(directory, strict=False, allow_empty=allow_empty)

    @classmethod
    def _load(
        cls, directory: str | Path, strict: bool, allow_empty: bool
    ) -> tuple["DeltaLog", RecoveryReport]:
        directory = Path(directory)
        current = directory / CURRENT_FILE
        if not current.is_file():
            raise JournalError(
                f"{directory} is not a stream directory (no {CURRENT_FILE}); "
                "run `repro stream init` first"
            )
        try:
            generation = int(json.loads(current.read_text())["generation"])
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(f"corrupt {CURRENT_FILE} in {directory}: {exc}") from exc

        segments, orphans = cls._segment_files(directory, generation)
        if not segments:
            raise JournalError(
                f"stream generation {generation} has no segments in {directory}"
            )
        # Orphan sweep: leftovers of a crashed compaction (either an
        # unflipped new generation or an undeleted old one) are removed so
        # no partial generation can ever be replayed.
        removed = []
        for orphan in orphans:
            if strict:
                raise JournalError(
                    f"orphan segment {orphan.name} from another generation "
                    f"(live generation is {generation}); recover() sweeps it"
                )
            orphan.unlink()
            removed.append(orphan.name)

        scan = _ScanState()
        truncated_bytes = 0
        truncated_segment: str | None = None
        for i, segment in enumerate(segments):
            is_last = i == len(segments) - 1
            torn = cls._scan_segment(segment, scan, expect_start=(i == 0))
            if torn is not None:
                offset, reason, recoverable = torn
                # Only the kill-mid-append shape — a partial *final* line of
                # the *final* segment — may be clipped; anything else
                # (sha mismatch, mid-file garbage, earlier segment) is
                # corruption and stays a hard error even in recovery.
                if strict or not is_last or not recoverable:
                    raise JournalError(
                        f"torn/corrupt record in {segment.name} at byte "
                        f"{offset}: {reason}"
                    )
                truncated_bytes = os.path.getsize(segment) - offset
                truncated_segment = segment.name
                with open(segment, "r+b") as fh:
                    fh.truncate(offset)
                    fh.flush()
                    os.fsync(fh.fileno())
        if scan.config is None:
            raise JournalError(
                f"generation {generation} of {directory} holds no "
                "genesis/rebase record; the journal head is missing"
            )
        if scan.n_batches == 0 and not allow_empty:
            raise JournalError(
                f"recovered journal in {directory} holds zero committed "
                "batches; there is no stream state to read (ingest batches "
                "first, or delete the directory and re-init)"
            )
        log = cls(directory, scan.config, generation, scan, segments)
        report = RecoveryReport(
            truncated_bytes=truncated_bytes,
            truncated_segment=truncated_segment,
            orphans_removed=tuple(removed),
            n_batches=scan.n_batches,
            watermark=scan.watermark,
        )
        return log, report

    @staticmethod
    def _segment_files(
        directory: Path, generation: int
    ) -> tuple[list[Path], list[Path]]:
        """``(live segments sorted by first seq, orphan segments)``."""
        live: list[tuple[int, Path]] = []
        orphans: list[Path] = []
        for path in sorted(directory.iterdir()):
            m = _SEGMENT_RE.match(path.name)
            if not m:
                continue
            if int(m.group(1)) == generation:
                live.append((int(m.group(2)), path))
            else:
                orphans.append(path)
        live.sort()
        return [p for _seq, p in live], orphans

    @classmethod
    def _scan_segment(
        cls, segment: Path, scan: _ScanState, expect_start: bool
    ) -> tuple[int, str, bool] | None:
        """Validate one segment into ``scan``.

        Returns ``None`` on success, or ``(byte offset, reason,
        recoverable)`` of the first bad record.  Only a partial final line
        (no trailing newline — what a killed ``write`` leaves behind) is
        marked recoverable; a record that is structurally complete but
        fails the sha chain, or has later records after it, is corruption.
        """
        data = segment.read_bytes()
        offset = 0
        first = expect_start
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline == -1:
                return (
                    offset,
                    "record without trailing newline (torn append)",
                    True,
                )
            line = data[offset:newline]
            try:
                envelope = json.loads(line)
                seq = int(envelope["seq"])
                rtype = str(envelope["type"])
                payload = envelope["payload"]
                prev = str(envelope["prev"])
                sha = str(envelope["sha"])
            except (KeyError, TypeError, ValueError):
                return offset, "unparsable record", False
            if sha != _record_sha(prev, seq, rtype, payload):
                return (
                    offset,
                    f"sha256 mismatch at seq {seq} (chain link broken)",
                    False,
                )
            if first:
                if prev != "":
                    return (
                        offset,
                        f"chain head at seq {seq} has non-empty prev",
                        False,
                    )
                if rtype not in (RECORD_GENESIS, RECORD_REBASE):
                    return (
                        offset,
                        f"generation must start with genesis/rebase, got "
                        f"{rtype!r}",
                        False,
                    )
                first = False
            elif prev != scan.last_sha:
                return (
                    offset,
                    f"chain link broken at seq {seq}: prev does not match "
                    "the preceding record's sha",
                    False,
                )
            if scan.next_seq and seq != scan.next_seq:
                return (
                    offset,
                    f"sequence gap: expected seq {scan.next_seq}, got {seq}",
                    False,
                )
            cls._fold_record(scan, seq, rtype, payload)
            scan.last_sha = sha
            scan.next_seq = seq + 1
            offset = newline + 1
        return None

    @staticmethod
    def _fold_record(
        scan: _ScanState, seq: int, rtype: str, payload: dict
    ) -> None:
        if rtype == RECORD_GENESIS:
            scan.config = StreamConfig.from_dict(payload["config"])
        elif rtype == RECORD_REBASE:
            scan.config = StreamConfig.from_dict(payload["config"])
            scan.watermark = int(payload["watermark"])
            scan.n_batches = int(payload["n_batches"])
            scan.applied_ids = set(payload["applied"])
            scan.rebase_seq = seq
        elif rtype == RECORD_BATCH:
            batch_id = str(payload["id"])
            if batch_id in scan.applied_ids:
                raise JournalError(
                    f"duplicate batch id {batch_id!r} at seq {seq}: the "
                    "journal already holds this batch; replay refuses to "
                    "double-apply"
                )
            scan.applied_ids.add(batch_id)
            scan.watermark = seq
            scan.n_batches += 1
        elif rtype == RECORD_ROWS:
            if scan.rebase_seq is None:
                raise JournalError(
                    f"rows record at seq {seq} without a preceding rebase"
                )
        else:
            raise JournalError(f"unknown record type {rtype!r} at seq {seq}")

    # -- appending ------------------------------------------------------------
    def _segment_path(self, first_seq: int) -> Path:
        return self.directory / _segment_name(self.generation, first_seq)

    def _start_segment(self, first_seq: int) -> None:
        self._close_handle()
        path = self._segment_path(first_seq)
        self._segments.append(path)
        self._handle = open(path, "ab")

    def _close_handle(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def close(self) -> None:
        """Release the append handle (the on-disk journal stays valid)."""
        self._close_handle()

    def _append_record(self, rtype: str, payload: dict) -> int:
        seq = self._next_seq
        sha = _record_sha(self._last_sha, seq, rtype, payload)
        envelope = {
            "payload": payload,
            "prev": self._last_sha,
            "seq": seq,
            "sha": sha,
            "type": rtype,
        }
        line = _canonical(envelope) + "\n"
        if self._handle is None:
            self._handle = open(self._segments[-1], "ab")
        if (
            rtype == RECORD_BATCH
            and self._handle.tell() >= self.config.segment_bytes
        ):
            self._start_segment(first_seq=seq)
        self._handle.write(line.encode("utf-8"))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._last_sha = sha
        self._next_seq = seq + 1
        return seq

    def append_batch(self, batch_id: str, deltas: Sequence[list]) -> int:
        """Journal one micro-batch (compact delta records) durably.

        Builds the per-batch manifest (delta counts, content sha, wall
        timestamp — the timestamp is integrity metadata inside the chain,
        never part of replayed state), appends, fsyncs, and returns the
        batch's seq.  The watermark only advances here: readers never see
        a batch that is not fully on disk.
        """
        if batch_id in self.applied_ids:
            raise JournalError(
                f"batch id {batch_id!r} is already journalled; ingest-level "
                "dedup should have skipped it"
            )
        deltas = [list(d) for d in deltas]
        kinds = [d[0] for d in deltas]
        manifest = {
            "n_deltas": len(deltas),
            "n_insert": kinds.count("i"),
            "n_delete": kinds.count("d"),
            "n_relabel": kinds.count("r"),
            "sha": hashlib.sha256(_canonical(deltas).encode()).hexdigest(),
            "ts": time.time(),
        }
        seq = self._append_record(
            RECORD_BATCH,
            {"id": batch_id, "deltas": deltas, "manifest": manifest},
        )
        self.applied_ids.add(batch_id)
        self.watermark = seq
        self.n_batches += 1
        return seq

    def has_batch(self, batch_id: str) -> bool:
        """Whether ``batch_id`` is already journalled (dedup probe)."""
        return batch_id in self.applied_ids

    # -- reading ----------------------------------------------------------------
    def records(self) -> Iterator[JournalRecord]:
        """Stream every record of the live generation, re-validating the chain.

        The journal was already vetted at open/recover time; this second
        pass re-checks the chain while feeding replay, so replay can never
        consume records an interleaved writer corrupted after open.
        """
        last_sha = ""
        next_seq: int | None = None
        for i, segment in enumerate(self._segments):
            first = i == 0
            for line in segment.read_bytes().splitlines():
                try:
                    envelope = json.loads(line)
                    seq = int(envelope["seq"])
                    rtype = str(envelope["type"])
                    payload = envelope["payload"]
                    prev = str(envelope["prev"])
                    sha = str(envelope["sha"])
                except (KeyError, TypeError, ValueError) as exc:
                    raise JournalError(
                        f"unparsable record in {segment.name}: {exc}"
                    ) from exc
                if sha != _record_sha(prev, seq, rtype, payload):
                    raise JournalError(
                        f"sha256 chain link broken at seq {seq} in "
                        f"{segment.name}"
                    )
                if first:
                    first = False
                elif prev != last_sha:
                    raise JournalError(
                        f"chain discontinuity at seq {seq} in {segment.name}"
                    )
                if next_seq is not None and seq != next_seq:
                    raise JournalError(
                        f"sequence gap at seq {seq} in {segment.name}"
                    )
                last_sha = sha
                next_seq = seq + 1
                yield JournalRecord(seq=seq, type=rtype, payload=payload, sha=sha)

    def generation_bytes(self) -> int:
        """Total on-disk bytes of the live generation's segments."""
        return sum(os.path.getsize(p) for p in self._segments if p.exists())

    def segment_names(self) -> list[str]:
        """Live segment file names, in replay order."""
        return [p.name for p in self._segments]

    # -- compaction --------------------------------------------------------------
    def compact(
        self,
        row_chunks: Iterator[list[list]],
        next_row_id: int,
        n_alive: int,
        alarms: list,
        events_dropped: int,
    ) -> None:
        """Fold the journal into a fresh generation seeded with live state.

        Writes the next generation completely (rebase header + row
        chunks, fsynced), atomically flips ``CURRENT``, then deletes the
        old generation's segments.  A crash before the flip leaves the old
        generation live (the new one is swept as orphans on recover); a
        crash after it leaves the new generation live (old segments swept).
        Sequence numbers keep increasing across generations so
        replay-to-offset semantics survive compaction.
        """
        old_segments = list(self._segments)
        old_generation = self.generation
        self._close_handle()

        chunks = list(row_chunks)
        self.generation = old_generation + 1
        self._segments = []
        self._last_sha = ""
        first_seq = self._next_seq
        self._start_segment(first_seq=first_seq)
        rebase_seq = self._append_record(
            RECORD_REBASE,
            {
                "config": self.config.to_dict(),
                "watermark": self.watermark,
                "n_batches": self.n_batches,
                "applied": sorted(self.applied_ids),
                "next_row": next_row_id,
                "n_rows": n_alive,
                "n_chunks": len(chunks),
                "alarms": alarms,
                "events_dropped": events_dropped,
            },
        )
        for i, chunk in enumerate(chunks):
            self._append_record(RECORD_ROWS, {"chunk": i, "rows": chunk})
        self.rebase_seq = rebase_seq

        atomic_write_json(
            self.directory / CURRENT_FILE, {"generation": self.generation}
        )
        for path in old_segments:
            path.unlink()

    # -- dead letters -------------------------------------------------------------
    @property
    def deadletter_path(self) -> Path:
        """The quarantine file (plain JSONL, advisory — not chain-linked)."""
        return self.directory / DEADLETTER_FILE

    def append_dead_letter(self, entry: dict) -> None:
        """Durably append one quarantine entry."""
        with open(self.deadletter_path, "ab") as fh:
            fh.write((_canonical(entry) + "\n").encode("utf-8"))
            fh.flush()
            os.fsync(fh.fileno())

    def dead_letters(self) -> list[dict]:
        """All quarantine entries, oldest first (latest status last per id)."""
        path = self.deadletter_path
        if not path.exists():
            return []
        entries = []
        for line in path.read_bytes().splitlines():
            if not line.strip():
                continue
            try:
                entries.append(json.loads(line))
            except ValueError as exc:
                raise JournalError(
                    f"unparsable dead-letter record: {exc}"
                ) from exc
        return entries

    def outstanding_dead_letters(self) -> list[dict]:
        """Entries whose *latest* status is still quarantined (retry input).

        The dead-letter file is append-only: a retry appends a new entry
        under the same ``id`` with the updated status, so folding by id
        and keeping the last word gives the open quarantine set.
        """
        latest: dict[str, dict] = {}
        for entry in self.dead_letters():
            latest[str(entry["id"])] = entry
        return [
            entry
            for entry in latest.values()
            if entry.get("status") == "quarantined"
        ]
