"""Typed row-edit deltas accepted by the streaming audit engine.

A delta is one of three row-level edits over the audited table:

* :class:`InsertDelta` — append a new row (per-schema-column values plus a
  binary label); the engine assigns the next stable row id;
* :class:`DeleteDelta` — tombstone an existing row by its stable id;
* :class:`RelabelDelta` — flip the label of an existing row.

Row ids are insertion sequence numbers: the ``i``-th inserted row has id
``i`` forever, deletes never renumber.  Deltas are immutable and travel
through the journal in a compact JSON list form (``["i", [values...],
label]`` / ``["d", row]`` / ``["r", row, label]``) so a million-row stream
stays cheap to serialise; :func:`delta_from_record` is the strict inverse
and raises :class:`~repro.errors.DeltaError` on any malformed record —
structural garbage never reaches the engine untyped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import DeltaError

KIND_INSERT = "insert"
KIND_DELETE = "delete"
KIND_RELABEL = "relabel"
KINDS = (KIND_INSERT, KIND_DELETE, KIND_RELABEL)

#: One-byte journal tags for the compact list form.
TAG_INSERT = "i"
TAG_DELETE = "d"
TAG_RELABEL = "r"


@dataclass(frozen=True)
class InsertDelta:
    """Append one row: per-schema-column values (schema order) plus label."""

    values: tuple[float, ...]
    label: int

    kind = KIND_INSERT

    def to_record(self) -> list:
        """Compact JSON-safe journal form ``["i", [values...], label]``."""
        return [TAG_INSERT, list(self.values), int(self.label)]


@dataclass(frozen=True)
class DeleteDelta:
    """Tombstone the row with stable id ``row``."""

    row: int

    kind = KIND_DELETE

    def to_record(self) -> list:
        """Compact JSON-safe journal form ``["d", row]``."""
        return [TAG_DELETE, int(self.row)]


@dataclass(frozen=True)
class RelabelDelta:
    """Set the label of the row with stable id ``row`` to ``label``."""

    row: int
    label: int

    kind = KIND_RELABEL

    def to_record(self) -> list:
        """Compact JSON-safe journal form ``["r", row, label]``."""
        return [TAG_RELABEL, int(self.row), int(self.label)]


#: Any of the three delta types (for annotations).
Delta = InsertDelta | DeleteDelta | RelabelDelta


def _require_int(value: object, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise DeltaError(f"{what} must be an integer, got {value!r}")
    return value


def delta_from_record(record: object) -> Delta:
    """Parse one compact journal record back into a typed delta.

    The strict inverse of each delta's ``to_record``; raises
    :class:`~repro.errors.DeltaError` on unknown tags, wrong arity, or
    non-numeric fields.  Schema-level validation (code ranges, label
    domain, row liveness) happens later against the stream state — this
    guard only ensures the record is structurally a delta.
    """
    if not isinstance(record, (list, tuple)) or not record:
        raise DeltaError(f"delta record must be a non-empty list, got {record!r}")
    tag = record[0]
    if tag == TAG_INSERT:
        if len(record) != 3:
            raise DeltaError(
                f"insert record must be [tag, values, label], got {record!r}"
            )
        values = record[1]
        if not isinstance(values, (list, tuple)):
            raise DeltaError(
                f"insert values must be a list, got {values!r}"
            )
        for v in values:
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                raise DeltaError(f"insert value {v!r} is not numeric")
        label = _require_int(record[2], "insert label")
        return InsertDelta(values=tuple(values), label=label)
    if tag == TAG_DELETE:
        if len(record) != 2:
            raise DeltaError(f"delete record must be [tag, row], got {record!r}")
        return DeleteDelta(row=_require_int(record[1], "delete row"))
    if tag == TAG_RELABEL:
        if len(record) != 3:
            raise DeltaError(
                f"relabel record must be [tag, row, label], got {record!r}"
            )
        return RelabelDelta(
            row=_require_int(record[1], "relabel row"),
            label=_require_int(record[2], "relabel label"),
        )
    raise DeltaError(
        f"unknown delta tag {tag!r}; expected one of "
        f"{(TAG_INSERT, TAG_DELETE, TAG_RELABEL)}"
    )


def deltas_from_records(records: Sequence[object]) -> list[Delta]:
    """Parse a batch's list of compact records, failing on the first bad one.

    The raised :class:`~repro.errors.DeltaError` names the zero-based
    position of the offending record so a poisoned batch is diagnosable.
    """
    out: list[Delta] = []
    for i, record in enumerate(records):
        try:
            out.append(delta_from_record(record))
        except DeltaError as exc:
            raise DeltaError(f"record {i}: {exc}") from exc
    return out
