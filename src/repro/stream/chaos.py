"""Chaos smoke for the streaming auditor: crash-safe ingestion, proven.

``make stream-chaos`` (and the CI ``stream-chaos`` stage) batters the
stream write path and asserts the recovery contract: however the driver
dies mid-ingestion, a restart must replay the journal to **byte-identical
audited state** — same watermark, same region reports, same alarm set,
same digest — as a run that was never interrupted.

The kill sites are chosen deterministically via the ``REPRO_STREAM_CHAOS``
environment variable: a JSON plan ``{"batch": id, "stage": stage,
"action": descriptor}`` arms a :class:`~repro.resilience.faults.CrashFault`
/ :class:`~repro.resilience.faults.HangFault` worker-action descriptor at
one of the write path's two crash windows (``post-append``: journalled but
not applied; ``pre-apply``: about to fold into the in-memory state).  The
scenarios:

* **crash-exit** — the driver ``os._exit``\\ s right after the fsynced
  append; the restart must dedup the journalled batch, not double-apply;
* **crash-sigkill** — same window, death by signal (no Python cleanup);
* **hang + external SIGKILL** — the driver wedges between append and
  apply; the harness SIGKILLs it from outside once the armed batch is on
  disk (the "operator kills a stuck ingester" drill);
* **torn tail** — the final journal record is truncated mid-line on disk;
  recovery must clip exactly the torn record and re-ingest it;
* **compaction** — a generation flip happens mid-stream, then the driver
  is killed; replay across the rebase must still match, and no orphan
  segments may survive recovery.

Run directly::

    PYTHONPATH=src python -m repro.stream.chaos
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro.data.io import atomic_write_json
from repro.errors import InternalError
from repro.resilience.faults import (
    CHAOS_CRASH,
    CHAOS_HANG,
    CRASH_EXIT,
    CRASH_EXIT_CODE,
    CRASH_SIGKILL,
    CrashFault,
    HangFault,
)
from repro.stream.journal import _SEGMENT_RE, CURRENT_FILE

#: Environment variable carrying the armed chaos plan for one subprocess.
CHAOS_ENV = "REPRO_STREAM_CHAOS"

N_BATCHES = 40
DELTAS_PER_BATCH = 50
#: Batch the chaos plans arm; mid-stream so both sides are non-trivial.
VICTIM_BATCH = "b0020"
CHAOS_TIMEOUT = 120.0


def execute_chaos_action(action: dict) -> None:
    """Run one worker-action descriptor against the current process.

    Mirrors the process pool's executor: crash descriptors never return,
    hang descriptors sleep (so an external killer can land deterministically).
    """
    kind = action.get("kind")
    if kind == CHAOS_CRASH:
        if action.get("mode") == CRASH_SIGKILL:
            os.kill(os.getpid(), signal.SIGKILL)
        os._exit(CRASH_EXIT_CODE)
    if kind == CHAOS_HANG:
        time.sleep(float(action["seconds"]))
        return
    raise InternalError(f"unknown stream chaos action {action!r}")


def chaos_hook_from_env() -> Callable[[str, str], None] | None:
    """The service chaos hook armed by ``REPRO_STREAM_CHAOS``, if any.

    The ingest CLI consults this so a *subprocess* can be made to die at
    an exact batch and write-path stage without patching any code.
    """
    spec = os.environ.get(CHAOS_ENV)
    if not spec:
        return None
    try:
        plan = json.loads(spec)
        batch, stage, action = plan["batch"], plan["stage"], plan["action"]
    except (KeyError, TypeError, ValueError) as exc:
        raise InternalError(f"malformed {CHAOS_ENV} plan: {exc}") from exc

    def hook(batch_id: str, at_stage: str) -> None:
        if batch_id == batch and at_stage == stage:
            execute_chaos_action(action)

    return hook


# -- workload generation ----------------------------------------------------------

def write_workload(directory: Path, seed: int = 7) -> tuple[Path, Path]:
    """Write the schema + batches files the scenarios share.

    The workload is seeded and id-stable: mostly inserts over three
    protected attributes plus a numeric feature, with deletes and relabels
    aimed at rows known to be alive, so every batch is valid and the only
    nondeterminism left for the byte-compare to catch is the harness's.
    """
    schema_path = directory / "schema.json"
    atomic_write_json(
        schema_path,
        {
            "columns": [
                {"name": "age", "kind": "categorical", "domain": ["<30", ">=30"]},
                {
                    "name": "race",
                    "kind": "categorical",
                    "domain": ["a", "b", "c"],
                },
                {"name": "sex", "kind": "categorical", "domain": ["f", "m"]},
                {"name": "score", "kind": "numeric"},
            ],
            "protected": ["age", "race", "sex"],
        },
    )
    rng = np.random.default_rng(seed)
    batches_path = directory / "batches.jsonl"
    alive: list[int] = []
    next_row = 0
    lines = []
    for b in range(N_BATCHES):
        deltas = []
        for _ in range(DELTAS_PER_BATCH):
            roll = float(rng.random())
            if roll < 0.85 or len(alive) < 10:
                values = [
                    int(rng.integers(2)),
                    int(rng.integers(3)),
                    int(rng.integers(2)),
                    round(float(rng.random()), 6),
                ]
                # Skew labels by cell so regions actually cross tau_c.
                label = 1 if rng.random() < (0.2 + 0.6 * (values[1] == 0)) else 0
                deltas.append(["i", values, label])
                alive.append(next_row)
                next_row += 1
            elif roll < 0.93:
                row = alive.pop(int(rng.integers(len(alive))))
                deltas.append(["d", row])
            else:
                row = alive[int(rng.integers(len(alive)))]
                deltas.append(["r", row, int(rng.integers(2))])
        lines.append(json.dumps({"id": f"b{b:04d}", "deltas": deltas}))
    batches_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return schema_path, batches_path


# -- subprocess drivers -----------------------------------------------------------

def _stream_cmd(*tail: str) -> list[str]:
    return [sys.executable, "-m", "repro", "stream", *tail]


def _run(
    cmd: list[str], env_extra: dict | None = None, check: bool = True
) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env.pop(CHAOS_ENV, None)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.run(
        cmd, capture_output=True, env=env, timeout=CHAOS_TIMEOUT
    )
    if check and proc.returncode != 0:
        raise InternalError(
            f"command {cmd[3:]} failed (exit {proc.returncode}): "
            f"{proc.stderr.decode(errors='replace')}"
        )
    return proc


def _init(stream_dir: Path, schema: Path, segment_bytes: int = 8192) -> None:
    _run(
        _stream_cmd(
            "init", str(stream_dir), "--schema", str(schema),
            "--tau-c", "0.1", "--k", "10",
            "--segment-bytes", str(segment_bytes),
        )
    )


def _replay_stdout(stream_dir: Path) -> bytes:
    return _run(_stream_cmd("replay", str(stream_dir))).stdout


def _assert_no_orphans(stream_dir: Path, context: str) -> None:
    """Every segment on disk must belong to the CURRENT generation."""
    generation = json.loads((stream_dir / CURRENT_FILE).read_text())["generation"]
    stray = [
        p.name
        for p in stream_dir.iterdir()
        if (m := _SEGMENT_RE.match(p.name)) and int(m.group(1)) != generation
    ]
    if stray:
        raise InternalError(
            f"orphan segments survived recovery after {context}: {stray}"
        )


def _assert_recovered(
    stream_dir: Path, clean_stdout: bytes, context: str
) -> None:
    resumed = _replay_stdout(stream_dir)
    if resumed != clean_stdout:
        raise InternalError(
            f"replay after {context} diverges from the uninterrupted run"
        )
    _assert_no_orphans(stream_dir, context)


def _chaos_env(stage: str, action: dict) -> dict:
    return {
        CHAOS_ENV: json.dumps(
            {"batch": VICTIM_BATCH, "stage": stage, "action": action}
        )
    }


# -- scenarios --------------------------------------------------------------------

def run_clean(tmp: Path, schema: Path, batches: Path) -> bytes:
    """The oracle run: uninterrupted ingest, replay output captured."""
    stream_dir = tmp / "clean"
    _init(stream_dir, schema)
    _run(_stream_cmd("ingest", str(stream_dir), str(batches)))
    return _replay_stdout(stream_dir)


def run_crash(
    tmp: Path, schema: Path, batches: Path, clean: bytes, mode: str, stage: str
) -> None:
    """Kill the ingester via an armed CrashFault; restart must converge."""
    stream_dir = tmp / f"crash-{mode}-{stage}"
    _init(stream_dir, schema)
    action = CrashFault(times=1, mode=mode).worker_action(("stream",), 1)
    proc = _run(
        _stream_cmd("ingest", str(stream_dir), str(batches)),
        env_extra=_chaos_env(stage, action),
        check=False,
    )
    want = CRASH_EXIT_CODE if mode == CRASH_EXIT else -signal.SIGKILL
    if proc.returncode != want:
        raise InternalError(
            f"armed {mode} crash at {stage} exited {proc.returncode}, "
            f"expected {want}"
        )
    _run(_stream_cmd("ingest", str(stream_dir), str(batches)))
    _assert_recovered(stream_dir, clean, f"{mode} crash at {stage}")


def _journal_holds_batch(stream_dir: Path, batch_id: str) -> bool:
    needle = f'"id":"{batch_id}"'.encode()
    for path in stream_dir.iterdir():
        if _SEGMENT_RE.match(path.name) and needle in path.read_bytes():
            return True
    return False


def run_hang_kill(tmp: Path, schema: Path, batches: Path, clean: bytes) -> None:
    """Wedge the driver between append and apply, SIGKILL it from outside."""
    stream_dir = tmp / "hang-kill"
    _init(stream_dir, schema)
    action = HangFault(seconds=10 * CHAOS_TIMEOUT, times=1).worker_action(
        ("stream",), 1
    )
    env = dict(os.environ)
    env.update(_chaos_env("pre-apply", action))
    victim = subprocess.Popen(
        _stream_cmd("ingest", str(stream_dir), str(batches)),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env,
    )
    deadline = time.monotonic() + CHAOS_TIMEOUT
    try:
        while not _journal_holds_batch(stream_dir, VICTIM_BATCH):
            if victim.poll() is not None:
                raise InternalError(
                    "hung ingester exited before the armed batch was "
                    f"journalled (exit {victim.returncode})"
                )
            if time.monotonic() > deadline:
                raise InternalError(
                    "armed batch never reached the journal; the hang window "
                    "was not entered"
                )
            time.sleep(0.02)
        victim.send_signal(signal.SIGKILL)
    finally:
        if victim.poll() is None and time.monotonic() > deadline:
            victim.kill()
        victim.wait(timeout=30.0)
    _run(_stream_cmd("ingest", str(stream_dir), str(batches)))
    _assert_recovered(stream_dir, clean, "hang + external SIGKILL")


def run_torn_tail(tmp: Path, schema: Path, batches: Path, clean: bytes) -> None:
    """Chop the last journal record mid-line; recovery must clip and re-ingest."""
    stream_dir = tmp / "torn"
    _init(stream_dir, schema)
    _run(_stream_cmd("ingest", str(stream_dir), str(batches)))
    segments = sorted(
        p for p in stream_dir.iterdir() if _SEGMENT_RE.match(p.name)
    )
    last = segments[-1]
    data = last.read_bytes()
    cut = data.rstrip(b"\n").rfind(b"\n")
    # Keep a partial final line: a classic torn append.  (A single-record
    # final segment degenerates to a torn-at-zero, equally valid.)
    keep = cut + 1 + (len(data) - cut) // 2 if cut >= 0 else len(data) // 2
    last.write_bytes(data[:keep])
    _run(_stream_cmd("ingest", str(stream_dir), str(batches)))
    _assert_recovered(stream_dir, clean, "torn final record")


def run_compaction_crash(
    tmp: Path, schema: Path, batches: Path, seed: int
) -> None:
    """Compact mid-stream, then crash; replay across the rebase must match.

    Both the oracle and the victim compact after the same batch prefix, so
    their journals rebase at the same seq and the byte-compare stays exact.
    """
    all_lines = batches.read_text(encoding="utf-8").splitlines()
    first = tmp / "first-half.jsonl"
    second = tmp / "second-half.jsonl"
    first.write_text("\n".join(all_lines[: N_BATCHES // 2]) + "\n")
    second.write_text("\n".join(all_lines[N_BATCHES // 2:]) + "\n")

    oracle_dir = tmp / "compact-clean"
    _init(oracle_dir, schema)
    _run(_stream_cmd("ingest", str(oracle_dir), str(first)))
    _run(_stream_cmd("compact", str(oracle_dir)))
    _run(_stream_cmd("ingest", str(oracle_dir), str(second)))
    oracle = _replay_stdout(oracle_dir)

    victim_dir = tmp / "compact-crash"
    _init(victim_dir, schema)
    _run(_stream_cmd("ingest", str(victim_dir), str(first)))
    _run(_stream_cmd("compact", str(victim_dir)))
    action = CrashFault(times=1, mode=CRASH_EXIT).worker_action(("stream",), 1)
    proc = _run(
        _stream_cmd("ingest", str(victim_dir), str(second)),
        env_extra=_chaos_env("post-append", action),
        check=False,
    )
    if proc.returncode != CRASH_EXIT_CODE:
        raise InternalError(
            f"armed crash after compaction exited {proc.returncode}, "
            f"expected {CRASH_EXIT_CODE}"
        )
    _run(_stream_cmd("ingest", str(victim_dir), str(second)))
    _assert_recovered(victim_dir, oracle, "crash after compaction")


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``make stream-chaos``."""
    parser = argparse.ArgumentParser(
        description="streaming-auditor chaos smoke (crashes, kills, torn tails)"
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-stream-chaos-") as tmpname:
        tmp = Path(tmpname)
        schema, batches = write_workload(tmp, seed=args.seed)
        clean = run_clean(tmp, schema, batches)
        if b"digest" not in clean:
            raise InternalError("clean replay printed no state digest")

        run_crash(tmp, schema, batches, clean, CRASH_EXIT, "post-append")
        run_crash(tmp, schema, batches, clean, CRASH_SIGKILL, "post-append")
        run_crash(tmp, schema, batches, clean, CRASH_EXIT, "pre-apply")
        print(
            "stream-chaos ok: exit/SIGKILL crashes at post-append and "
            "pre-apply recovered to the clean replay byte for byte"
        )
        run_hang_kill(tmp, schema, batches, clean)
        print(
            "stream-chaos ok: hung driver SIGKILLed between append and "
            "apply; restart converged with no orphan segments"
        )
        run_torn_tail(tmp, schema, batches, clean)
        print(
            "stream-chaos ok: torn final record clipped on recovery and "
            "re-ingested; replay matches the clean run"
        )
        run_compaction_crash(tmp, schema, batches, seed=args.seed)
        print(
            "stream-chaos ok: crash after a generation flip replayed across "
            "the rebase to the oracle's bytes; old generation fully swept"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
