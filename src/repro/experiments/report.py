"""One-shot report generator: every paper artefact in a single document.

:func:`generate_report` runs the full experiment battery (Fig. 3 through
Fig. 9 plus Tables II and III) at a configurable scale and renders one
markdown document with every regenerated table — the programmatic
equivalent of ``pytest benchmarks/ --benchmark-only -s``, usable from a
script or the CLI without pytest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.data.synth import load_adult, load_compas, load_lawschool
from repro.experiments.baselines_table import run_baseline_comparison
from repro.experiments.params import sweep_T, sweep_tau_c
from repro.experiments.reporting import format_table
from repro.experiments.scalability import (
    identification_vs_attrs,
    speedup_summary,
)
from repro.experiments.tradeoff import run_tradeoff
from repro.experiments.validation import (
    run_validation,
    validation_summary,
)


@dataclass(frozen=True)
class ReportScale:
    """Workload sizes for one report run (defaults finish in ~2 minutes)."""

    adult_rows: int = 12_000
    compas_rows: int = 6_172
    lawschool_rows: int = 4_590
    models: tuple[str, ...] = ("dt", "lg")
    scalability_rows: int = 10_000
    scalability_attrs: tuple[int, ...] = (2, 4, 6, 8)
    seed: int = 0


@dataclass
class ReportSection:
    title: str
    body: str
    seconds: float


@dataclass
class Report:
    scale: ReportScale
    sections: list[ReportSection] = field(default_factory=list)

    def to_markdown(self) -> str:
        lines = [
            "# Regenerated evaluation artefacts",
            "",
            f"Scale: Adult={self.scale.adult_rows}, "
            f"ProPublica={self.scale.compas_rows}, "
            f"Law School={self.scale.lawschool_rows}, "
            f"models={list(self.scale.models)}, seed={self.scale.seed}",
            "",
        ]
        for section in self.sections:
            lines.append(f"## {section.title}  ({section.seconds:.1f}s)")
            lines.append("")
            lines.append("```")
            lines.append(section.body)
            lines.append("```")
            lines.append("")
        return "\n".join(lines)


def _timed(report: Report, title: str, producer) -> None:
    start = time.perf_counter()
    body = producer()
    report.sections.append(
        ReportSection(title, body, time.perf_counter() - start)
    )


def generate_report(scale: ReportScale | None = None) -> Report:
    """Run every experiment and collect the rendered tables."""
    scale = scale or ReportScale()
    adult = load_adult(scale.adult_rows, seed=5)
    compas = load_compas(scale.compas_rows, seed=11)
    lawschool = load_lawschool(scale.lawschool_rows, seed=23)
    report = Report(scale)

    def table2() -> str:
        rows = [
            ("Adult", len(adult.schema), len(adult.protected), adult.n_rows),
            ("ProPublica", len(compas.schema), len(compas.protected), compas.n_rows),
            (
                "Law School",
                len(lawschool.schema),
                len(lawschool.protected),
                lawschool.n_rows,
            ),
        ]
        return format_table(("dataset", "|A|", "|X|", "rows"), rows)

    _timed(report, "Table II — dataset characteristics", table2)
    _timed(
        report,
        "Fig. 3 — unfair subgroups vs IBS (ProPublica)",
        lambda: validation_summary(
            run_validation(compas, models=scale.models, seed=scale.seed)
        ),
    )
    _timed(
        report,
        "Fig. 4 — trade-off (Adult, tau_c=0.5)",
        lambda: run_tradeoff(
            adult, "Adult", tau_c=0.5, models=scale.models, seed=scale.seed
        ).table(),
    )
    _timed(
        report,
        "Fig. 5 — trade-off (Law School, tau_c=0.1)",
        lambda: run_tradeoff(
            lawschool, "Law School", tau_c=0.1, models=scale.models, seed=scale.seed
        ).table(),
    )
    _timed(
        report,
        "Fig. 6 — trade-off (ProPublica, tau_c=0.1)",
        lambda: run_tradeoff(
            compas, "ProPublica", tau_c=0.1, models=scale.models, seed=scale.seed
        ).table(),
    )
    _timed(
        report,
        "Fig. 7 — varying tau_c (ProPublica, DT)",
        lambda: sweep_tau_c(compas, "ProPublica", seed=scale.seed).table(
            "fairness index and accuracy by tau_c"
        ),
    )
    _timed(
        report,
        "Fig. 8 — T = 1 vs T = |X| (ProPublica, DT)",
        lambda: sweep_T(compas, "ProPublica", tau_c=0.1, seed=scale.seed).table(
            "fairness index and accuracy by T"
        ),
    )
    _timed(
        report,
        "Table III — baseline comparison (Adult, X={race,gender})",
        lambda: run_baseline_comparison(adult, seed=scale.seed).table(),
    )

    def fig9() -> str:
        result = identification_vs_attrs(
            n_rows=scale.scalability_rows, attr_grid=scale.scalability_attrs
        )
        speedups = speedup_summary(result)
        return (
            result.table("#attrs")
            + "\nnaive/optimized speedups: "
            + ", ".join(f"{int(k)} attrs: {v:.1f}x" for k, v in speedups.items())
        )

    _timed(report, "Fig. 9a — identification scalability", fig9)
    return report
