"""Figs. 4/5/6 — the fairness–accuracy trade-off on the three datasets.

Two sweeps per dataset, exactly as §V-B2 structures them:

* *identification scopes* — Original vs. Lattice vs. Leaf vs. Top, all with
  preferential sampling (panels a–c of each figure);
* *pre-processing techniques* — PS vs. US vs. oversampling vs. massaging,
  all with the Lattice scope (panel d).

Each cell reports the fairness index under FPR and FNR plus test accuracy
for every downstream model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.ibs import SCOPE_LATTICE, SCOPE_LEAF, SCOPE_TOP
from repro.core.pipeline import RemedyConfig
from repro.core.samplers import (
    MASSAGING,
    OVERSAMPLING,
    PREFERENTIAL,
    TECHNIQUES,
    UNDERSAMPLING,
)
from repro.data.dataset import Dataset
from repro.data.split import train_test_split
from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    DEFAULT_MODELS,
    EVAL_HEADERS,
    EvalResult,
    run_eval_cells,
)
from repro.resilience import CellExecutor, CellSpec

SCOPE_VARIANTS = (SCOPE_LATTICE, SCOPE_LEAF, SCOPE_TOP)


@dataclass(frozen=True)
class TradeoffResult:
    """All evaluations of one dataset's trade-off figure."""

    dataset_name: str
    tau_c: float
    T: float
    scope_results: tuple[EvalResult, ...]
    technique_results: tuple[EvalResult, ...]

    def all_results(self) -> tuple[EvalResult, ...]:
        return self.scope_results + self.technique_results

    def by_variant(self, variant: str) -> list[EvalResult]:
        return [r for r in self.all_results() if r.variant == variant]

    def table(self) -> str:
        rows = [r.row() for r in self.all_results()]
        return format_table(
            EVAL_HEADERS,
            rows,
            title=(
                f"Figs. 4-6 — fairness/accuracy trade-off "
                f"({self.dataset_name}, tau_c={self.tau_c}, T={self.T})"
            ),
        )


def run_tradeoff(
    dataset: Dataset,
    dataset_name: str,
    tau_c: float,
    T: float = 1.0,
    k: int = 30,
    models: Sequence[str] = DEFAULT_MODELS,
    techniques: Sequence[str] = TECHNIQUES,
    scopes: Sequence[str] = SCOPE_VARIANTS,
    test_fraction: float = 0.3,
    seed: int = 0,
    executor: CellExecutor | None = None,
) -> TradeoffResult:
    """Run the full trade-off grid for one dataset.

    Paper parameters: tau_c=0.1 for ProPublica / Law School, 0.5 for Adult,
    T=1 throughout (§V-B2).

    Each (variant, model) evaluation runs as one cell of ``executor`` (a
    single-attempt default when omitted): failed cells become
    ``FAILED(...)`` placeholder rows instead of aborting the grid, and a
    checkpointing executor makes the sweep resumable.
    """
    executor = executor if executor is not None else CellExecutor()
    train, test = train_test_split(dataset, test_fraction, seed=seed)

    def eval_spec(model_name: str) -> CellSpec:
        return CellSpec(
            key=("tradeoff", "original", model_name),
            fn_id="eval.model",
            params={
                "train": train,
                "test": test,
                "model_name": model_name,
                "variant": "original",
                "seed": seed,
            },
        )

    def remedy_spec(model_name: str, variant: str, config: RemedyConfig) -> CellSpec:
        return CellSpec(
            key=("tradeoff", variant, model_name),
            fn_id="eval.remedy",
            params={
                "train": train,
                "test": test,
                "model_name": model_name,
                "config": config,
                "variant": variant,
            },
        )

    scope_cells = []
    for model_name in models:
        scope_cells.append(("original", model_name, eval_spec(model_name)))
        for scope in scopes:
            config = RemedyConfig(
                tau_c=tau_c, T=T, k=k, technique=PREFERENTIAL, scope=scope, seed=seed
            )
            variant = f"scope:{scope}"
            scope_cells.append(
                (variant, model_name, remedy_spec(model_name, variant, config))
            )
    scope_results = run_eval_cells(executor, scope_cells)

    technique_cells = []
    for model_name in models:
        for technique in techniques:
            if technique == PREFERENTIAL:
                continue  # already covered by scope:lattice above
            config = RemedyConfig(
                tau_c=tau_c,
                T=T,
                k=k,
                technique=technique,
                scope=SCOPE_LATTICE,
                seed=seed,
            )
            variant = f"technique:{technique}"
            technique_cells.append(
                (variant, model_name, remedy_spec(model_name, variant, config))
            )
    technique_results = run_eval_cells(executor, technique_cells)

    return TradeoffResult(
        dataset_name=dataset_name,
        tau_c=tau_c,
        T=T,
        scope_results=tuple(scope_results),
        technique_results=tuple(technique_results),
    )


__all__ = [
    "TradeoffResult",
    "run_tradeoff",
    "SCOPE_VARIANTS",
    "PREFERENTIAL",
    "UNDERSAMPLING",
    "OVERSAMPLING",
    "MASSAGING",
]
