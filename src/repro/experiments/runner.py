"""Shared experiment plumbing: train/evaluate one configuration.

Each evaluation fits a downstream classifier on (possibly remedied or
reweighted) training data, predicts the untouched test set — the paper
never remedies the test side — and reports accuracy plus the fairness
index under FPR and FNR.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Sequence

import numpy as np

from repro.audit.fairness_index import fairness_index
from repro.core.pipeline import RemedyConfig, RemedyPipeline
from repro.data.dataset import Dataset
from repro.errors import DataError
from repro.ml.metrics import FNR, FPR, accuracy
from repro.ml.models import make_model
from repro.resilience import CellExecutor, CellSpec, register_cell

DEFAULT_MODELS = ("dt", "rf", "lg", "nn")


@dataclass(frozen=True)
class EvalResult:
    """Outcome of one (variant, model) evaluation.

    ``status`` is ``"ok"`` for a completed evaluation; a cell that failed
    after its retry budget carries the executor's marker
    (``FAILED(<error class>)`` or ``TIMEOUT``) with NaN metrics, so partial
    sweeps stay renderable instead of aborting.
    """

    variant: str
    model: str
    accuracy: float
    fairness_index_fpr: float
    fairness_index_fnr: float
    train_rows: int
    fit_seconds: float
    status: str = "ok"
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the evaluation completed and the metrics are real."""
        return self.status == "ok"

    @classmethod
    def failed(
        cls, variant: str, model: str, marker: str, error: str | None = None
    ) -> "EvalResult":
        """A placeholder row for a cell that failed after all retries."""
        nan = float("nan")
        return cls(
            variant=variant,
            model=model,
            accuracy=nan,
            fairness_index_fpr=nan,
            fairness_index_fnr=nan,
            train_rows=0,
            fit_seconds=nan,
            status=marker,
            error=error,
        )

    def row(self) -> tuple[object, ...]:
        """Row for the reporting tables."""
        return (
            self.variant,
            self.model,
            self.fairness_index_fpr,
            self.fairness_index_fnr,
            self.accuracy,
            self.train_rows,
            self.fit_seconds,
            self.status,
        )


EVAL_HEADERS = (
    "variant",
    "model",
    "FI(FPR)",
    "FI(FNR)",
    "accuracy",
    "train_rows",
    "fit_s",
    "status",
)


def eval_result_to_dict(result: EvalResult) -> dict:
    """JSON-ready payload for checkpointing one :class:`EvalResult`."""
    return asdict(result)


def eval_result_from_dict(payload: object) -> EvalResult:
    """Rebuild an :class:`EvalResult` from :func:`eval_result_to_dict`."""
    if not isinstance(payload, dict):
        raise DataError(f"malformed EvalResult payload: {payload!r}")
    try:
        return EvalResult(**payload)
    except TypeError as exc:
        raise DataError(f"malformed EvalResult payload: {payload!r}") from exc


def run_eval_cells(
    executor: CellExecutor,
    cells: Sequence[tuple[str, str, CellSpec]],
) -> list[EvalResult]:
    """Run ``(variant, model, spec)`` evaluation cells fault-tolerantly.

    The specs address registered cell functions (``"eval.model"``,
    ``"eval.remedy"``, ...) so the sweep runs on either executor backend.
    Completed cells contribute their :class:`EvalResult`; failed ones
    degrade into :meth:`EvalResult.failed` placeholder rows carrying the
    executor's marker, so callers always get one row per requested cell.
    """
    outcomes = executor.run_specs(
        [spec for _, _, spec in cells],
        encode=eval_result_to_dict,
        decode=eval_result_from_dict,
    )
    results: list[EvalResult] = []
    for (variant, model, _), outcome in zip(cells, outcomes):
        if outcome.ok:
            results.append(outcome.value)  # type: ignore[arg-type]
        else:
            results.append(
                EvalResult.failed(
                    variant, model, outcome.marker, outcome.error_message
                )
            )
    return results


@register_cell("eval.model")
def evaluate_model(
    train: Dataset,
    test: Dataset,
    model_name: str,
    variant: str = "original",
    seed: int = 0,
    sample_weight: np.ndarray | None = None,
    audit_attrs: Sequence[str] | None = None,
) -> EvalResult:
    """Fit ``model_name`` on ``train`` and audit its test predictions."""
    start = time.perf_counter()
    model = make_model(model_name, seed=seed).fit(train, sample_weight=sample_weight)
    fit_seconds = time.perf_counter() - start
    pred = model.predict(test)
    return EvalResult(
        variant=variant,
        model=model_name,
        accuracy=accuracy(test.y, pred),
        fairness_index_fpr=fairness_index(test, pred, FPR, attrs=audit_attrs),
        fairness_index_fnr=fairness_index(test, pred, FNR, attrs=audit_attrs),
        train_rows=train.n_rows,
        fit_seconds=fit_seconds,
    )


@register_cell("eval.remedy")
def evaluate_remedy(
    train: Dataset,
    test: Dataset,
    model_name: str,
    config: RemedyConfig,
    variant: str | None = None,
    audit_attrs: Sequence[str] | None = None,
) -> EvalResult:
    """Remedy the training data under ``config``, then evaluate."""
    pipeline = RemedyPipeline(config)
    remedied = pipeline.transform(train)
    label = variant or f"remedy[{config.scope},{config.technique}]"
    return evaluate_model(
        remedied,
        test,
        model_name,
        variant=label,
        seed=config.seed,
        audit_attrs=audit_attrs,
    )
