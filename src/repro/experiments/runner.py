"""Shared experiment plumbing: train/evaluate one configuration.

Each evaluation fits a downstream classifier on (possibly remedied or
reweighted) training data, predicts the untouched test set — the paper
never remedies the test side — and reports accuracy plus the fairness
index under FPR and FNR.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.audit.fairness_index import fairness_index
from repro.core.pipeline import RemedyConfig, RemedyPipeline
from repro.data.dataset import Dataset
from repro.ml.metrics import FNR, FPR, accuracy
from repro.ml.models import make_model

DEFAULT_MODELS = ("dt", "rf", "lg", "nn")


@dataclass(frozen=True)
class EvalResult:
    """Outcome of one (variant, model) evaluation."""

    variant: str
    model: str
    accuracy: float
    fairness_index_fpr: float
    fairness_index_fnr: float
    train_rows: int
    fit_seconds: float

    def row(self) -> tuple[object, ...]:
        """Row for the reporting tables."""
        return (
            self.variant,
            self.model,
            self.fairness_index_fpr,
            self.fairness_index_fnr,
            self.accuracy,
            self.train_rows,
            self.fit_seconds,
        )


EVAL_HEADERS = (
    "variant",
    "model",
    "FI(FPR)",
    "FI(FNR)",
    "accuracy",
    "train_rows",
    "fit_s",
)


def evaluate_model(
    train: Dataset,
    test: Dataset,
    model_name: str,
    variant: str = "original",
    seed: int = 0,
    sample_weight: np.ndarray | None = None,
    audit_attrs: Sequence[str] | None = None,
) -> EvalResult:
    """Fit ``model_name`` on ``train`` and audit its test predictions."""
    start = time.perf_counter()
    model = make_model(model_name, seed=seed).fit(train, sample_weight=sample_weight)
    fit_seconds = time.perf_counter() - start
    pred = model.predict(test)
    return EvalResult(
        variant=variant,
        model=model_name,
        accuracy=accuracy(test.y, pred),
        fairness_index_fpr=fairness_index(test, pred, FPR, attrs=audit_attrs),
        fairness_index_fnr=fairness_index(test, pred, FNR, attrs=audit_attrs),
        train_rows=train.n_rows,
        fit_seconds=fit_seconds,
    )


def evaluate_remedy(
    train: Dataset,
    test: Dataset,
    model_name: str,
    config: RemedyConfig,
    variant: str | None = None,
    audit_attrs: Sequence[str] | None = None,
) -> EvalResult:
    """Remedy the training data under ``config``, then evaluate."""
    pipeline = RemedyPipeline(config)
    remedied = pipeline.transform(train)
    label = variant or f"remedy[{config.scope},{config.technique}]"
    return evaluate_model(
        remedied,
        test,
        model_name,
        variant=label,
        seed=config.seed,
        audit_attrs=audit_attrs,
    )
