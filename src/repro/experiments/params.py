"""Figs. 7 & 8 — parameter sensitivity of the remedy (§V-B3).

* Fig. 7 varies the imbalance threshold ``tau_c`` from 0.1 to 0.9 with
  ``T = 1`` (decision tree) and reports fairness index (FPR) plus accuracy.
* Fig. 8 compares ``T = 1`` against ``T = |X|`` and reports the fairness
  index under FPR and FNR plus accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.pipeline import RemedyConfig
from repro.core.samplers import PREFERENTIAL
from repro.data.dataset import Dataset
from repro.data.split import train_test_split
from repro.experiments.reporting import format_table
from repro.experiments.runner import EvalResult, evaluate_model, evaluate_remedy

DEFAULT_TAU_GRID = (0.1, 0.3, 0.5, 0.7, 0.9)


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of a parameter sweep."""

    parameter: str
    value: float
    result: EvalResult


@dataclass(frozen=True)
class SweepResult:
    """A full parameter sweep: the unremedied baseline plus every grid point."""

    dataset_name: str
    model: str
    baseline: EvalResult
    points: tuple[SweepPoint, ...]

    def table(self, title: str) -> str:
        headers = ("value", "FI(FPR)", "FI(FNR)", "accuracy")
        rows = [
            (
                "original",
                self.baseline.fairness_index_fpr,
                self.baseline.fairness_index_fnr,
                self.baseline.accuracy,
            )
        ]
        rows.extend(
            (
                p.value,
                p.result.fairness_index_fpr,
                p.result.fairness_index_fnr,
                p.result.accuracy,
            )
            for p in self.points
        )
        return format_table(headers, rows, title=title)


def sweep_tau_c(
    dataset: Dataset,
    dataset_name: str,
    tau_grid: Sequence[float] = DEFAULT_TAU_GRID,
    T: float = 1.0,
    k: int = 30,
    model: str = "dt",
    technique: str = PREFERENTIAL,
    test_fraction: float = 0.3,
    seed: int = 0,
) -> SweepResult:
    """Fig. 7: fairness index and accuracy as ``tau_c`` varies."""
    train, test = train_test_split(dataset, test_fraction, seed=seed)
    baseline = evaluate_model(train, test, model, variant="original", seed=seed)
    points = []
    for tau_c in tau_grid:
        config = RemedyConfig(tau_c=tau_c, T=T, k=k, technique=technique, seed=seed)
        result = evaluate_remedy(
            train, test, model, config, variant=f"tau_c={tau_c}"
        )
        points.append(SweepPoint("tau_c", float(tau_c), result))
    return SweepResult(dataset_name, model, baseline, tuple(points))


def sweep_T(
    dataset: Dataset,
    dataset_name: str,
    tau_c: float,
    k: int = 30,
    model: str = "dt",
    technique: str = PREFERENTIAL,
    test_fraction: float = 0.3,
    seed: int = 0,
    T_values: Sequence[float] | None = None,
) -> SweepResult:
    """Fig. 8: ``T = 1`` vs ``T = |X|`` (or a custom grid)."""
    train, test = train_test_split(dataset, test_fraction, seed=seed)
    if T_values is None:
        T_values = (1.0, float(len(dataset.protected)))
    baseline = evaluate_model(train, test, model, variant="original", seed=seed)
    points = []
    for T in T_values:
        config = RemedyConfig(tau_c=tau_c, T=T, k=k, technique=technique, seed=seed)
        result = evaluate_remedy(train, test, model, config, variant=f"T={T}")
        points.append(SweepPoint("T", float(T), result))
    return SweepResult(dataset_name, model, baseline, tuple(points))
