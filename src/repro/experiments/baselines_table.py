"""Table III — comparison against subgroup-unfairness mitigation baselines.

Setup per §V-B4: Adult dataset, protected attributes ``{race, gender}``,
logistic regression as the downstream learner for every pre-processing
method (matching GerryFair's linear learner), evaluation under the
*fairness violation* metric (max divergence × group size), plus test
accuracy and the method's wall-clock execution time.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Callable, Sequence

from repro.audit.violation import fairness_violation
from repro.errors import DataError, ExperimentError
from repro.resilience import CellExecutor, CellSpec, register_cell
from repro.baselines.coverage import coverage_remedy
from repro.baselines.fairsmote import fair_smote
from repro.baselines.gerryfair import GerryFairClassifier
from repro.baselines.postprocess import GroupThresholdPostprocessor
from repro.baselines.reweighting import fairbalance_weights, reweighting_weights
from repro.core.pipeline import RemedyConfig, RemedyPipeline
from repro.data.dataset import Dataset
from repro.data.split import train_test_split
from repro.experiments.reporting import format_table
from repro.ml.metrics import FPR, accuracy
from repro.ml.models import make_model


@dataclass(frozen=True)
class BaselineRow:
    """One Table III row (``status`` marks cells that failed after retries)."""

    approach: str
    fairness_violation: float
    accuracy: float
    seconds: float  # method time (preprocessing or in-processing train)
    status: str = "ok"


def baseline_row_to_dict(row: BaselineRow) -> dict:
    """JSON-ready payload for checkpointing one :class:`BaselineRow`."""
    return asdict(row)


def baseline_row_from_dict(payload: object) -> BaselineRow:
    """Rebuild a :class:`BaselineRow` from :func:`baseline_row_to_dict`."""
    if not isinstance(payload, dict):
        raise DataError(f"malformed BaselineRow payload: {payload!r}")
    try:
        return BaselineRow(**payload)
    except TypeError as exc:
        raise DataError(f"malformed BaselineRow payload: {payload!r}") from exc


@dataclass(frozen=True)
class BaselineTable:
    """All Table III rows, renderable in the paper's listing order."""

    rows: tuple[BaselineRow, ...]

    def table(self) -> str:
        headers = ("approach", "fairness violation", "accuracy", "time (s)", "status")
        return format_table(
            headers,
            [
                (r.approach, r.fairness_violation, r.accuracy, r.seconds, r.status)
                for r in rows_sorted(self.rows)
            ],
            title="Table III — baseline comparison (X = {race, gender})",
        )


def rows_sorted(rows: Sequence[BaselineRow]) -> list[BaselineRow]:
    """Original first, then the paper's listing order."""
    order = {
        "original": 0,
        "remedy": 1,
        "coverage": 2,
        "fairbalance": 3,
        "fair-smote": 4,
        "reweighting": 5,
        "gerryfair": 6,
        "postprocess": 7,
    }
    return sorted(rows, key=lambda r: order.get(r.approach, 99))


#: Table III approach ids, in the paper's listing order.
APPROACHES = (
    "original",
    "remedy",
    "coverage",
    "fairbalance",
    "fair-smote",
    "reweighting",
    "gerryfair",
    "postprocess",
)


@register_cell("table3.approach")
def approach_row(
    train: Dataset,
    test: Dataset,
    approach: str,
    protected: Sequence[str],
    model: str,
    tau_c: float,
    T: float,
    k: int,
    gamma: str,
    technique: str,
    seed: int,
    gerryfair_iters: int,
) -> BaselineRow:
    """One Table III cell: run ``approach`` end to end and build its row.

    A module-level dispatcher (rather than one closure per approach) so
    the process backend can address any approach by ``(cell id, params)``.
    """

    def audit(pred) -> float:
        return fairness_violation(
            test, pred, gamma=gamma, attrs=protected, min_size=k
        )

    def measure(preprocess: Callable[[], tuple]) -> BaselineRow:
        """Time ``preprocess`` -> (train', weights, model); fit, predict, audit."""
        start = time.perf_counter()
        fit_data, weights, clf = preprocess()
        elapsed = time.perf_counter() - start
        if clf is None:
            clf = make_model(model, seed=seed).fit(fit_data, sample_weight=weights)
        pred = clf.predict(test)
        return BaselineRow(approach, audit(pred), accuracy(test.y, pred), elapsed)

    if approach == "original":
        clf = make_model(model, seed=seed).fit(train)
        pred = clf.predict(test)
        return BaselineRow("original", audit(pred), accuracy(test.y, pred), 0.0)
    if approach == "remedy":
        # Remedy (ours): lattice scope with the configured sampler.
        return measure(
            lambda: (
                RemedyPipeline(
                    RemedyConfig(tau_c=tau_c, T=T, k=k, technique=technique, seed=seed)
                ).transform(train),
                None,
                None,
            )
        )
    if approach == "coverage":
        return measure(
            lambda: (coverage_remedy(train, lambda_threshold=k, seed=seed), None, None)
        )
    if approach == "fairbalance":
        return measure(lambda: (train, fairbalance_weights(train), None))
    if approach == "fair-smote":
        # Fair-SMOTE (synthetic oversampling; the slow kNN one).
        return measure(lambda: (fair_smote(train, seed=seed), None, None))
    if approach == "reweighting":
        return measure(lambda: (train, reweighting_weights(train), None))
    if approach == "gerryfair":
        # GerryFair (in-processing): the timed step is the training itself.
        return measure(
            lambda: (
                None,
                None,
                GerryFairClassifier(max_iters=gerryfair_iters, statistic=gamma).fit(
                    train
                ),
            )
        )
    if approach == "postprocess":
        clf = make_model(model, seed=seed).fit(train)
        start = time.perf_counter()
        post = GroupThresholdPostprocessor(statistic=gamma, min_group_size=k)
        post.fit(train, clf.predict_proba(train))
        elapsed = time.perf_counter() - start
        pred = post.predict(test, clf.predict_proba(test))
        return BaselineRow("postprocess", audit(pred), accuracy(test.y, pred), elapsed)
    raise ExperimentError(
        f"unknown Table III approach {approach!r}; expected one of {APPROACHES}"
    )


def run_baseline_comparison(
    dataset: Dataset,
    protected: Sequence[str] = ("race", "gender"),
    model: str = "lg",
    tau_c: float = 0.1,
    T: float = 1.0,
    k: int = 30,
    gamma: str = FPR,
    technique: str = "undersampling",
    test_fraction: float = 0.3,
    seed: int = 0,
    gerryfair_iters: int = 15,
    include_postprocess: bool = False,
    executor: CellExecutor | None = None,
) -> BaselineTable:
    """Run every approach of Table III and collect its row.

    ``technique`` selects the Remedy sampler.  The default here is
    *undersampling* rather than the preferential sampling used in the
    trade-off figures: with the linear learner of this comparison,
    borderline-targeted sampling shifts the decision boundary past parity
    on our synthetic substrate (see EXPERIMENTS.md), while the uniform
    samplers reproduce the paper's reported direction.

    Each approach runs as one cell of ``executor`` (key
    ``("table3", <approach>)``); an approach that fails after its retry
    budget contributes a ``FAILED(...)`` row instead of aborting the table.
    """
    executor = executor if executor is not None else CellExecutor()
    dataset = dataset.with_protected(protected)
    train, test = train_test_split(dataset, test_fraction, seed=seed)

    # Post-processing (per-group thresholds) — the third mitigation family
    # the paper cites but does not compare; off by default to keep the
    # table identical to the paper's row set.
    approaches = [a for a in APPROACHES if a != "postprocess" or include_postprocess]
    specs = [
        CellSpec(
            key=("table3", approach),
            fn_id="table3.approach",
            params={
                "train": train,
                "test": test,
                "approach": approach,
                "protected": tuple(protected),
                "model": model,
                "tau_c": tau_c,
                "T": T,
                "k": k,
                "gamma": gamma,
                "technique": technique,
                "seed": seed,
                "gerryfair_iters": gerryfair_iters,
            },
        )
        for approach in approaches
    ]
    cells = executor.run_specs(
        specs, encode=baseline_row_to_dict, decode=baseline_row_from_dict
    )
    rows: list[BaselineRow] = []
    nan = float("nan")
    for approach, cell in zip(approaches, cells):
        if cell.ok:
            rows.append(cell.value)  # type: ignore[arg-type]
        else:
            rows.append(BaselineRow(approach, nan, nan, nan, status=cell.marker))
    return BaselineTable(tuple(rows))
