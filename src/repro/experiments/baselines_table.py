"""Table III — comparison against subgroup-unfairness mitigation baselines.

Setup per §V-B4: Adult dataset, protected attributes ``{race, gender}``,
logistic regression as the downstream learner for every pre-processing
method (matching GerryFair's linear learner), evaluation under the
*fairness violation* metric (max divergence × group size), plus test
accuracy and the method's wall-clock execution time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.audit.violation import fairness_violation
from repro.baselines.coverage import coverage_remedy
from repro.baselines.fairsmote import fair_smote
from repro.baselines.gerryfair import GerryFairClassifier
from repro.baselines.postprocess import GroupThresholdPostprocessor
from repro.baselines.reweighting import fairbalance_weights, reweighting_weights
from repro.core.pipeline import RemedyConfig, RemedyPipeline
from repro.data.dataset import Dataset
from repro.data.split import train_test_split
from repro.experiments.reporting import format_table
from repro.ml.metrics import FPR, accuracy
from repro.ml.models import make_model


@dataclass(frozen=True)
class BaselineRow:
    """One Table III row."""

    approach: str
    fairness_violation: float
    accuracy: float
    seconds: float  # method time (preprocessing or in-processing train)


@dataclass(frozen=True)
class BaselineTable:
    """All Table III rows, renderable in the paper's listing order."""

    rows: tuple[BaselineRow, ...]

    def table(self) -> str:
        headers = ("approach", "fairness violation", "accuracy", "time (s)")
        return format_table(
            headers,
            [(r.approach, r.fairness_violation, r.accuracy, r.seconds) for r in rows_sorted(self.rows)],
            title="Table III — baseline comparison (X = {race, gender})",
        )


def rows_sorted(rows: Sequence[BaselineRow]) -> list[BaselineRow]:
    """Original first, then the paper's listing order."""
    order = {
        "original": 0,
        "remedy": 1,
        "coverage": 2,
        "fairbalance": 3,
        "fair-smote": 4,
        "reweighting": 5,
        "gerryfair": 6,
        "postprocess": 7,
    }
    return sorted(rows, key=lambda r: order.get(r.approach, 99))


def run_baseline_comparison(
    dataset: Dataset,
    protected: Sequence[str] = ("race", "gender"),
    model: str = "lg",
    tau_c: float = 0.1,
    T: float = 1.0,
    k: int = 30,
    gamma: str = FPR,
    technique: str = "undersampling",
    test_fraction: float = 0.3,
    seed: int = 0,
    gerryfair_iters: int = 15,
    include_postprocess: bool = False,
) -> BaselineTable:
    """Run every approach of Table III and collect its row.

    ``technique`` selects the Remedy sampler.  The default here is
    *undersampling* rather than the preferential sampling used in the
    trade-off figures: with the linear learner of this comparison,
    borderline-targeted sampling shifts the decision boundary past parity
    on our synthetic substrate (see EXPERIMENTS.md), while the uniform
    samplers reproduce the paper's reported direction.
    """
    dataset = dataset.with_protected(protected)
    train, test = train_test_split(dataset, test_fraction, seed=seed)
    rows: list[BaselineRow] = []

    def audit(pred) -> float:
        return fairness_violation(test, pred, gamma=gamma, attrs=protected, min_size=k)

    # Original — no mitigation.
    clf = make_model(model, seed=seed).fit(train)
    pred = clf.predict(test)
    rows.append(BaselineRow("original", audit(pred), accuracy(test.y, pred), 0.0))

    # Remedy (ours): lattice scope with the configured sampler.
    start = time.perf_counter()
    remedied = RemedyPipeline(
        RemedyConfig(tau_c=tau_c, T=T, k=k, technique=technique, seed=seed)
    ).transform(train)
    elapsed = time.perf_counter() - start
    clf = make_model(model, seed=seed).fit(remedied)
    pred = clf.predict(test)
    rows.append(BaselineRow("remedy", audit(pred), accuracy(test.y, pred), elapsed))

    # Coverage.
    start = time.perf_counter()
    covered = coverage_remedy(train, lambda_threshold=k, seed=seed)
    elapsed = time.perf_counter() - start
    clf = make_model(model, seed=seed).fit(covered)
    pred = clf.predict(test)
    rows.append(BaselineRow("coverage", audit(pred), accuracy(test.y, pred), elapsed))

    # FairBalance (weights).
    start = time.perf_counter()
    weights = fairbalance_weights(train)
    elapsed = time.perf_counter() - start
    clf = make_model(model, seed=seed).fit(train, sample_weight=weights)
    pred = clf.predict(test)
    rows.append(
        BaselineRow("fairbalance", audit(pred), accuracy(test.y, pred), elapsed)
    )

    # Fair-SMOTE (synthetic oversampling; the slow kNN one).
    start = time.perf_counter()
    smoted = fair_smote(train, seed=seed)
    elapsed = time.perf_counter() - start
    clf = make_model(model, seed=seed).fit(smoted)
    pred = clf.predict(test)
    rows.append(
        BaselineRow("fair-smote", audit(pred), accuracy(test.y, pred), elapsed)
    )

    # Reweighting.
    start = time.perf_counter()
    weights = reweighting_weights(train)
    elapsed = time.perf_counter() - start
    clf = make_model(model, seed=seed).fit(train, sample_weight=weights)
    pred = clf.predict(test)
    rows.append(
        BaselineRow("reweighting", audit(pred), accuracy(test.y, pred), elapsed)
    )

    # GerryFair (in-processing).
    start = time.perf_counter()
    gf = GerryFairClassifier(max_iters=gerryfair_iters, statistic=gamma).fit(train)
    elapsed = time.perf_counter() - start
    pred = gf.predict(test)
    rows.append(
        BaselineRow("gerryfair", audit(pred), accuracy(test.y, pred), elapsed)
    )

    # Post-processing (per-group thresholds) — the third mitigation family
    # the paper cites but does not compare; off by default to keep the
    # table identical to the paper's row set.
    if include_postprocess:
        clf = make_model(model, seed=seed).fit(train)
        start = time.perf_counter()
        post = GroupThresholdPostprocessor(statistic=gamma, min_group_size=k)
        post.fit(train, clf.predict_proba(train))
        elapsed = time.perf_counter() - start
        pred = post.predict(test, clf.predict_proba(test))
        rows.append(
            BaselineRow("postprocess", audit(pred), accuracy(test.y, pred), elapsed)
        )

    return BaselineTable(tuple(rows))
