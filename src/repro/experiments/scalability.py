"""Fig. 9 — runtime scalability of IBS identification and remedy (§V-B5).

Four panels, all on the Adult-like data with the protected set extended to
eight attributes (education and occupation added, as the paper does):

* 9a: IBS identification runtime vs. #protected attributes, naive vs.
  optimized vs. vectorized neighbourhood engine (the vectorized series
  goes beyond the paper — see ``docs/performance.md`` for the engine
  derivations and measured speedups);
* 9b: remedy runtime vs. #protected attributes per technique (oversampling
  excluded at the top end — it exhausted memory in the paper);
* 9c: IBS identification runtime vs. data size at 8 protected attributes;
* 9d: remedy runtime vs. data size per technique.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass
from typing import Sequence

import numpy as np

from repro.core.ibs import (
    METHOD_NAIVE,
    METHOD_OPTIMIZED,
    METHOD_VECTORIZED,
    identify_ibs,
)
from repro.core.remedy import remedy_dataset
from repro.core.samplers import MASSAGING, PREFERENTIAL, UNDERSAMPLING
from repro.data.dataset import Dataset
from repro.data.store.sharded import ShardedDataset
from repro.data.synth.adult import SCALABILITY_PROTECTED, load_adult
from repro.errors import DataError, ExperimentError
from repro.experiments.reporting import format_table
from repro.resilience import CellExecutor, CellSpec, register_cell

DEFAULT_ATTR_GRID = (2, 3, 4, 5, 6, 7, 8)
DEFAULT_SIZE_GRID = (5_000, 10_000, 20_000, 45_222)
REMEDY_TECHNIQUES = (UNDERSAMPLING, PREFERENTIAL, MASSAGING)
IDENTIFY_METHODS = (METHOD_NAIVE, METHOD_OPTIMIZED, METHOD_VECTORIZED)


@dataclass(frozen=True)
class TimingPoint:
    """One measured configuration (``status`` marks failed cells)."""

    x: float  # #attrs or data size
    label: str  # method or technique
    seconds: float
    detail: int  # regions found / regions remedied
    status: str = "ok"


def timing_point_to_dict(point: TimingPoint) -> dict:
    """JSON-ready payload for checkpointing one :class:`TimingPoint`."""
    return asdict(point)


def timing_point_from_dict(payload: object) -> TimingPoint:
    """Rebuild a :class:`TimingPoint` from :func:`timing_point_to_dict`."""
    if not isinstance(payload, dict):
        raise DataError(f"malformed TimingPoint payload: {payload!r}")
    try:
        return TimingPoint(**payload)
    except TypeError as exc:
        raise DataError(f"malformed TimingPoint payload: {payload!r}") from exc


@dataclass(frozen=True)
class ScalabilityResult:
    """Timing curve for one Fig. 9 panel (seconds vs. size or #attrs)."""

    panel: str
    points: tuple[TimingPoint, ...]

    def table(self, x_name: str) -> str:
        headers = (x_name, "variant", "seconds", "regions", "status")
        rows = [
            (p.x, p.label, p.seconds, p.detail, p.status) for p in self.points
        ]
        return format_table(rows=rows, headers=headers, title=f"Fig. {self.panel}")


def _run_timing_cells(
    executor: CellExecutor | None,
    panel: str,
    cells: Sequence[tuple[float, str, CellSpec]],
) -> ScalabilityResult:
    """Run ``(x, label, spec)`` timing cells; failures become marker points."""
    executor = executor if executor is not None else CellExecutor()
    outcomes = executor.run_specs(
        [spec for _, _, spec in cells],
        encode=timing_point_to_dict,
        decode=timing_point_from_dict,
    )
    points: list[TimingPoint] = []
    nan = float("nan")
    for (x, label, _), cell in zip(cells, outcomes):
        if cell.ok:
            points.append(cell.value)  # type: ignore[arg-type]
        else:
            points.append(TimingPoint(x, label, nan, 0, status=cell.marker))
    return ScalabilityResult(panel, tuple(points))


def _dataset_for(n_rows: int, seed: int) -> Dataset:
    return load_adult(n_rows=n_rows, seed=seed).with_protected(
        SCALABILITY_PROTECTED
    )


@register_cell("fig9.shard_counts")
def shard_counts_cell(
    store: ShardedDataset, lo: int, hi: int, attrs: Sequence[str]
) -> dict:
    """Fig. 9e work unit: partial region counts over shards ``[lo, hi)``.

    ``store`` arrives as a :class:`~repro.data.store.StoreRef` on the
    process backend, so the worker memory-maps only the shard files in its
    span — the unit of parallelism is a shard, not the dataset.
    """
    start = time.perf_counter()
    pos, neg, shape = store.shard_region_counts(range(lo, hi), tuple(attrs))
    seconds = time.perf_counter() - start
    return {
        "lo": lo,
        "hi": hi,
        "pos": pos.tolist(),
        "neg": neg.tolist(),
        "shape": list(shape),
        "seconds": seconds,
    }


def sharded_region_counts(
    store: ShardedDataset,
    attrs: Sequence[str],
    executor: CellExecutor | None = None,
    shards_per_cell: int = 1,
) -> tuple[np.ndarray, np.ndarray, tuple[int, ...]]:
    """Fan ``region_counts`` out over shard-granular cells and reduce.

    Splits the store's shards into ``shards_per_cell``-sized spans, runs one
    ``fig9.shard_counts`` cell per span on ``executor`` (in-process or the
    worker pool — the pool ships the store as a ref, each worker maps only
    its spans), and sums the partials.  The result is byte-identical to
    ``store.region_counts(attrs)`` because shard ``bincount``s add exactly.
    """
    if shards_per_cell < 1:
        raise ExperimentError(
            f"shards_per_cell must be >= 1, got {shards_per_cell}"
        )
    executor = executor if executor is not None else CellExecutor()
    attrs = tuple(attrs)
    spans = [
        (lo, min(lo + shards_per_cell, store.n_shards))
        for lo in range(0, store.n_shards, shards_per_cell)
    ]
    specs = [
        CellSpec(
            key=("fig9", "9e", f"{lo}-{hi}", ",".join(attrs)),
            fn_id="fig9.shard_counts",
            params={"store": store, "lo": lo, "hi": hi, "attrs": attrs},
        )
        for lo, hi in spans
    ]
    outcomes = executor.run_specs(specs)
    shape = store.schema.cardinalities(attrs)
    size = 1
    for card in shape:
        size *= card
    pos = np.zeros(size, dtype=np.int64)
    neg = np.zeros(size, dtype=np.int64)
    for (lo, hi), cell in zip(spans, outcomes):
        if not cell.ok:
            raise ExperimentError(
                f"shard span [{lo}, {hi}) failed: {cell.marker}"
            )
        pos += np.asarray(cell.value["pos"], dtype=np.int64)
        neg += np.asarray(cell.value["neg"], dtype=np.int64)
    return pos, neg, shape


@register_cell("fig9.identify_attrs")
def identify_attrs_cell(
    base: Dataset, n_attrs: int, tau_c: float, T: float, k: int, method: str
) -> TimingPoint:
    """Fig. 9a cell: time one identification run at ``n_attrs`` attributes."""
    attrs = SCALABILITY_PROTECTED[:n_attrs]
    start = time.perf_counter()
    ibs = identify_ibs(base, tau_c, T=T, k=k, method=method, attrs=attrs)
    seconds = time.perf_counter() - start
    return TimingPoint(n_attrs, method, seconds, len(ibs))


@register_cell("fig9.remedy_attrs")
def remedy_attrs_cell(
    base: Dataset,
    n_attrs: int,
    tau_c: float,
    T: float,
    k: int,
    technique: str,
    seed: int,
) -> TimingPoint:
    """Fig. 9b cell: time one remedy run at ``n_attrs`` attributes."""
    attrs = SCALABILITY_PROTECTED[:n_attrs]
    start = time.perf_counter()
    result = remedy_dataset(
        base, tau_c, T=T, k=k, technique=technique, attrs=attrs, seed=seed
    )
    seconds = time.perf_counter() - start
    return TimingPoint(n_attrs, technique, seconds, result.n_regions_remedied)


@register_cell("fig9.identify_size")
def identify_size_cell(
    n_rows: int, n_attrs: int, tau_c: float, T: float, k: int, seed: int, method: str
) -> TimingPoint:
    """Fig. 9c cell: time one identification run at ``n_rows`` rows."""
    attrs = SCALABILITY_PROTECTED[:n_attrs]
    base = _dataset_for(n_rows, seed)
    start = time.perf_counter()
    ibs = identify_ibs(base, tau_c, T=T, k=k, method=method, attrs=attrs)
    seconds = time.perf_counter() - start
    return TimingPoint(n_rows, method, seconds, len(ibs))


@register_cell("fig9.remedy_size")
def remedy_size_cell(
    n_rows: int,
    n_attrs: int,
    tau_c: float,
    T: float,
    k: int,
    seed: int,
    technique: str,
) -> TimingPoint:
    """Fig. 9d cell: time one remedy run at ``n_rows`` rows."""
    attrs = SCALABILITY_PROTECTED[:n_attrs]
    base = _dataset_for(n_rows, seed)
    start = time.perf_counter()
    result = remedy_dataset(
        base, tau_c, T=T, k=k, technique=technique, attrs=attrs, seed=seed
    )
    seconds = time.perf_counter() - start
    return TimingPoint(n_rows, technique, seconds, result.n_regions_remedied)


def identification_vs_attrs(
    n_rows: int = 45_222,
    attr_grid: Sequence[int] = DEFAULT_ATTR_GRID,
    tau_c: float = 0.5,
    T: float = 1.0,
    k: int = 30,
    seed: int = 5,
    methods: Sequence[str] = IDENTIFY_METHODS,
    executor: CellExecutor | None = None,
) -> ScalabilityResult:
    """Fig. 9a: identification runtime vs. number of protected attributes."""
    base = _dataset_for(n_rows, seed)
    cells = [
        (
            float(n_attrs),
            method,
            CellSpec(
                key=("fig9", "9a", str(float(n_attrs)), method),
                fn_id="fig9.identify_attrs",
                params={
                    "base": base,
                    "n_attrs": n_attrs,
                    "tau_c": tau_c,
                    "T": T,
                    "k": k,
                    "method": method,
                },
            ),
        )
        for n_attrs in attr_grid
        for method in methods
    ]
    return _run_timing_cells(executor, "9a", cells)


def remedy_vs_attrs(
    n_rows: int = 45_222,
    attr_grid: Sequence[int] = DEFAULT_ATTR_GRID,
    tau_c: float = 0.5,
    T: float = 1.0,
    k: int = 30,
    seed: int = 5,
    techniques: Sequence[str] = REMEDY_TECHNIQUES,
    executor: CellExecutor | None = None,
) -> ScalabilityResult:
    """Fig. 9b: remedy runtime vs. number of protected attributes.

    Oversampling is excluded by default, as in the paper ("exceeded the
    memory resource limit"); pass it in ``techniques`` to include it anyway.
    """
    base = _dataset_for(n_rows, seed)
    cells = [
        (
            float(n_attrs),
            technique,
            CellSpec(
                key=("fig9", "9b", str(float(n_attrs)), technique),
                fn_id="fig9.remedy_attrs",
                params={
                    "base": base,
                    "n_attrs": n_attrs,
                    "tau_c": tau_c,
                    "T": T,
                    "k": k,
                    "technique": technique,
                    "seed": seed,
                },
            ),
        )
        for n_attrs in attr_grid
        for technique in techniques
    ]
    return _run_timing_cells(executor, "9b", cells)


def identification_vs_size(
    size_grid: Sequence[int] = DEFAULT_SIZE_GRID,
    n_attrs: int = 8,
    tau_c: float = 0.5,
    T: float = 1.0,
    k: int = 30,
    seed: int = 5,
    methods: Sequence[str] = IDENTIFY_METHODS,
    executor: CellExecutor | None = None,
) -> ScalabilityResult:
    """Fig. 9c: identification runtime vs. data size (8 protected attrs)."""
    cells = [
        (
            float(n_rows),
            method,
            CellSpec(
                key=("fig9", "9c", str(float(n_rows)), method),
                fn_id="fig9.identify_size",
                params={
                    "n_rows": n_rows,
                    "n_attrs": n_attrs,
                    "tau_c": tau_c,
                    "T": T,
                    "k": k,
                    "seed": seed,
                    "method": method,
                },
            ),
        )
        for n_rows in size_grid
        for method in methods
    ]
    return _run_timing_cells(executor, "9c", cells)


def remedy_vs_size(
    size_grid: Sequence[int] = DEFAULT_SIZE_GRID,
    n_attrs: int = 8,
    tau_c: float = 0.5,
    T: float = 1.0,
    k: int = 30,
    seed: int = 5,
    techniques: Sequence[str] = REMEDY_TECHNIQUES,
    executor: CellExecutor | None = None,
) -> ScalabilityResult:
    """Fig. 9d: remedy runtime vs. data size (8 protected attrs)."""
    cells = [
        (
            float(n_rows),
            technique,
            CellSpec(
                key=("fig9", "9d", str(float(n_rows)), technique),
                fn_id="fig9.remedy_size",
                params={
                    "n_rows": n_rows,
                    "n_attrs": n_attrs,
                    "tau_c": tau_c,
                    "T": T,
                    "k": k,
                    "seed": seed,
                    "technique": technique,
                },
            ),
        )
        for n_rows in size_grid
        for technique in techniques
    ]
    return _run_timing_cells(executor, "9d", cells)


def speedup_summary(
    result: ScalabilityResult,
    baseline: str = METHOD_NAIVE,
    target: str = METHOD_OPTIMIZED,
) -> dict[float, float]:
    """``baseline``/``target`` runtime ratio per x value (Fig. 9a/9c headline).

    Defaults reproduce the paper's naive-vs-optimized comparison; pass
    ``baseline='optimized', target='vectorized'`` for the whole-level
    engine's headline (``docs/performance.md``).
    """
    by_x: dict[float, dict[str, float]] = {}
    for p in result.points:
        by_x.setdefault(p.x, {})[p.label] = p.seconds
    out = {}
    for x, timings in sorted(by_x.items()):
        if baseline in timings and target in timings:
            denom = max(timings[target], 1e-9)
            out[x] = timings[baseline] / denom
    return out
