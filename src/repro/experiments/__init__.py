"""Experiment harness: one module per paper table/figure (see DESIGN.md)."""

from repro.experiments.baselines_table import (
    BaselineRow,
    BaselineTable,
    run_baseline_comparison,
)
from repro.experiments.params import (
    DEFAULT_TAU_GRID,
    SweepPoint,
    SweepResult,
    sweep_T,
    sweep_tau_c,
)
from repro.experiments.reporting import format_table, print_table
from repro.experiments.robustness import (
    RobustnessResult,
    SeedFailure,
    SeedOutcome,
    run_seed_sweep,
)
from repro.experiments.runner import (
    DEFAULT_MODELS,
    EVAL_HEADERS,
    EvalResult,
    evaluate_model,
    evaluate_remedy,
    run_eval_cells,
)
from repro.experiments.scalability import (
    ScalabilityResult,
    TimingPoint,
    identification_vs_attrs,
    identification_vs_size,
    remedy_vs_attrs,
    remedy_vs_size,
    sharded_region_counts,
    speedup_summary,
)
from repro.experiments.tradeoff import TradeoffResult, run_tradeoff
from repro.experiments.validation import (
    ExplainedSubgroup,
    ValidationResult,
    explain_subgroups,
    run_validation,
    validation_summary,
    validation_table,
)

__all__ = [
    "EvalResult",
    "evaluate_model",
    "evaluate_remedy",
    "DEFAULT_MODELS",
    "EVAL_HEADERS",
    "run_validation",
    "ValidationResult",
    "ExplainedSubgroup",
    "explain_subgroups",
    "validation_table",
    "validation_summary",
    "run_tradeoff",
    "TradeoffResult",
    "sweep_tau_c",
    "sweep_T",
    "SweepPoint",
    "SweepResult",
    "DEFAULT_TAU_GRID",
    "run_baseline_comparison",
    "BaselineRow",
    "BaselineTable",
    "identification_vs_attrs",
    "identification_vs_size",
    "remedy_vs_attrs",
    "remedy_vs_size",
    "sharded_region_counts",
    "speedup_summary",
    "ScalabilityResult",
    "TimingPoint",
    "format_table",
    "print_table",
    "run_seed_sweep",
    "run_eval_cells",
    "RobustnessResult",
    "SeedFailure",
    "SeedOutcome",
]
