"""Multi-seed robustness of the remedy's fairness improvement.

The paper reports single-run numbers.  This extension repeats the headline
experiment — remedy the training split, retrain, compare fairness index and
accuracy against the unmitigated model — across train/test splits and
sampler seeds, reporting the mean, standard deviation, and the fraction of
seeds in which the remedy improved fairness.  A reproduction should show
the improvement is a property of the method, not of one lucky split.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Sequence

import numpy as np

from repro.audit.fairness_index import fairness_index
from repro.core.pipeline import RemedyConfig, RemedyPipeline
from repro.data.dataset import Dataset
from repro.data.split import train_test_split
from repro.errors import DataError
from repro.experiments.reporting import format_table
from repro.ml.metrics import FPR, accuracy
from repro.ml.models import make_model
from repro.resilience import CellExecutor, CellSpec, register_cell


@dataclass(frozen=True)
class SeedOutcome:
    """One seed's before/after measurements."""

    seed: int
    fi_before: float
    fi_after: float
    accuracy_before: float
    accuracy_after: float

    @property
    def fi_improvement(self) -> float:
        return self.fi_before - self.fi_after

    @property
    def accuracy_cost(self) -> float:
        return self.accuracy_before - self.accuracy_after


def seed_outcome_to_dict(outcome: SeedOutcome) -> dict:
    """JSON-ready payload for checkpointing one :class:`SeedOutcome`."""
    return asdict(outcome)


def seed_outcome_from_dict(payload: object) -> SeedOutcome:
    """Rebuild a :class:`SeedOutcome` from :func:`seed_outcome_to_dict`."""
    if not isinstance(payload, dict):
        raise DataError(f"malformed SeedOutcome payload: {payload!r}")
    try:
        return SeedOutcome(**payload)
    except TypeError as exc:
        raise DataError(f"malformed SeedOutcome payload: {payload!r}") from exc


@dataclass(frozen=True)
class SeedFailure:
    """A seed whose cell failed after all retries (marker + message)."""

    seed: int
    marker: str
    message: str | None = None


@dataclass(frozen=True)
class RobustnessResult:
    """Seed-sweep outcome: per-seed remedy effects on one dataset/model.

    ``outcomes`` holds the seeds that completed; ``failures`` the seeds
    that did not (with their ``FAILED(...)``/``TIMEOUT`` markers).  The
    aggregate statistics are computed over the completed seeds only.
    """

    dataset_name: str
    model: str
    gamma: str
    outcomes: tuple[SeedOutcome, ...]
    failures: tuple[SeedFailure, ...] = ()

    @property
    def improvement_rate(self) -> float:
        """Fraction of seeds where the fairness index strictly improved."""
        if not self.outcomes:
            return 0.0
        return float(
            np.mean([o.fi_improvement > 0 for o in self.outcomes])
        )

    @property
    def mean_improvement(self) -> float:
        if not self.outcomes:
            return float("nan")
        return float(np.mean([o.fi_improvement for o in self.outcomes]))

    @property
    def std_improvement(self) -> float:
        if not self.outcomes:
            return float("nan")
        return float(np.std([o.fi_improvement for o in self.outcomes]))

    @property
    def mean_accuracy_cost(self) -> float:
        if not self.outcomes:
            return float("nan")
        return float(np.mean([o.accuracy_cost for o in self.outcomes]))

    def table(self) -> str:
        nan = float("nan")
        rows: list[tuple[object, ...]] = [
            (o.seed, o.fi_before, o.fi_after, o.accuracy_before,
             o.accuracy_after, "ok")
            for o in self.outcomes
        ]
        rows.extend(
            (f.seed, nan, nan, nan, nan, f.marker) for f in self.failures
        )
        if self.outcomes:
            rows.append(
                (
                    "mean",
                    float(np.mean([o.fi_before for o in self.outcomes])),
                    float(np.mean([o.fi_after for o in self.outcomes])),
                    float(np.mean([o.accuracy_before for o in self.outcomes])),
                    float(np.mean([o.accuracy_after for o in self.outcomes])),
                    "",
                )
            )
        return format_table(
            ("seed", "FI before", "FI after", "acc before", "acc after", "status"),
            rows,
            title=(
                f"Robustness — {self.dataset_name}, {self.model}, "
                f"gamma={self.gamma}: improvement in "
                f"{self.improvement_rate:.0%} of seeds "
                f"({self.mean_improvement:.3f} ± {self.std_improvement:.3f})"
            ),
        )


@register_cell("robustness.seed")
def seed_cell(
    dataset: Dataset,
    config: RemedyConfig,
    model: str,
    gamma: str,
    seed: int,
    test_fraction: float,
) -> SeedOutcome:
    """One robustness cell: remedy-vs-original under a single seed.

    Module-level and registered so both backends can run it; every
    measurement is deterministic given the parameters.
    """
    train, test = train_test_split(dataset, test_fraction, seed=seed)
    baseline = make_model(model, seed=seed).fit(train)
    base_pred = baseline.predict(test)

    seeded = RemedyConfig(
        tau_c=config.tau_c,
        T=config.T,
        k=config.k,
        technique=config.technique,
        scope=config.scope,
        method=config.method,
        seed=seed,
    )
    remedied = RemedyPipeline(seeded).transform(train)
    fair = make_model(model, seed=seed).fit(remedied)
    fair_pred = fair.predict(test)

    return SeedOutcome(
        seed=seed,
        fi_before=fairness_index(test, base_pred, gamma),
        fi_after=fairness_index(test, fair_pred, gamma),
        accuracy_before=accuracy(test.y, base_pred),
        accuracy_after=accuracy(test.y, fair_pred),
    )


def run_seed_sweep(
    dataset: Dataset,
    dataset_name: str,
    config: RemedyConfig | None = None,
    model: str = "dt",
    gamma: str = FPR,
    seeds: Sequence[int] = tuple(range(5)),
    test_fraction: float = 0.3,
    executor: CellExecutor | None = None,
) -> RobustnessResult:
    """Repeat remedy-vs-original across split/sampler seeds.

    Each seed runs as one cell of ``executor`` (key
    ``("robustness", str(seed))``): every measurement in a
    :class:`SeedOutcome` is deterministic given the seed, so a sweep
    interrupted at any cell and resumed from its checkpoint renders a
    table byte-identical to an uninterrupted run.
    """
    executor = executor if executor is not None else CellExecutor()
    base_config = config or RemedyConfig()
    specs = [
        CellSpec(
            key=("robustness", str(seed)),
            fn_id="robustness.seed",
            params={
                "dataset": dataset,
                "config": base_config,
                "model": model,
                "gamma": gamma,
                "seed": int(seed),
                "test_fraction": test_fraction,
            },
        )
        for seed in seeds
    ]
    cells = executor.run_specs(
        specs, encode=seed_outcome_to_dict, decode=seed_outcome_from_dict
    )
    outcomes: list[SeedOutcome] = []
    failures: list[SeedFailure] = []
    for seed, cell in zip(seeds, cells):
        if cell.ok:
            outcomes.append(cell.value)  # type: ignore[arg-type]
        else:
            failures.append(SeedFailure(seed, cell.marker, cell.error_message))
    return RobustnessResult(
        dataset_name, model, gamma, tuple(outcomes), tuple(failures)
    )
