"""Multi-seed robustness of the remedy's fairness improvement.

The paper reports single-run numbers.  This extension repeats the headline
experiment — remedy the training split, retrain, compare fairness index and
accuracy against the unmitigated model — across train/test splits and
sampler seeds, reporting the mean, standard deviation, and the fraction of
seeds in which the remedy improved fairness.  A reproduction should show
the improvement is a property of the method, not of one lucky split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.audit.fairness_index import fairness_index
from repro.core.pipeline import RemedyConfig, RemedyPipeline
from repro.data.dataset import Dataset
from repro.data.split import train_test_split
from repro.experiments.reporting import format_table
from repro.ml.metrics import FPR, accuracy
from repro.ml.models import make_model


@dataclass(frozen=True)
class SeedOutcome:
    """One seed's before/after measurements."""

    seed: int
    fi_before: float
    fi_after: float
    accuracy_before: float
    accuracy_after: float

    @property
    def fi_improvement(self) -> float:
        return self.fi_before - self.fi_after

    @property
    def accuracy_cost(self) -> float:
        return self.accuracy_before - self.accuracy_after


@dataclass(frozen=True)
class RobustnessResult:
    """Seed-sweep outcome: per-seed remedy effects on one dataset/model."""

    dataset_name: str
    model: str
    gamma: str
    outcomes: tuple[SeedOutcome, ...]

    @property
    def improvement_rate(self) -> float:
        """Fraction of seeds where the fairness index strictly improved."""
        if not self.outcomes:
            return 0.0
        return float(
            np.mean([o.fi_improvement > 0 for o in self.outcomes])
        )

    @property
    def mean_improvement(self) -> float:
        return float(np.mean([o.fi_improvement for o in self.outcomes]))

    @property
    def std_improvement(self) -> float:
        return float(np.std([o.fi_improvement for o in self.outcomes]))

    @property
    def mean_accuracy_cost(self) -> float:
        return float(np.mean([o.accuracy_cost for o in self.outcomes]))

    def table(self) -> str:
        rows = [
            (o.seed, o.fi_before, o.fi_after, o.accuracy_before, o.accuracy_after)
            for o in self.outcomes
        ]
        rows.append(
            (
                "mean",
                float(np.mean([o.fi_before for o in self.outcomes])),
                float(np.mean([o.fi_after for o in self.outcomes])),
                float(np.mean([o.accuracy_before for o in self.outcomes])),
                float(np.mean([o.accuracy_after for o in self.outcomes])),
            )
        )
        return format_table(
            ("seed", "FI before", "FI after", "acc before", "acc after"),
            rows,
            title=(
                f"Robustness — {self.dataset_name}, {self.model}, "
                f"gamma={self.gamma}: improvement in "
                f"{self.improvement_rate:.0%} of seeds "
                f"({self.mean_improvement:.3f} ± {self.std_improvement:.3f})"
            ),
        )


def run_seed_sweep(
    dataset: Dataset,
    dataset_name: str,
    config: RemedyConfig | None = None,
    model: str = "dt",
    gamma: str = FPR,
    seeds: Sequence[int] = tuple(range(5)),
    test_fraction: float = 0.3,
) -> RobustnessResult:
    """Repeat remedy-vs-original across split/sampler seeds."""
    base_config = config or RemedyConfig()
    outcomes = []
    for seed in seeds:
        train, test = train_test_split(dataset, test_fraction, seed=seed)
        baseline = make_model(model, seed=seed).fit(train)
        base_pred = baseline.predict(test)

        seeded = RemedyConfig(
            tau_c=base_config.tau_c,
            T=base_config.T,
            k=base_config.k,
            technique=base_config.technique,
            scope=base_config.scope,
            method=base_config.method,
            seed=seed,
        )
        remedied = RemedyPipeline(seeded).transform(train)
        fair = make_model(model, seed=seed).fit(remedied)
        fair_pred = fair.predict(test)

        outcomes.append(
            SeedOutcome(
                seed=seed,
                fi_before=fairness_index(test, base_pred, gamma),
                fi_after=fairness_index(test, fair_pred, gamma),
                accuracy_before=accuracy(test.y, base_pred),
                accuracy_after=accuracy(test.y, fair_pred),
            )
        )
    return RobustnessResult(dataset_name, model, gamma, tuple(outcomes))
