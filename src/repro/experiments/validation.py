"""Fig. 3 — validating Hypothesis 1: unfair subgroups vs. the IBS.

For each downstream model (DT/RF/LG/NN) and statistic (FPR/FNR), the
experiment trains on the original COMPAS-like data, mines the unfair
subgroups on the test predictions, and marks each as:

* ``in_ibs`` — the same pattern is a biased region of the *training* data
  (Fig. 3's grey marking),
* ``dominates_ibs`` — it strictly dominates at least one significant biased
  region (Fig. 3's blue marking),
* unexplained otherwise.

The paper's claim is that (nearly) all unfair subgroups fall in the first
two buckets, and that positively skewed regions (``ratio_r > ratio_rn``)
align with high-FPR subgroups while negatively skewed ones align with
high-FNR subgroups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.audit.divexplorer import SubgroupReport, unfair_subgroups
from repro.core.ibs import RegionReport, identify_ibs
from repro.core.serialize import pattern_from_dict, pattern_to_dict
from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.data.split import train_test_split
from repro.errors import DataError
from repro.experiments.reporting import format_table
from repro.experiments.runner import DEFAULT_MODELS
from repro.ml.metrics import FNR, FPR
from repro.ml.models import make_model
from repro.resilience import CellExecutor, CellSpec, register_cell


@dataclass(frozen=True)
class ExplainedSubgroup:
    """One unfair subgroup with its IBS explanation."""

    subgroup: SubgroupReport
    in_ibs: bool
    dominates_ibs: bool
    skew_direction: int  # of the matching/dominated region (+1 / -1 / 0)

    @property
    def explained(self) -> bool:
        return self.in_ibs or self.dominates_ibs


@dataclass(frozen=True)
class ValidationResult:
    """Fig. 3 payload for one (model, statistic) pair.

    ``status`` is ``"ok"`` for a completed cell; a cell that failed after
    its retry budget carries the executor's marker with no subgroups.
    """

    model: str
    gamma: str
    subgroups: tuple[ExplainedSubgroup, ...]
    n_ibs: int
    status: str = "ok"

    @property
    def n_unfair(self) -> int:
        return len(self.subgroups)

    @property
    def n_explained(self) -> int:
        return sum(1 for s in self.subgroups if s.explained)

    @property
    def explained_fraction(self) -> float:
        if not self.subgroups:
            return 1.0
        return self.n_explained / len(self.subgroups)


def _explained_to_dict(explained: ExplainedSubgroup) -> dict:
    s = explained.subgroup
    return {
        "subgroup": {
            "pattern": pattern_to_dict(s.pattern),
            "size": s.size,
            "support": s.support,
            "n_conditioning": s.n_conditioning,
            "gamma_group": s.gamma_group,
            "gamma_dataset": s.gamma_dataset,
            "divergence": s.divergence,
            "p_value": s.p_value,
        },
        "in_ibs": explained.in_ibs,
        "dominates_ibs": explained.dominates_ibs,
        "skew_direction": explained.skew_direction,
    }


def _explained_from_dict(payload: dict) -> ExplainedSubgroup:
    try:
        sub = dict(payload["subgroup"])
        sub["pattern"] = pattern_from_dict(sub["pattern"])
        return ExplainedSubgroup(
            subgroup=SubgroupReport(**sub),
            in_ibs=bool(payload["in_ibs"]),
            dominates_ibs=bool(payload["dominates_ibs"]),
            skew_direction=int(payload["skew_direction"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(
            f"malformed ExplainedSubgroup payload: {payload!r}"
        ) from exc


def validation_result_to_dict(result: ValidationResult) -> dict:
    """JSON-ready payload for checkpointing one :class:`ValidationResult`."""
    return {
        "model": result.model,
        "gamma": result.gamma,
        "subgroups": [_explained_to_dict(s) for s in result.subgroups],
        "n_ibs": result.n_ibs,
        "status": result.status,
    }


def validation_result_from_dict(payload: object) -> ValidationResult:
    """Rebuild a :class:`ValidationResult` from its checkpoint payload."""
    if not isinstance(payload, dict):
        raise DataError(f"malformed ValidationResult payload: {payload!r}")
    try:
        return ValidationResult(
            model=str(payload["model"]),
            gamma=str(payload["gamma"]),
            subgroups=tuple(
                _explained_from_dict(s) for s in payload["subgroups"]
            ),
            n_ibs=int(payload["n_ibs"]),
            status=str(payload.get("status", "ok")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(
            f"malformed ValidationResult payload: {payload!r}"
        ) from exc


def explain_subgroups(
    unfair: Sequence[SubgroupReport],
    ibs: Sequence[RegionReport],
) -> list[ExplainedSubgroup]:
    """Match unfair subgroups against IBS membership / dominance."""
    by_pattern = {r.pattern: r for r in ibs}
    out = []
    for subgroup in unfair:
        matched = by_pattern.get(subgroup.pattern)
        dominated = [
            r for r in ibs if r.pattern != subgroup.pattern
            and r.pattern.is_dominated_by(subgroup.pattern)
        ]
        if matched is not None:
            skew = matched.skew_direction
        elif dominated:
            skew = max(dominated, key=lambda r: r.size).skew_direction
        else:
            skew = 0
        out.append(
            ExplainedSubgroup(
                subgroup=subgroup,
                in_ibs=matched is not None,
                dominates_ibs=bool(dominated),
                skew_direction=skew,
            )
        )
    return out


@register_cell("fig3.cell")
def validation_cell(
    train: Dataset,
    test: Dataset,
    ibs: Sequence[RegionReport],
    model_name: str,
    gamma: str,
    tau_d: float,
    k: int,
    seed: int,
) -> ValidationResult:
    """One Fig. 3 cell: fit, mine unfair subgroups, match against the IBS."""
    model = make_model(model_name, seed=seed).fit(train)
    pred = model.predict(test)
    unfair = unfair_subgroups(test, pred, gamma=gamma, tau_d=tau_d, min_size=k)
    explained = explain_subgroups(unfair, ibs)
    return ValidationResult(
        model=model_name,
        gamma=gamma,
        subgroups=tuple(explained),
        n_ibs=len(ibs),
    )


def run_validation(
    dataset: Dataset,
    models: Sequence[str] = DEFAULT_MODELS,
    gammas: Sequence[str] = (FPR, FNR),
    tau_c: float = 0.1,
    T: float = 1.0,
    k: int = 30,
    tau_d: float = 0.1,
    test_fraction: float = 0.3,
    seed: int = 0,
    executor: CellExecutor | None = None,
) -> list[ValidationResult]:
    """Run the Fig. 3 experiment (paper parameters: tau_c=0.1, T=1).

    Each (model, gamma) pair runs as one cell of ``executor`` (key
    ``("fig3", model, gamma)``), fitting the model and mining subgroups
    inside the cell; failed cells become marker results with no subgroups.
    """
    executor = executor if executor is not None else CellExecutor()
    train, test = train_test_split(dataset, test_fraction, seed=seed)
    ibs = identify_ibs(train, tau_c, T=T, k=k)
    pairs = [(model_name, gamma) for model_name in models for gamma in gammas]
    specs = [
        CellSpec(
            key=("fig3", model_name, gamma),
            fn_id="fig3.cell",
            params={
                "train": train,
                "test": test,
                "ibs": tuple(ibs),
                "model_name": model_name,
                "gamma": gamma,
                "tau_d": tau_d,
                "k": k,
                "seed": seed,
            },
        )
        for model_name, gamma in pairs
    ]
    cells = executor.run_specs(
        specs,
        encode=validation_result_to_dict,
        decode=validation_result_from_dict,
    )
    results = []
    for (model_name, gamma), cell in zip(pairs, cells):
        if cell.ok:
            results.append(cell.value)
        else:
            results.append(
                ValidationResult(
                    model=model_name,
                    gamma=gamma,
                    subgroups=(),
                    n_ibs=len(ibs),
                    status=cell.marker,
                )
            )
    return results


def validation_table(
    results: Sequence[ValidationResult], schema: Schema | None = None
) -> str:
    """Fig. 3 as a text table (one row per unfair subgroup)."""
    headers = (
        "model",
        "gamma",
        "subgroup",
        "divergence",
        "in IBS",
        "dominates IBS",
        "region skew",
    )
    rows = []
    for result in results:
        for s in result.subgroups:
            pattern = (
                s.subgroup.pattern.describe(schema)
                if schema is not None
                else repr(s.subgroup.pattern)
            )
            skew = {1: "+ (high ratio)", -1: "- (low ratio)", 0: "-"}[
                s.skew_direction
            ]
            rows.append(
                (
                    result.model,
                    result.gamma,
                    pattern,
                    s.subgroup.divergence,
                    s.in_ibs,
                    s.dominates_ibs,
                    skew,
                )
            )
    return format_table(headers, rows, title="Fig. 3 — unfair subgroups vs IBS")


def validation_summary(results: Sequence[ValidationResult]) -> str:
    """Per (model, gamma) explained-fraction summary."""
    headers = ("model", "gamma", "unfair", "explained", "fraction", "|IBS|", "status")
    rows = [
        (r.model, r.gamma, r.n_unfair, r.n_explained, r.explained_fraction,
         r.n_ibs, r.status)
        for r in results
    ]
    return format_table(headers, rows, precision=3, title="Fig. 3 summary")
