"""Plain-text table rendering for experiment outputs.

Every experiment module returns structured results *and* can print them as
an aligned text table whose rows mirror the corresponding paper table or
figure series, so the benchmark harness regenerates the paper's artefacts
as readable console output.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_cell(value: object, precision: int = 4) -> str:
    """Render one cell: floats rounded, everything else via ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # nan
            return "-"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 4,
    title: str | None = None,
) -> str:
    """ASCII table with aligned columns."""
    str_rows = [[format_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(sep))
    out.append(line(list(headers)))
    out.append(sep)
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 4,
    title: str | None = None,
) -> None:
    """Format ``rows`` with :func:`format_table` and print to stdout."""
    print(format_table(headers, rows, precision=precision, title=title))
