"""Subgroup divergence (paper §II-A, following DivExplorer [26]).

``Δγ_g = |γ_g − γ_D|`` for a model statistic ``γ`` — the behavioural
distance between a subgroup and the whole dataset.  Definition 1 then calls
a subgroup ``τ_d``-fair when its divergence is at most ``τ_d``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pattern import Pattern
from repro.data.dataset import Dataset
from repro.ml.metrics import statistic


@dataclass(frozen=True)
class Divergence:
    """A subgroup's statistic vs. the dataset's."""

    statistic: str
    gamma_group: float
    gamma_dataset: float

    @property
    def value(self) -> float:
        """``Δγ_g``; nan when the subgroup statistic is undefined."""
        if np.isnan(self.gamma_group) or np.isnan(self.gamma_dataset):
            return float("nan")
        return abs(self.gamma_group - self.gamma_dataset)

    def is_fair(self, tau_d: float) -> bool:
        """Definition 1: ``Δγ_g ≤ τ_d`` (an undefined divergence is fair)."""
        v = self.value
        return bool(np.isnan(v) or v <= tau_d)


def subgroup_divergence(
    dataset: Dataset,
    y_pred: np.ndarray,
    pattern: Pattern,
    gamma: str,
) -> Divergence:
    """Divergence of the subgroup matched by ``pattern`` on test predictions."""
    mask = pattern.mask(dataset)
    gamma_g = statistic(gamma, dataset.y, y_pred, mask)
    gamma_d = statistic(gamma, dataset.y, y_pred)
    return Divergence(gamma, gamma_g, gamma_d)
