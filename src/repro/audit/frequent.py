"""Apriori frequent-pattern mining over categorical attributes.

DivExplorer [26] — the tool the paper uses to enumerate unfair subgroups —
is built on frequent-pattern mining: only itemsets (conjunctions of
attribute=value pairs) above a support threshold are materialised, and the
anti-monotonicity of support (any extension of an infrequent pattern is
infrequent) prunes the exponential lattice.  This module provides that
engine: level-wise Apriori candidate generation with vectorised support
counting, returning every frequent pattern with its row mask available on
demand.

The brute-force enumerator in :mod:`repro.audit.divexplorer` visits every
cell of every attribute subset; for low support thresholds on wide schemas
the Apriori path visits a fraction of that.  Both return identical pattern
sets (a property the test suite pins), so
:func:`repro.audit.divexplorer.find_divergent_subgroups` can use either.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.core.pattern import Pattern
from repro.data.dataset import Dataset
from repro.errors import DataError


@dataclass(frozen=True)
class FrequentPattern:
    """A pattern with its absolute support count."""

    pattern: Pattern
    count: int

    def support(self, n_rows: int) -> float:
        return self.count / n_rows if n_rows else 0.0


def _item_masks(
    dataset: Dataset, attrs: Sequence[str]
) -> dict[tuple[str, int], np.ndarray]:
    """Boolean mask per single attribute=value item."""
    masks: dict[tuple[str, int], np.ndarray] = {}
    for attr in attrs:
        column = dataset.column(attr)
        for code in range(dataset.schema[attr].cardinality):
            masks[(attr, code)] = column == code
    return masks


def mine_frequent_patterns(
    dataset: Dataset,
    min_count: int,
    attrs: Sequence[str] | None = None,
    max_level: int | None = None,
) -> list[FrequentPattern]:
    """All patterns with at least ``min_count`` matching rows (Apriori).

    Patterns are conjunctions over distinct attributes in ``attrs``
    (default: the dataset's protected attributes), up to ``max_level``
    deterministic elements.  The empty pattern is not returned.

    The classic level-wise loop: level-``d`` candidates are built by
    joining frequent level-``(d-1)`` patterns with frequent single items of
    a lexicographically later attribute; support anti-monotonicity makes
    the join complete.
    """
    if attrs is None:
        attrs = dataset.protected
    attrs = tuple(attrs)
    if not attrs:
        raise DataError("frequent mining needs at least one attribute")
    dataset.schema.require_categorical(attrs)
    if min_count < 1:
        raise DataError("min_count must be >= 1")
    max_level = len(attrs) if max_level is None else min(max_level, len(attrs))

    masks = _item_masks(dataset, attrs)
    attr_order = {a: i for i, a in enumerate(attrs)}

    # Level 1: frequent single items.
    current: dict[Pattern, np.ndarray] = {}
    results: list[FrequentPattern] = []
    for (attr, code), mask in masks.items():
        count = int(mask.sum())
        if count >= min_count:
            pattern = Pattern([(attr, code)])
            current[pattern] = mask
            results.append(FrequentPattern(pattern, count))

    level = 1
    while current and level < max_level:
        nxt: dict[Pattern, np.ndarray] = {}
        for pattern, mask in current.items():
            last_attr = max(pattern.attrs, key=attr_order.__getitem__)
            for attr in attrs[attr_order[last_attr] + 1 :]:
                for code in range(dataset.schema[attr].cardinality):
                    item_mask = masks[(attr, code)]
                    joined = mask & item_mask
                    count = int(joined.sum())
                    if count >= min_count:
                        extended = pattern.with_value(attr, code)
                        nxt[extended] = joined
                        results.append(FrequentPattern(extended, count))
        current = nxt
        level += 1

    results.sort(key=lambda f: (f.pattern.level, f.pattern.items))
    return results


def brute_force_frequent_patterns(
    dataset: Dataset,
    min_count: int,
    attrs: Sequence[str] | None = None,
    max_level: int | None = None,
) -> list[FrequentPattern]:
    """Reference implementation: enumerate every cell of every subset.

    Exists to validate :func:`mine_frequent_patterns` (property tests) and
    to quantify the Apriori pruning in the ablation benchmark.
    """
    if attrs is None:
        attrs = dataset.protected
    attrs = tuple(attrs)
    dataset.schema.require_categorical(attrs)
    max_level = len(attrs) if max_level is None else min(max_level, len(attrs))

    results = []
    for level in range(1, max_level + 1):
        for subset in itertools.combinations(attrs, level):
            codes, shape = dataset.joint_codes(subset)
            counts = np.bincount(codes, minlength=int(np.prod(shape)))
            for flat in np.flatnonzero(counts >= min_count):
                coords = np.unravel_index(int(flat), shape)
                pattern = Pattern(zip(subset, (int(c) for c in coords)))
                results.append(FrequentPattern(pattern, int(counts[flat])))
    results.sort(key=lambda f: (f.pattern.level, f.pattern.items))
    return results


def iter_pattern_masks(
    dataset: Dataset, frequent: Sequence[FrequentPattern]
) -> Iterator[tuple[FrequentPattern, np.ndarray]]:
    """Yield ``(frequent_pattern, row_mask)`` pairs for downstream statistics."""
    for fp in frequent:
        yield fp, fp.pattern.mask(dataset)
