"""Fairness auditing: subgroup mining, fairness index, violation metric."""

from repro.audit.comparison import FairnessDiff, SubgroupDelta, compare_predictions
from repro.audit.divergence import Divergence, subgroup_divergence
from repro.audit.divexplorer import (
    SubgroupReport,
    find_divergent_subgroups,
    unfair_subgroups,
)
from repro.audit.intersectionality import (
    IntersectionalityReport,
    LevelProfile,
    divergence_profile,
    intersectionality_gap,
)
from repro.audit.frequent import (
    FrequentPattern,
    brute_force_frequent_patterns,
    iter_pattern_masks,
    mine_frequent_patterns,
)
from repro.audit.fairness_index import (
    DEFAULT_ALPHA,
    DEFAULT_SUPPORT_FLOOR,
    fairness_index,
    fairness_index_from_reports,
)
from repro.audit.significance import bernoulli_t_test, welch_t_test
from repro.audit.slicefinder import (
    ProblematicSlice,
    effect_size,
    find_problematic_slices,
)
from repro.audit.violation import (
    fairness_violation,
    fairness_violation_from_reports,
    worst_subgroup,
)

__all__ = [
    "compare_predictions",
    "FairnessDiff",
    "SubgroupDelta",
    "Divergence",
    "subgroup_divergence",
    "SubgroupReport",
    "find_divergent_subgroups",
    "unfair_subgroups",
    "fairness_index",
    "FrequentPattern",
    "mine_frequent_patterns",
    "brute_force_frequent_patterns",
    "iter_pattern_masks",
    "fairness_index_from_reports",
    "DEFAULT_ALPHA",
    "DEFAULT_SUPPORT_FLOOR",
    "fairness_violation",
    "fairness_violation_from_reports",
    "worst_subgroup",
    "welch_t_test",
    "bernoulli_t_test",
    "ProblematicSlice",
    "find_problematic_slices",
    "effect_size",
    "divergence_profile",
    "intersectionality_gap",
    "IntersectionalityReport",
    "LevelProfile",
]
