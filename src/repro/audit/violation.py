"""GerryFair-style *fairness violation* (paper §V-B4, after Kearns et al.).

"GerryFair utilizes a distinct subgroup fairness metric based on fairness
violation, defined as the subgroup with the greatest performance divergence
multiplied by its violated group size."  The Table III comparison evaluates
every method under this metric, so it lives here in the audit package:

    violation = max_g  Δγ_g · support(g)

over subgroups above a small size floor (tiny groups carry negligible mass
by construction of the product, but the floor also avoids divergences
computed from a handful of rows).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.audit.divexplorer import SubgroupReport, find_divergent_subgroups
from repro.data.dataset import Dataset
from repro.ml.metrics import FPR


def fairness_violation_from_reports(reports: Sequence[SubgroupReport]) -> float:
    """``max_g divergence(g) * support(g)`` (0.0 when no subgroup qualifies)."""
    best = 0.0
    for r in reports:
        value = r.divergence * r.support
        if value > best:
            best = value
    return best


def fairness_violation(
    dataset: Dataset,
    y_pred: np.ndarray,
    gamma: str = FPR,
    attrs: Sequence[str] | None = None,
    min_size: int = 30,
) -> float:
    """Mine subgroups and return the maximal weighted divergence."""
    reports = find_divergent_subgroups(
        dataset, y_pred, gamma=gamma, attrs=attrs, min_size=min_size
    )
    return fairness_violation_from_reports(reports)


def worst_subgroup(
    dataset: Dataset,
    y_pred: np.ndarray,
    gamma: str = FPR,
    attrs: Sequence[str] | None = None,
    min_size: int = 30,
) -> SubgroupReport | None:
    """The subgroup attaining the fairness violation (None if none qualify)."""
    reports = find_divergent_subgroups(
        dataset, y_pred, gamma=gamma, attrs=attrs, min_size=min_size
    )
    if not reports:
        return None
    return max(reports, key=lambda r: r.divergence * r.support)
