"""Welch's t-test from summary statistics.

The fairness index counts only subgroups whose divergence is statistically
significant ("as determined by the t-test", §V-A.d).  The subgroup statistic
and the complement statistic are means of Bernoulli indicators, so a Welch
two-sample t-test on the indicator populations is computed directly from
their summary statistics.
"""

from __future__ import annotations

import math

from scipy import stats


def welch_t_test(
    mean1: float,
    var1: float,
    n1: int,
    mean2: float,
    var2: float,
    n2: int,
) -> tuple[float, float]:
    """Two-sided Welch t-test; returns ``(t_statistic, p_value)``.

    Degenerate inputs (a side with fewer than 2 samples, or both variances
    zero) return ``(0.0, 1.0)`` — never significant — so empty or constant
    subgroups cannot inflate the fairness index.
    """
    if n1 < 2 or n2 < 2:
        return 0.0, 1.0
    se_sq = var1 / n1 + var2 / n2
    if se_sq <= 0:
        if mean1 == mean2:
            return 0.0, 1.0
        return math.inf, 0.0
    t = (mean1 - mean2) / math.sqrt(se_sq)
    # Welch–Satterthwaite degrees of freedom.
    num = se_sq**2
    den = 0.0
    if var1 > 0:
        den += (var1 / n1) ** 2 / (n1 - 1)
    if var2 > 0:
        den += (var2 / n2) ** 2 / (n2 - 1)
    df = num / den if den > 0 else float(n1 + n2 - 2)
    p = 2.0 * float(stats.t.sf(abs(t), df))
    return float(t), min(max(p, 0.0), 1.0)


def bernoulli_t_test(
    successes1: int, n1: int, successes2: int, n2: int
) -> tuple[float, float]:
    """Welch t-test between two Bernoulli samples given by their counts."""
    if n1 <= 0 or n2 <= 0:
        return 0.0, 1.0
    p1 = successes1 / n1
    p2 = successes2 / n2
    return welch_t_test(p1, p1 * (1 - p1), n1, p2, p2 * (1 - p2), n2)
