"""SliceFinder-style search for problematic slices (paper reference [10]).

SliceFinder (Chung et al., ICDE 2019) is the other automated tool the paper
cites for locating subgroups where a model underperforms.  Unlike
DivExplorer's exhaustive divergence ranking, SliceFinder performs a
*lattice search* that returns the most **general** slices that are both
statistically significant and large in *effect size*, expanding a slice
with further predicates only while it is not yet problematic:

1. start from the level-1 slices (single attribute=value predicates);
2. a slice is *problematic* when the effect size of its loss against the
   rest of the data exceeds ``min_effect`` and a Welch t-test rejects equal
   means at ``alpha``;
3. problematic slices are reported and **not** expanded (more specific
   versions add predicates without adding information); non-problematic
   slices above the support floor are expanded one predicate at a time.

Effect size is the standardised mean difference
``(mean_slice − mean_rest) / sqrt((var_slice + var_rest) / 2)`` on the
per-row 0/1 loss, as in the SliceFinder paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Sequence

import numpy as np

from repro.audit.significance import welch_t_test
from repro.core.pattern import Pattern
from repro.data.dataset import Dataset
from repro.errors import DataError


@dataclass(frozen=True)
class ProblematicSlice:
    """One slice where the model performs significantly worse."""

    pattern: Pattern
    size: int
    slice_loss: float
    rest_loss: float
    effect_size: float
    p_value: float


def _loss_stats(loss: np.ndarray, mask: np.ndarray) -> tuple[float, float, int]:
    selected = loss[mask]
    if selected.size == 0:
        return float("nan"), 0.0, 0
    return float(selected.mean()), float(selected.var()), int(selected.size)


def effect_size(
    mean_slice: float, var_slice: float, mean_rest: float, var_rest: float
) -> float:
    """Standardised mean difference of losses (SliceFinder's φ)."""
    pooled = (var_slice + var_rest) / 2.0
    if pooled <= 0:
        return 0.0 if mean_slice == mean_rest else float("inf")
    return (mean_slice - mean_rest) / sqrt(pooled)


def find_problematic_slices(
    dataset: Dataset,
    y_pred: np.ndarray,
    attrs: Sequence[str] | None = None,
    min_size: int = 30,
    min_effect: float = 0.3,
    alpha: float = 0.05,
    max_level: int | None = None,
    top_k: int | None = None,
) -> list[ProblematicSlice]:
    """Lattice search for the most general problematic slices.

    Returns slices sorted by descending effect size (truncated to ``top_k``
    if given).  Guaranteed minimality: no returned slice is a strict
    specialisation of another returned slice.
    """
    if attrs is None:
        attrs = dataset.protected
    attrs = tuple(attrs)
    if not attrs:
        raise DataError("slice search needs at least one attribute")
    dataset.schema.require_categorical(attrs)
    y_pred = np.asarray(y_pred)
    if y_pred.shape != dataset.y.shape:
        raise DataError("y_pred shape does not match the dataset")
    if min_size < 1:
        raise DataError("min_size must be >= 1")
    max_level = len(attrs) if max_level is None else min(max_level, len(attrs))

    loss = (dataset.y != y_pred).astype(np.float64)
    n = dataset.n_rows
    total_sum = float(loss.sum())
    total_sq = float((loss * loss).sum())

    attr_order = {a: i for i, a in enumerate(attrs)}
    item_masks = {
        (attr, code): dataset.column(attr) == code
        for attr in attrs
        for code in range(dataset.schema[attr].cardinality)
    }

    def assess(mask: np.ndarray) -> tuple[float, float, float] | None:
        """(effect, p, slice_loss) or None when the rest side is empty."""
        m_s, v_s, n_s = _loss_stats(loss, mask)
        n_r = n - n_s
        if n_r == 0 or n_s == 0:
            return None
        sum_s = float(loss[mask].sum())
        m_r = (total_sum - sum_s) / n_r
        # var = E[x^2] - E[x]^2 for the complement without re-masking.
        sq_r = (total_sq - sum_s) / n_r  # loss is 0/1 so x^2 == x
        v_r = max(sq_r - m_r * m_r, 0.0)
        phi = effect_size(m_s, v_s, m_r, v_r)
        __, p = welch_t_test(m_s, v_s, n_s, m_r, v_r, n_r)
        return phi, p, m_s

    found: list[ProblematicSlice] = []
    found_patterns: list[Pattern] = []
    frontier: list[tuple[Pattern, np.ndarray]] = []

    # Level 1.
    for (attr, code), mask in item_masks.items():
        size = int(mask.sum())
        if size < min_size:
            continue
        pattern = Pattern([(attr, code)])
        outcome = assess(mask)
        if outcome is None:
            continue
        phi, p, m_s = outcome
        if phi >= min_effect and p < alpha:
            found.append(
                ProblematicSlice(
                    pattern, size, m_s, (total_sum - loss[mask].sum()) / (n - size),
                    phi, p,
                )
            )
            found_patterns.append(pattern)
        else:
            frontier.append((pattern, mask))

    level = 1
    while frontier and level < max_level:
        next_frontier: list[tuple[Pattern, np.ndarray]] = []
        for pattern, mask in frontier:
            last = max(pattern.attrs, key=attr_order.__getitem__)
            for attr in attrs[attr_order[last] + 1 :]:
                for code in range(dataset.schema[attr].cardinality):
                    joined = mask & item_masks[(attr, code)]
                    size = int(joined.sum())
                    if size < min_size:
                        continue
                    extended = pattern.with_value(attr, code)
                    # Skip specialisations of already-found slices.
                    if any(
                        extended.is_dominated_by(f) for f in found_patterns
                    ):
                        continue
                    outcome = assess(joined)
                    if outcome is None:
                        continue
                    phi, p, m_s = outcome
                    if phi >= min_effect and p < alpha:
                        rest_loss = (total_sum - loss[joined].sum()) / (n - size)
                        found.append(
                            ProblematicSlice(
                                extended, size, m_s, rest_loss, phi, p
                            )
                        )
                        found_patterns.append(extended)
                    else:
                        next_frontier.append((extended, joined))
        frontier = next_frontier
        level += 1

    found.sort(key=lambda s: (-s.effect_size, s.pattern.items))
    if top_k is not None:
        found = found[:top_k]
    return found
