"""Before/after comparison of two prediction sets, subgroup by subgroup.

The natural question after applying a remedy is *which* subgroups got
better and whether any got worse.  :func:`compare_predictions` aligns the
divergence reports of two prediction vectors over the same test data and
returns per-subgroup deltas, plus aggregate counts, renderable as a text
table — the "fairness diff" of a mitigation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.audit.divexplorer import find_divergent_subgroups
from repro.core.pattern import Pattern
from repro.data.dataset import Dataset
from repro.ml.metrics import FPR


@dataclass(frozen=True)
class SubgroupDelta:
    """One subgroup's divergence before vs. after."""

    pattern: Pattern
    size: int
    divergence_before: float
    divergence_after: float

    @property
    def delta(self) -> float:
        """Negative = improved (divergence shrank)."""
        return self.divergence_after - self.divergence_before


@dataclass(frozen=True)
class FairnessDiff:
    """Aligned subgroup deltas between two prediction sets."""

    gamma: str
    deltas: tuple[SubgroupDelta, ...]

    @property
    def n_improved(self) -> int:
        return sum(1 for d in self.deltas if d.delta < -1e-12)

    @property
    def n_worsened(self) -> int:
        return sum(1 for d in self.deltas if d.delta > 1e-12)

    @property
    def total_divergence_change(self) -> float:
        return float(sum(d.delta for d in self.deltas))

    def worst_regressions(self, n: int = 5) -> list[SubgroupDelta]:
        """The subgroups that got most worse (largest positive delta)."""
        return sorted(self.deltas, key=lambda d: -d.delta)[:n]

    def table(self, schema, top: int = 10) -> str:
        from repro.experiments.reporting import format_table

        ranked = sorted(self.deltas, key=lambda d: d.delta)
        shown = ranked[:top] + [d for d in ranked[-top:] if d not in ranked[:top]]
        rows = [
            (
                d.pattern.describe(schema),
                d.size,
                d.divergence_before,
                d.divergence_after,
                d.delta,
            )
            for d in shown
        ]
        return format_table(
            ("subgroup", "size", "before", "after", "delta"),
            rows,
            precision=3,
            title=(
                f"Fairness diff ({self.gamma}): {self.n_improved} improved, "
                f"{self.n_worsened} worsened, total change "
                f"{self.total_divergence_change:+.3f}"
            ),
        )


def compare_predictions(
    test: Dataset,
    pred_before: np.ndarray,
    pred_after: np.ndarray,
    gamma: str = FPR,
    attrs: Sequence[str] | None = None,
    min_size: int = 30,
) -> FairnessDiff:
    """Align divergence reports of two prediction vectors on ``test``.

    Subgroups whose statistic is defined in only one of the two runs are
    dropped (no meaningful delta exists for them).
    """
    before = {
        r.pattern: r
        for r in find_divergent_subgroups(
            test, pred_before, gamma=gamma, attrs=attrs, min_size=min_size
        )
    }
    after = {
        r.pattern: r
        for r in find_divergent_subgroups(
            test, pred_after, gamma=gamma, attrs=attrs, min_size=min_size
        )
    }
    deltas = []
    for pattern in before.keys() & after.keys():
        deltas.append(
            SubgroupDelta(
                pattern=pattern,
                size=before[pattern].size,
                divergence_before=before[pattern].divergence,
                divergence_after=after[pattern].divergence,
            )
        )
    deltas.sort(key=lambda d: (d.delta, d.pattern.items))
    return FairnessDiff(gamma=gamma, deltas=tuple(deltas))
