"""DivExplorer-style mining of divergent (unfair) subgroups.

Re-implements the role DivExplorer [26] plays in the paper's evaluation: for
a statistic γ ∈ {FPR, FNR, error_rate, accuracy, positive_rate}, enumerate
every intersectional subgroup over the given attributes (all lattice levels,
a support threshold pruning tiny groups), compute its divergence from the
dataset statistic, and attach a Welch t-test p-value comparing the
subgroup's per-instance error indicators against the complement's.

The per-node computation is fully vectorised: one pass of ``bincount`` over
joint cell codes per (node, indicator) pair, so mining all subgroups of a
45k-row dataset over six attributes takes well under a second.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.pattern import Pattern
from repro.data.dataset import Dataset
from repro.errors import DataError
from repro.obs import trace as obs
from repro.audit.significance import bernoulli_t_test
from repro.ml.metrics import (
    ACCURACY,
    ERROR_RATE,
    FNR,
    FPR,
    POSITIVE_RATE,
    statistic,
)


@dataclass(frozen=True)
class SubgroupReport:
    """One mined subgroup with its divergence evidence."""

    pattern: Pattern
    size: int
    support: float
    n_conditioning: int  # rows in the statistic's conditioning event
    gamma_group: float
    gamma_dataset: float
    divergence: float
    p_value: float

    def is_significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha

    def is_unfair(self, tau_d: float, alpha: float = 0.05) -> bool:
        """Divergence exceeds ``tau_d`` and is statistically significant."""
        return self.divergence > tau_d and self.is_significant(alpha)


def _indicator_masks(
    y_true: np.ndarray, y_pred: np.ndarray, gamma: str
) -> tuple[np.ndarray, np.ndarray]:
    """(conditioning_mask, error_mask) whose ratio per group equals γ_g."""
    if gamma == FPR:
        cond = y_true == 0
        err = cond & (y_pred == 1)
    elif gamma == FNR:
        cond = y_true == 1
        err = cond & (y_pred == 0)
    elif gamma in (ERROR_RATE, ACCURACY):
        cond = np.ones_like(y_true, dtype=bool)
        wrong = y_true != y_pred
        err = wrong if gamma == ERROR_RATE else ~wrong
    elif gamma == POSITIVE_RATE:
        cond = np.ones_like(y_true, dtype=bool)
        err = y_pred == 1
    else:
        raise DataError(f"unsupported statistic {gamma!r}")
    return cond, err


def find_divergent_subgroups(
    dataset: Dataset,
    y_pred: np.ndarray,
    gamma: str = FPR,
    attrs: Sequence[str] | None = None,
    min_support: float = 0.0,
    min_size: int = 1,
    max_level: int | None = None,
) -> list[SubgroupReport]:
    """Enumerate subgroups and report each one's divergence for ``gamma``.

    Parameters
    ----------
    dataset / y_pred:
        Test data and hard predictions on it.
    attrs:
        Attribute universe (default: the dataset's protected attributes).
    min_support / min_size:
        Support (fraction of rows) and absolute size floors.
    max_level:
        Deepest lattice level to mine; ``None`` mines all levels.

    Returns subgroups sorted by descending divergence (nan divergences are
    dropped — they correspond to groups where γ is undefined).
    """
    if attrs is None:
        attrs = dataset.protected
    attrs = tuple(attrs)
    if not attrs:
        raise DataError("need at least one attribute to mine subgroups")
    dataset.schema.require_categorical(attrs)
    y_pred = np.asarray(y_pred)
    if y_pred.shape != dataset.y.shape:
        raise DataError(
            f"y_pred shape {y_pred.shape} != dataset rows {dataset.y.shape}"
        )

    cond_mask, err_mask = _indicator_masks(dataset.y, y_pred, gamma)
    total_cond = int(cond_mask.sum())
    total_err = int(err_mask.sum())
    gamma_d = statistic(gamma, dataset.y, y_pred)
    n_rows = dataset.n_rows
    max_level = len(attrs) if max_level is None else min(max_level, len(attrs))

    out: list[SubgroupReport] = []
    with obs.span(
        "audit.mine_subgroups", gamma=gamma, n_attrs=len(attrs)
    ) as mine_span:
        for level in range(1, max_level + 1):
            _mine_level(
                dataset, attrs, level, gamma, gamma_d, cond_mask, err_mask,
                total_cond, total_err, min_size, min_support, n_rows, out,
            )
        mine_span.annotate(subgroups=len(out))
    out.sort(key=lambda s: (-s.divergence, s.pattern.items))
    return out


def _mine_level(
    dataset: Dataset,
    attrs: tuple[str, ...],
    level: int,
    gamma: str,
    gamma_d: float,
    cond_mask: np.ndarray,
    err_mask: np.ndarray,
    total_cond: int,
    total_err: int,
    min_size: int,
    min_support: float,
    n_rows: int,
    out: list[SubgroupReport],
) -> None:
    """Mine one lattice level into ``out`` (split out of the public miner)."""
    for subset in itertools.combinations(attrs, level):
        codes, shape = dataset.joint_codes(subset)
        n_cells = int(np.prod(shape))
        obs.count("audit.subgroups_scanned", n_cells)
        size = np.bincount(codes, minlength=n_cells)
        cond = np.bincount(codes[cond_mask], minlength=n_cells)
        err = np.bincount(codes[err_mask], minlength=n_cells)
        keep = np.flatnonzero(
            (size >= max(min_size, 1))
            & (size >= min_support * n_rows)
            & (cond > 0)
        )
        for flat in keep:
            coords = np.unravel_index(int(flat), shape)
            pattern = Pattern(zip(subset, (int(c) for c in coords)))
            n1 = int(cond[flat])
            e1 = int(err[flat])
            gamma_g = e1 / n1
            if np.isnan(gamma_d):
                continue
            __, p_value = bernoulli_t_test(
                e1, n1, total_err - e1, total_cond - n1
            )
            out.append(
                SubgroupReport(
                    pattern=pattern,
                    size=int(size[flat]),
                    support=float(size[flat] / n_rows),
                    n_conditioning=n1,
                    gamma_group=gamma_g,
                    gamma_dataset=float(gamma_d),
                    divergence=abs(gamma_g - gamma_d),
                    p_value=p_value,
                )
            )


def unfair_subgroups(
    dataset: Dataset,
    y_pred: np.ndarray,
    gamma: str = FPR,
    tau_d: float = 0.1,
    alpha: float = 0.05,
    attrs: Sequence[str] | None = None,
    min_support: float = 0.0,
    min_size: int = 1,
) -> list[SubgroupReport]:
    """Subgroups violating ``tau_d``-fairness with significance (Def. 1)."""
    reports = find_divergent_subgroups(
        dataset,
        y_pred,
        gamma=gamma,
        attrs=attrs,
        min_support=min_support,
        min_size=min_size,
    )
    unfair = [r for r in reports if r.is_unfair(tau_d, alpha)]
    obs.count("audit.unfair_subgroups", len(unfair))
    return unfair
