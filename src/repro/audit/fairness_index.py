"""The paper's Fairness Index (§V-A.d).

"The index is calculated as the sum of the divergences for each unfair
subgroup with a support (as a fraction of the dataset size) over 0.1 and a
statistically significant divergence (as determined by the t-test).  Lower
values indicate higher levels of fairness."
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.audit.divexplorer import SubgroupReport, find_divergent_subgroups
from repro.data.dataset import Dataset
from repro.ml.metrics import FPR

DEFAULT_SUPPORT_FLOOR = 0.1
DEFAULT_ALPHA = 0.05


def fairness_index_from_reports(
    reports: Sequence[SubgroupReport],
    min_support: float = DEFAULT_SUPPORT_FLOOR,
    alpha: float = DEFAULT_ALPHA,
) -> float:
    """Sum of divergences over significant subgroups above the support floor."""
    return float(
        sum(
            r.divergence
            for r in reports
            if r.support >= min_support and r.is_significant(alpha)
        )
    )


def fairness_index(
    dataset: Dataset,
    y_pred: np.ndarray,
    gamma: str = FPR,
    attrs: Sequence[str] | None = None,
    min_support: float = DEFAULT_SUPPORT_FLOOR,
    alpha: float = DEFAULT_ALPHA,
) -> float:
    """Mine subgroups on the test predictions and aggregate the index.

    Subgroups below ``min_support`` are pruned during mining already, which
    keeps the index cheap even for six-attribute lattices.
    """
    reports = find_divergent_subgroups(
        dataset, y_pred, gamma=gamma, attrs=attrs, min_support=min_support
    )
    return fairness_index_from_reports(reports, min_support=min_support, alpha=alpha)
