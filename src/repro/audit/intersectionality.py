"""Quantifying how much unfairness only appears at intersections.

Example 1 of the paper is the canonical story: per-attribute FPRs look fine
(0.09 / 0.07 around an overall 0.088) while an intersectional subgroup sits
at 0.15.  This module turns that story into measurements:

* :func:`divergence_profile` — the worst (and aggregate) divergence at each
  lattice level;
* :func:`intersectionality_gap` — how much worse the worst subgroup at
  levels ≥ 2 is than the worst single-attribute group.  A positive gap is
  exactly the "independently fair but intersectionally unfair" regime that
  motivates subgroup fairness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.audit.divexplorer import SubgroupReport, find_divergent_subgroups
from repro.data.dataset import Dataset
from repro.errors import DataError
from repro.ml.metrics import FPR


@dataclass(frozen=True)
class LevelProfile:
    """Divergence statistics of one lattice level."""

    level: int
    n_subgroups: int
    max_divergence: float
    mean_divergence: float
    worst: SubgroupReport | None


@dataclass(frozen=True)
class IntersectionalityReport:
    """Per-level profiles plus the headline gap."""

    gamma: str
    profiles: tuple[LevelProfile, ...]

    def profile(self, level: int) -> LevelProfile:
        for p in self.profiles:
            if p.level == level:
                return p
        raise DataError(f"no profile for level {level}")

    @property
    def gap(self) -> float:
        """``max_{level >= 2} max_divergence − max_divergence(level 1)``.

        Positive ⇔ some intersection diverges more than any single
        protected group does — the unfairness is *intersectional*.
        """
        level1 = self.profile(1).max_divergence
        deeper = [p.max_divergence for p in self.profiles if p.level >= 2]
        if not deeper:
            return 0.0
        return max(deeper) - level1


def divergence_profile(
    dataset: Dataset,
    y_pred: np.ndarray,
    gamma: str = FPR,
    attrs: Sequence[str] | None = None,
    min_size: int = 30,
) -> IntersectionalityReport:
    """Profile subgroup divergence level by level."""
    reports = find_divergent_subgroups(
        dataset, y_pred, gamma=gamma, attrs=attrs, min_size=min_size
    )
    by_level: dict[int, list[SubgroupReport]] = {}
    for r in reports:
        by_level.setdefault(r.pattern.level, []).append(r)

    if attrs is None:
        attrs = dataset.protected
    profiles = []
    for level in range(1, len(tuple(attrs)) + 1):
        level_reports = by_level.get(level, [])
        if level_reports:
            worst = max(level_reports, key=lambda r: r.divergence)
            profiles.append(
                LevelProfile(
                    level=level,
                    n_subgroups=len(level_reports),
                    max_divergence=worst.divergence,
                    mean_divergence=float(
                        np.mean([r.divergence for r in level_reports])
                    ),
                    worst=worst,
                )
            )
        else:
            profiles.append(LevelProfile(level, 0, 0.0, 0.0, None))
    return IntersectionalityReport(gamma=gamma, profiles=tuple(profiles))


def intersectionality_gap(
    dataset: Dataset,
    y_pred: np.ndarray,
    gamma: str = FPR,
    attrs: Sequence[str] | None = None,
    min_size: int = 30,
) -> float:
    """Convenience wrapper returning only the headline gap."""
    return divergence_profile(
        dataset, y_pred, gamma=gamma, attrs=attrs, min_size=min_size
    ).gap
