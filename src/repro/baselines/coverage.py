"""Coverage enhancement baseline (Asudeh et al., ICDE 2018 [4]).

Identifies subgroups of the protected-attribute space that *lack coverage*
(fewer than ``lambda_threshold`` rows) and augments the dataset so every
such subgroup reaches the threshold.  Following the paper's §V-A setup,
"for additional tuples required to augment the coverage of a subgroup g, we
randomly sampled additional tuples from that subgroup" — i.e. duplication of
existing rows of g.  Patterns with no support at all cannot be augmented
this way and are skipped (there is nothing to sample from).

The original work reports *maximal uncovered patterns* (MUPs): uncovered
patterns none of whose dominating generalisations is uncovered.  We expose
both the MUP identification and the remedy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.hierarchy import Hierarchy
from repro.core.pattern import Pattern
from repro.data.dataset import Dataset
from repro.errors import DataError


@dataclass(frozen=True)
class UncoveredPattern:
    """A pattern below the coverage threshold."""

    pattern: Pattern
    count: int
    is_maximal: bool  # no dominating generalisation is also uncovered


def find_uncovered_patterns(
    dataset: Dataset,
    lambda_threshold: int,
    attrs: Sequence[str] | None = None,
) -> list[UncoveredPattern]:
    """All patterns with ``0 < count < lambda_threshold`` plus MUP flags.

    Empty patterns (count 0) are reported too — they are genuinely uncovered
    — but the remedy cannot augment them.
    """
    if lambda_threshold < 1:
        raise DataError("lambda_threshold must be >= 1")
    hierarchy = Hierarchy(dataset, attrs=attrs)
    uncovered: dict[Pattern, int] = {}
    for level in hierarchy.levels():
        for node in hierarchy.nodes_at_level(level):
            total = node.pos + node.neg
            flat = np.flatnonzero(total.reshape(-1) < lambda_threshold)
            for f in flat:
                coords = (
                    np.unravel_index(int(f), node.shape) if node.shape else ()
                )
                pattern = node.pattern_of(tuple(int(c) for c in coords))
                uncovered[pattern] = int(total[tuple(int(c) for c in coords)])

    out = []
    for pattern, count in uncovered.items():
        # Maximal when no strict generalisation is uncovered.
        maximal = not any(
            parent in uncovered
            for parent in (
                pattern.drop(a) for a in pattern.attrs if pattern.level > 1
            )
        )
        out.append(UncoveredPattern(pattern, count, maximal))
    out.sort(key=lambda u: (u.pattern.level, u.pattern.items))
    return out


def coverage_remedy(
    dataset: Dataset,
    lambda_threshold: int = 30,
    attrs: Sequence[str] | None = None,
    seed: int = 0,
) -> Dataset:
    """Augment every non-empty uncovered subgroup up to the threshold.

    Only *maximal* uncovered patterns are augmented directly; filling a MUP
    also raises the counts of everything it dominates, which mirrors the
    original coverage-enhancement strategy and avoids over-duplication.
    """
    rng = np.random.default_rng(seed)
    current = dataset
    for uncovered in find_uncovered_patterns(dataset, lambda_threshold, attrs):
        if not uncovered.is_maximal or uncovered.count == 0:
            continue
        mask = uncovered.pattern.mask(current)
        idx = np.flatnonzero(mask)
        deficit = lambda_threshold - idx.size
        if deficit <= 0:
            continue
        chosen = rng.choice(idx, size=deficit, replace=True)
        current = current.duplicate_rows(chosen)
    return current
