"""Fair-SMOTE baseline (Chakraborty, Majumder & Menzies, FSE 2021 [8]).

Balances every (subgroup, label) cell of the protected-attribute cross
product to the size of the largest cell by synthesising new minority rows.
Synthesis is SMOTE-style: pick a seed row of the cell, pick one of its
k nearest neighbours *within the same cell*, then interpolate numeric
attributes uniformly along the segment and inherit each categorical
attribute from either endpoint at random (protected attributes are pinned
to the cell's values by construction, since neighbours share the cell).

The kNN search over every cell is what makes the method slow on large data
— the paper's Table III measures >1000 s — and this implementation keeps
that cost profile honestly (brute-force kNN per cell).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.dataset import Dataset, concat
from repro.errors import DataError
from repro.ml.knn import nearest_neighbors


def _synthesize_rows(
    cell: Dataset, n_new: int, k: int, rng: np.random.Generator
) -> Dataset:
    """SMOTE-interpolate ``n_new`` rows inside one (subgroup, label) cell."""
    numeric = cell.schema.numeric_names
    categorical = cell.schema.categorical_names

    if cell.n_rows == 1:
        # Nothing to interpolate with: duplicate the lone row.
        return cell.take(np.zeros(n_new, dtype=np.int64))

    if numeric:
        X = np.column_stack([cell.column(n) for n in numeric])
        scale = X.std(axis=0)
        scale[scale == 0] = 1.0
        neighbors = nearest_neighbors(X / scale, k=min(k, cell.n_rows - 1))
    else:
        # No numeric features: any other row of the cell is a "neighbour".
        neighbors = None

    seeds = rng.integers(cell.n_rows, size=n_new)
    if neighbors is not None:
        picks = neighbors[seeds, rng.integers(neighbors.shape[1], size=n_new)]
    else:
        offsets = rng.integers(1, cell.n_rows, size=n_new)
        picks = (seeds + offsets) % cell.n_rows

    columns: dict[str, np.ndarray] = {}
    t = rng.random(n_new)
    for name in numeric:
        col = cell.column(name)
        columns[name] = col[seeds] + t * (col[picks] - col[seeds])
    for name in categorical:
        col = cell.column(name)
        from_seed = rng.random(n_new) < 0.5
        columns[name] = np.where(from_seed, col[seeds], col[picks])
    y = cell.y[seeds]  # seed and pick share the label by construction
    return Dataset(cell.schema, columns, y, cell.protected)


def fair_smote(
    dataset: Dataset,
    attrs: Sequence[str] | None = None,
    k: int = 5,
    seed: int = 0,
) -> Dataset:
    """Return the dataset with every (subgroup, label) cell balanced up.

    Cells with zero rows cannot be synthesised and are skipped (Fair-SMOTE
    only expands cells that exist).
    """
    if attrs is None:
        attrs = dataset.protected
    attrs = tuple(attrs)
    if not attrs:
        raise DataError("fair_smote needs at least one protected attribute")
    rng = np.random.default_rng(seed)

    codes, shape = dataset.joint_codes(attrs)
    n_cells = int(np.prod(shape))
    cell_label = codes * 2 + dataset.y
    counts = np.bincount(cell_label, minlength=2 * n_cells)
    present = counts[counts > 0]
    if present.size == 0:
        return dataset
    target = int(present.max())

    parts = [dataset]
    for cl in np.flatnonzero(counts):
        deficit = target - int(counts[cl])
        if deficit <= 0:
            continue
        rows = np.flatnonzero(cell_label == cl)
        cell = dataset.take(rows)
        parts.append(_synthesize_rows(cell, deficit, k, rng))
    return concat(parts)
