"""GerryFair baseline (Kearns, Neel, Roth & Wu, ICML 2018 [21]).

In-processing subgroup-fairness learner formulated as a two-player zero-sum
game between a *Learner* (best-responds with a cost-sensitive classifier)
and an *Auditor* (finds the subgroup with the largest weighted FP-rate
violation).  This reproduction plays the game by fictitious play:

1. the Learner fits a linear (logistic) model under the current example
   costs, and the running ensemble is the uniform mixture of all rounds'
   models — the mixed strategy of fictitious play;
2. the Auditor inspects the mixture's training predictions and returns the
   subgroup maximising ``divergence(g) · support(g)`` (the violation metric
   of §V-B4), searching the conjunction class over the protected attributes;
3. the Learner's costs on the violating subgroup's conditioning rows are
   updated multiplicatively, pushing the next round's best response to
   shrink the violation.

Deviation from the original (documented in DESIGN.md): the Auditor searches
conjunctions of protected-attribute values rather than linear threshold
functions.  Over one-hot protected encodings the two classes coincide up to
thresholding, and the conjunction auditor is exact rather than heuristic.
The iterative fit-audit loop preserves the method's characteristic cost
(many full model fits — GerryFair is the slow in-processing entry of
Table III).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.audit.divexplorer import find_divergent_subgroups
from repro.data.dataset import Dataset
from repro.errors import FitError
from repro.ml.encoding import DatasetEncoder
from repro.ml.logistic import LogisticRegressionClassifier
from repro.ml.metrics import FNR, FPR


class GerryFairClassifier:
    """Fictitious-play subgroup-fairness learner.

    Parameters
    ----------
    gamma:
        Target violation; the game stops early once the audited violation
        falls below it.
    max_iters:
        Fictitious-play rounds (each is a full model fit plus an audit).
    C:
        Cost learning rate for the multiplicative update.
    statistic:
        ``fpr`` audits false-positive violations (equal opportunity),
        ``fnr`` false-negative ones.
    min_subgroup_size:
        Auditor ignores smaller subgroups.
    """

    def __init__(
        self,
        gamma: float = 0.005,
        max_iters: int = 15,
        C: float = 8.0,
        statistic: str = FPR,
        min_subgroup_size: int = 30,
        l2: float = 1.0,
    ):
        if gamma < 0:
            raise FitError("gamma must be non-negative")
        if max_iters < 1:
            raise FitError("max_iters must be >= 1")
        if statistic not in (FPR, FNR):
            raise FitError("statistic must be 'fpr' or 'fnr'")
        self.gamma = gamma
        self.max_iters = max_iters
        self.C = C
        self.statistic = statistic
        self.min_subgroup_size = min_subgroup_size
        self.l2 = l2
        self._models: list[LogisticRegressionClassifier] = []
        self._encoder: DatasetEncoder | None = None
        self.violation_history: list[float] = []

    def fit(
        self, dataset: Dataset, attrs: Sequence[str] | None = None
    ) -> "GerryFairClassifier":
        attrs = tuple(attrs) if attrs is not None else dataset.protected
        self._encoder = DatasetEncoder().fit(dataset)
        X = self._encoder.transform(dataset)
        y = dataset.y
        # Conditioning event of the audited statistic: negatives for FPR,
        # positives for FNR.
        cond = y == (0 if self.statistic == FPR else 1)

        weights = np.ones(dataset.n_rows)
        self._models = []
        self.violation_history = []

        for _ in range(self.max_iters):
            model = LogisticRegressionClassifier(l2=self.l2)
            model.fit(X, y, sample_weight=weights)
            self._models.append(model)

            ensemble_pred = (self._ensemble_proba(X) >= 0.5).astype(np.int8)
            reports = find_divergent_subgroups(
                dataset,
                ensemble_pred,
                gamma=self.statistic,
                attrs=attrs,
                min_size=self.min_subgroup_size,
            )
            if not reports:
                self.violation_history.append(0.0)
                break
            worst = max(reports, key=lambda r: r.divergence * r.support)
            violation = worst.divergence * worst.support
            self.violation_history.append(float(violation))
            if violation <= self.gamma:
                break

            # Auditor's response: raise the cost of the error direction on
            # the violating subgroup's conditioning rows.
            in_group = worst.pattern.mask(dataset) & cond
            if worst.gamma_group > worst.gamma_dataset:
                # Too many errors inside g: make those rows more expensive.
                weights[in_group] *= 1.0 + self.C * violation
            else:
                # Too many errors outside g.
                weights[~in_group & cond] *= 1.0 + self.C * violation
            weights *= dataset.n_rows / weights.sum()
        return self

    def _ensemble_proba(self, X: np.ndarray) -> np.ndarray:
        probs = np.zeros(X.shape[0])
        for model in self._models:
            probs += model.predict_proba(X)
        return probs / len(self._models)

    def predict_proba(self, dataset: Dataset) -> np.ndarray:
        if self._encoder is None or not self._models:
            raise FitError("GerryFairClassifier must be fitted first")
        return self._ensemble_proba(self._encoder.transform(dataset))

    def predict(self, dataset: Dataset) -> np.ndarray:
        return (self.predict_proba(dataset) >= 0.5).astype(np.int8)
