"""Reweighting baseline (Kamiran & Calders, 2012 [19]).

Assigns each training row a weight so that, in the weighted data, subgroup
membership and label are statistically independent:

    w(g, y) = P(g) * P(y) / P(g, y) = (|g| * |y|) / (n * |g ∧ y|)

Subgroups are the leaf-level cells of the protected-attribute cross product
(the paper's §V-A applies the method "for each (subgroup, label)
combination to achieve equivalent class distribution across all
subgroups").  The downstream learner must accept sample weights — the
flexibility limitation Table III's discussion calls out.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import DataError


def reweighting_weights(
    dataset: Dataset, attrs: Sequence[str] | None = None
) -> np.ndarray:
    """Kamiran–Calders weights per row (mean weight is 1 by construction)."""
    if attrs is None:
        attrs = dataset.protected
    attrs = tuple(attrs)
    if not attrs:
        raise DataError("reweighting needs at least one protected attribute")
    codes, shape = dataset.joint_codes(attrs)
    n_cells = int(np.prod(shape))
    n = dataset.n_rows

    group_count = np.bincount(codes, minlength=n_cells).astype(np.float64)
    label_count = np.array(
        [dataset.n_negative, dataset.n_positive], dtype=np.float64
    )
    joint = np.zeros((n_cells, 2))
    for label in (0, 1):
        joint[:, label] = np.bincount(
            codes[dataset.y == label], minlength=n_cells
        )

    weights = np.ones(n)
    y = dataset.y
    cell_joint = joint[codes, y]
    expected = group_count[codes] * label_count[y] / n
    nonzero = cell_joint > 0
    weights[nonzero] = expected[nonzero] / cell_joint[nonzero]
    return weights


def fairbalance_weights(
    dataset: Dataset, attrs: Sequence[str] | None = None
) -> np.ndarray:
    """FairBalance weights (Yu, Chakraborty & Menzies, 2021 [35]).

    Beyond independence, FairBalance makes the class distribution *balanced*
    (1:1) inside every subgroup:

        w(g, y) = |g| / (2 * |g ∧ y|)

    so each (group, label) cell carries total weight ``|g| / 2`` — equal and
    balanced across labels — while each group keeps its original total mass.
    """
    if attrs is None:
        attrs = dataset.protected
    attrs = tuple(attrs)
    if not attrs:
        raise DataError("fairbalance needs at least one protected attribute")
    codes, shape = dataset.joint_codes(attrs)
    n_cells = int(np.prod(shape))

    group_count = np.bincount(codes, minlength=n_cells).astype(np.float64)
    joint = np.zeros((n_cells, 2))
    for label in (0, 1):
        joint[:, label] = np.bincount(
            codes[dataset.y == label], minlength=n_cells
        )

    weights = np.ones(dataset.n_rows)
    cell_joint = joint[codes, dataset.y]
    nonzero = cell_joint > 0
    weights[nonzero] = group_count[codes][nonzero] / (2.0 * cell_joint[nonzero])
    return weights
