"""Post-processing baseline: per-group decision thresholds.

The paper's related work lists three mitigation families — pre-processing
(its own method), in-processing (GerryFair), and post-processing [15], [20],
[28] — but compares only against the first two.  This module adds the
missing family in its classic form (Hardt, Price & Srebro, 2016): keep the
trained model, but choose a separate decision threshold for each leaf-level
protected group so that the audited statistic (FPR for equal opportunity,
FNR for the other half of equalised odds) matches the global rate.

The threshold for a group is picked from its candidate scores to bring the
group's statistic as close as possible to the whole-dataset statistic at
the default 0.5 threshold, holding out nothing: like the original, this is
an oracle-style adjustment on the data it is given, so callers should fit
on a validation split.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import DataError, FitError, NotFittedError
from repro.ml.metrics import FNR, FPR, statistic


class GroupThresholdPostprocessor:
    """Per-group thresholds equalising FPR or FNR.

    Parameters
    ----------
    statistic:
        ``"fpr"`` (equal opportunity on the negative class) or ``"fnr"``.
    min_group_size:
        Groups smaller than this keep the global threshold — matching the
        paper's practice of ignoring insignificant regions.
    """

    def __init__(self, statistic: str = FPR, min_group_size: int = 30):
        if statistic not in (FPR, FNR):
            raise FitError("statistic must be 'fpr' or 'fnr'")
        if min_group_size < 1:
            raise FitError("min_group_size must be >= 1")
        self.statistic = statistic
        self.min_group_size = min_group_size
        self._thresholds: dict[int, float] | None = None
        self._attrs: tuple[str, ...] | None = None
        self._shape: tuple[int, ...] | None = None

    def fit(
        self,
        dataset: Dataset,
        scores: np.ndarray,
        attrs: Sequence[str] | None = None,
    ) -> "GroupThresholdPostprocessor":
        """Choose per-group thresholds on ``dataset`` with model ``scores``."""
        attrs = tuple(attrs) if attrs is not None else dataset.protected
        if not attrs:
            raise DataError("post-processing needs at least one protected attribute")
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape != dataset.y.shape:
            raise DataError("scores shape does not match the dataset")

        target = statistic(
            self.statistic, dataset.y, (scores >= 0.5).astype(np.int8)
        )
        if np.isnan(target):
            raise DataError(
                f"global {self.statistic} undefined on this data"
            )
        codes, shape = dataset.joint_codes(attrs)
        thresholds: dict[int, float] = {}
        for cell in np.unique(codes):
            sel = codes == cell
            if int(sel.sum()) < self.min_group_size:
                continue
            thresholds[int(cell)] = self._best_threshold(
                dataset.y[sel], scores[sel], target
            )
        self._thresholds = thresholds
        self._attrs = attrs
        self._shape = shape
        return self

    def _best_threshold(
        self, y: np.ndarray, scores: np.ndarray, target: float
    ) -> float:
        """Candidate threshold minimising |group statistic − target|.

        Candidates are midpoints between consecutive distinct scores (plus
        the extremes), so every achievable confusion split is considered.
        """
        distinct = np.unique(scores)
        candidates = [0.0, 1.0 + 1e-9]
        candidates.extend((distinct[:-1] + distinct[1:]) / 2.0)
        candidates.append(0.5)
        best_t, best_err = 0.5, float("inf")
        for t in candidates:
            pred = (scores >= t).astype(np.int8)
            value = statistic(self.statistic, y, pred)
            if np.isnan(value):
                continue
            err = abs(value - target)
            # Prefer the threshold closest to 0.5 on ties (least intrusive).
            if err < best_err - 1e-12 or (
                abs(err - best_err) <= 1e-12 and abs(t - 0.5) < abs(best_t - 0.5)
            ):
                best_err, best_t = err, float(t)
        return best_t

    def predict(self, dataset: Dataset, scores: np.ndarray) -> np.ndarray:
        """Apply the fitted per-group thresholds to new scores."""
        if self._thresholds is None or self._attrs is None:
            raise NotFittedError("postprocessor must be fitted first")
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape != (dataset.n_rows,):
            raise DataError("scores shape does not match the dataset")
        codes, shape = dataset.joint_codes(self._attrs)
        if shape != self._shape:
            raise DataError("dataset domains changed since fit")
        thresholds = np.full(dataset.n_rows, 0.5)
        for cell, t in self._thresholds.items():
            thresholds[codes == cell] = t
        return (scores >= thresholds).astype(np.int8)

    @property
    def thresholds(self) -> dict[int, float]:
        """Fitted ``{group joint code: threshold}`` (global 0.5 elsewhere)."""
        if self._thresholds is None:
            raise NotFittedError("postprocessor must be fitted first")
        return dict(self._thresholds)
