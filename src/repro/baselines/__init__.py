"""Subgroup-unfairness mitigation baselines of the paper's §V-A.c."""

from repro.baselines.coverage import (
    UncoveredPattern,
    coverage_remedy,
    find_uncovered_patterns,
)
from repro.baselines.fairsmote import fair_smote
from repro.baselines.gerryfair import GerryFairClassifier
from repro.baselines.postprocess import GroupThresholdPostprocessor
from repro.baselines.reweighting import fairbalance_weights, reweighting_weights

__all__ = [
    "coverage_remedy",
    "find_uncovered_patterns",
    "UncoveredPattern",
    "reweighting_weights",
    "fairbalance_weights",
    "fair_smote",
    "GerryFairClassifier",
    "GroupThresholdPostprocessor",
]
