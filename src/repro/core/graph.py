"""Hierarchy ↔ networkx bridge (Fig. 1 as an actual graph).

The paper draws the hierarchy of region nodes with parent/child dominance
edges (its Fig. 1).  :func:`hierarchy_to_networkx` materialises exactly
that diagram as a :class:`networkx.DiGraph` — one graph node per hierarchy
node (a deterministic attribute set), edges from each node to its parents —
annotated with region counts, so the lattice can be inspected, exported to
DOT, or analysed with standard graph tooling.
"""

from __future__ import annotations

import networkx as nx

from repro.core.hierarchy import Hierarchy


def node_key(attrs: tuple[str, ...]) -> str:
    """Stable string key for a hierarchy node ('(dataset)' for the root)."""
    return ",".join(sorted(attrs)) if attrs else "(dataset)"


def hierarchy_to_networkx(hierarchy: Hierarchy) -> "nx.DiGraph":
    """Directed graph: child node → parent node (one attribute removed).

    Node attributes: ``level``, ``attrs``, ``n_cells``, ``total_pos``,
    ``total_neg``.
    """
    graph = nx.DiGraph()
    graph.add_node(
        node_key(()),
        level=0,
        attrs=(),
        n_cells=1,
        total_pos=hierarchy.root.total_pos,
        total_neg=hierarchy.root.total_neg,
    )
    for level in hierarchy.levels():
        for node in hierarchy.nodes_at_level(level):
            graph.add_node(
                node_key(node.attrs),
                level=node.level,
                attrs=node.attrs,
                n_cells=node.n_cells,
                total_pos=node.total_pos,
                total_neg=node.total_neg,
            )
            for parent in hierarchy.parents(node):
                graph.add_edge(node_key(node.attrs), node_key(parent.attrs))
            if node.level == 1:
                graph.add_edge(node_key(node.attrs), node_key(()))
    return graph


def lattice_stats(hierarchy: Hierarchy) -> dict[str, int]:
    """Size summary of the lattice (used by the scalability narrative)."""
    graph = hierarchy_to_networkx(hierarchy)
    return {
        "n_nodes": graph.number_of_nodes(),
        "n_edges": graph.number_of_edges(),
        "n_cells": sum(
            data["n_cells"] for __, data in graph.nodes(data=True)
        ),
        "max_level": hierarchy.max_level,
    }
