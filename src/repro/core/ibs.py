"""Implicit Biased Set identification (paper Problem 1 / Algorithm 1).

Traverses the hierarchy bottom-up (leaf level → level 1), keeps regions with
more than ``k`` instances, computes each region's imbalance score and its
neighbourhood's, and reports the regions whose difference exceeds ``tau_c``.
The neighbourhood engine is selectable (``naive`` per §III-A, ``optimized``
per §III-B, ``vectorized`` — whole-node array evaluation of the §III-B sum,
see ``docs/performance.md``) as is the traversal *scope* used in the
evaluation's ablation: ``lattice`` (all levels — the paper's method),
``leaf`` (deepest level only), ``top`` (level 1 only).  All three engines
return identical report lists on every input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.hierarchy import Hierarchy, HierarchyNode
from repro.core.imbalance import (
    RATIO_UNDEFINED,
    imbalance_score,
    is_biased,
    score_difference,
)
from repro.core.neighbors import (
    EUCLIDEAN_UNIT,
    naive_neighbor_counts,
    naive_neighbor_counts_scan,
    optimized_neighbor_counts,
    vectorized_neighbor_counts,
)
from repro.core.pattern import Pattern
from repro.data.dataset import Dataset
from repro.errors import PatternError
from repro.obs import trace as obs

SCOPE_LATTICE = "lattice"
SCOPE_LEAF = "leaf"
SCOPE_TOP = "top"
SCOPES = (SCOPE_LATTICE, SCOPE_LEAF, SCOPE_TOP)

METHOD_NAIVE = "naive"
METHOD_OPTIMIZED = "optimized"
METHOD_VECTORIZED = "vectorized"
METHODS = (METHOD_NAIVE, METHOD_OPTIMIZED, METHOD_VECTORIZED)

DEFAULT_MIN_SIZE = 30  # the paper's central-limit rule of thumb for k


@dataclass(frozen=True)
class RegionReport:
    """One region's imbalance evidence.

    ``ratio`` / ``neighbor_ratio`` follow Definition 3 (``-1`` sentinel for
    an empty negative side); ``difference`` applies the sentinel semantics of
    :func:`repro.core.imbalance.score_difference`.
    """

    pattern: Pattern
    pos: int
    neg: int
    ratio: float
    neighbor_pos: int
    neighbor_neg: int
    neighbor_ratio: float
    difference: float

    @property
    def size(self) -> int:
        return self.pos + self.neg

    @property
    def skew_direction(self) -> int:
        """+1 when the region is positively skewed vs. its neighbourhood
        (``ratio_r > ratio_rn`` — the FPR-inducing case per §V-B1), -1 when
        negatively skewed, 0 when equal/incomparable."""
        if self.difference == 0.0:
            return 0
        if self.neighbor_ratio == -1.0:
            return -1
        if self.ratio == -1.0 or self.ratio > self.neighbor_ratio:
            return +1
        return -1


def report_sort_key(report: RegionReport) -> tuple:
    """Within-level ordering of Algorithm 1's output.

    Descending score difference, ties broken by the pattern's canonical
    item tuple.  Shared by :func:`identify_ibs` and the streaming
    auditor's incremental re-scorer so both produce byte-identical report
    lists for the same data.
    """
    return (-report.difference, report.pattern.items)


def scope_levels(hierarchy: Hierarchy, scope: str) -> list[int]:
    """Hierarchy levels visited under a scope, in bottom-up order."""
    if scope == SCOPE_LATTICE:
        return list(range(hierarchy.max_level, 0, -1))
    if scope == SCOPE_LEAF:
        return [hierarchy.max_level]
    if scope == SCOPE_TOP:
        return [1]
    raise PatternError(f"unknown scope {scope!r}; choose from {SCOPES}")


def region_report(
    hierarchy: Hierarchy,
    node: HierarchyNode,
    pattern: Pattern,
    pos: int,
    neg: int,
    T: float,
    method: str = METHOD_OPTIMIZED,
    metric: str = EUCLIDEAN_UNIT,
    dataset: Dataset | None = None,
) -> RegionReport:
    """Build the imbalance evidence for one region.

    ``method='naive'`` reproduces the paper's §III-A algorithm, recounting
    every neighbour from the raw ``dataset`` (required in that mode unless a
    non-default ``metric`` forces the array-walk fallback); ``'optimized'``
    reuses the hierarchy's dominating-region counts (§III-B).
    ``'vectorized'`` batches whole nodes and is identical to
    ``'optimized'`` for a single region, so it shares that path here; use
    :func:`node_biased_reports` to benefit from the batching.
    """
    if method in (METHOD_OPTIMIZED, METHOD_VECTORIZED):
        npos, nneg = optimized_neighbor_counts(hierarchy, pattern, T)
    elif method == METHOD_NAIVE:
        if dataset is not None and metric == EUCLIDEAN_UNIT:
            npos, nneg = naive_neighbor_counts_scan(dataset, node, pattern, T)
        else:
            npos, nneg = naive_neighbor_counts(node, pattern, T, metric=metric)
    else:
        raise PatternError(f"unknown method {method!r}; choose from {METHODS}")
    ratio = imbalance_score(pos, neg)
    nratio = imbalance_score(npos, nneg)
    return RegionReport(
        pattern=pattern,
        pos=pos,
        neg=neg,
        ratio=ratio,
        neighbor_pos=npos,
        neighbor_neg=nneg,
        neighbor_ratio=nratio,
        difference=score_difference(ratio, nratio),
    )


def _vectorized_biased_reports(
    hierarchy: Hierarchy,
    node: HierarchyNode,
    tau_c: float,
    T: float,
    k: int,
    cache: dict | None = None,
) -> list[RegionReport]:
    """Biased regions of one node via whole-array evaluation.

    Computes neighbour counts, imbalance scores, the sentinel-aware score
    difference, and the Definition-5 membership test as array expressions
    over the node's count arrays; only surviving cells are materialised
    into :class:`RegionReport` objects, in the same flat cell order the
    scalar engines visit.  Produces reports identical to the per-region
    path (same integers, same IEEE-754 ratios and differences).

    Empty lattice branches are pruned *before* any broadcasting: a node
    whose largest cell is already ≤ ``k`` (cached on the node) cannot
    contain a reportable region, which at depth 10–12 — where cells vastly
    outnumber rows — skips almost every node.  ``cache`` is threaded to
    :func:`~repro.core.neighbors.vectorized_neighbor_counts` for
    scaled-ancestor reuse across the sibling nodes of a level.
    """
    if tau_c < 0:
        raise ValueError(f"tau_c must be non-negative, got {tau_c}")
    if node.max_cell_size <= k:
        return []
    pos, neg = node.pos, node.neg
    size_ok = (pos + neg) >= k + 1
    npos, nneg = vectorized_neighbor_counts(hierarchy, node, T, cache=cache)

    ratio = np.full(node.shape, RATIO_UNDEFINED)
    np.divide(pos, neg, out=ratio, where=neg > 0)
    nratio = np.full(node.shape, RATIO_UNDEFINED)
    np.divide(npos, nneg, out=nratio, where=nneg > 0)

    r_undef = neg == 0
    n_undef = nneg == 0
    difference = np.abs(ratio - nratio)
    difference = np.where(r_undef ^ n_undef, np.inf, difference)
    difference = np.where(r_undef & n_undef, 0.0, difference)

    biased = size_ok & (difference > tau_c)
    reports = []
    for flat in np.flatnonzero(biased.reshape(-1)):
        coords = np.unravel_index(int(flat), node.shape) if node.shape else ()
        coords = tuple(int(c) for c in coords)
        reports.append(
            RegionReport(
                pattern=node.pattern_of(coords),
                pos=int(pos[coords]),
                neg=int(neg[coords]),
                ratio=float(ratio[coords]),
                neighbor_pos=int(npos[coords]),
                neighbor_neg=int(nneg[coords]),
                neighbor_ratio=float(nratio[coords]),
                difference=float(difference[coords]),
            )
        )
    return reports


def node_biased_reports(
    hierarchy: Hierarchy,
    node: HierarchyNode,
    tau_c: float,
    T: float = 1.0,
    k: int = DEFAULT_MIN_SIZE,
    method: str = METHOD_OPTIMIZED,
    dataset: Dataset | None = None,
    cache: dict | None = None,
) -> list[RegionReport]:
    """Biased regions of size > ``k`` within one hierarchy node.

    The shared per-node step of Algorithm 1 (``identify_ibs``) and
    Algorithm 2 (``remedy_dataset``): under ``method='vectorized'`` the
    whole node is evaluated as array expressions; the scalar engines fall
    back to per-region :func:`region_report` calls.  Reports are returned
    in the node's flat cell order (callers sort by score difference).
    ``cache`` (vectorized only) carries scaled ancestor arrays across the
    sibling nodes of a level; it must not outlive a count mutation.
    """
    obs.count("ibs.nodes_scanned")
    obs.count("ibs.regions_scanned", node.n_cells)
    if method == METHOD_VECTORIZED:
        reports = _vectorized_biased_reports(
            hierarchy, node, tau_c, T, k, cache=cache
        )
        obs.count("ibs.biased_regions", len(reports))
        return reports
    reports = []
    for pattern, pos, neg in node.iter_regions(min_size=k + 1):
        report = region_report(
            hierarchy, node, pattern, pos, neg, T, method=method, dataset=dataset
        )
        if is_biased(report.ratio, report.neighbor_ratio, tau_c):
            reports.append(report)
    obs.count("ibs.biased_regions", len(reports))
    return reports


def identify_ibs(
    dataset: Dataset,
    tau_c: float,
    T: float = 1.0,
    k: int = DEFAULT_MIN_SIZE,
    scope: str = SCOPE_LATTICE,
    method: str = METHOD_OPTIMIZED,
    attrs: Sequence[str] | None = None,
    hierarchy: Hierarchy | None = None,
) -> list[RegionReport]:
    """Algorithm 1: find all biased regions of size > ``k``.

    Parameters
    ----------
    dataset:
        Training data (protected attributes define the intersectional space
        unless ``attrs`` overrides them).
    tau_c:
        Imbalance threshold of Definition 5.
    T:
        Neighbouring-region distance threshold of Definition 4.
    k:
        Size threshold; only regions with ``|r| > k`` are considered.
    scope / method:
        Traversal scope (lattice / leaf / top) and neighbourhood engine
        (optimized / naive / vectorized).
    hierarchy:
        Optionally a pre-built hierarchy over the same data (reused across
        calls by the remedy loop).

    Returns
    -------
    The IBS as a list of :class:`RegionReport`, ordered bottom-up by level
    then by descending score difference within a level.
    """
    with obs.span(
        "identify_ibs", method=method, scope=scope, tau_c=tau_c, T=T, k=k
    ) as ibs_span:
        if hierarchy is None:
            with obs.span("ibs.build_hierarchy"):
                hierarchy = Hierarchy(dataset, attrs=attrs)
        found: list[RegionReport] = []
        for level in scope_levels(hierarchy, scope):
            with obs.span("ibs.level", level=level) as level_span:
                level_reports: list[RegionReport] = []
                # Scaled-ancestor arrays are shared across a level's
                # sibling nodes (same coefficients, overlapping ancestors)
                # and dropped at the level boundary.
                level_cache: dict = {}
                for node in hierarchy.nodes_at_level(level):
                    level_reports.extend(
                        node_biased_reports(
                            hierarchy, node, tau_c, T=T, k=k, method=method,
                            dataset=dataset, cache=level_cache,
                        )
                    )
                level_reports.sort(key=report_sort_key)
                level_span.annotate(biased=len(level_reports))
                found.extend(level_reports)
        ibs_span.annotate(biased=len(found))
        return found


def ibs_patterns(reports: Sequence[RegionReport]) -> set[Pattern]:
    """The IBS as a set of patterns (convenience for set comparisons)."""
    return {r.pattern for r in reports}


def dominated_biased_regions(
    subgroup: Pattern, reports: Sequence[RegionReport]
) -> list[RegionReport]:
    """Biased regions dominated by ``subgroup`` (``region ⪯ subgroup``).

    Used to reproduce Fig. 3's *blue* marking: an unfair subgroup that is
    not itself in IBS but dominates significant biased regions.
    """
    return [r for r in reports if r.pattern.is_dominated_by(subgroup)]
