"""Implicit Biased Set identification (paper Problem 1 / Algorithm 1).

Traverses the hierarchy bottom-up (leaf level → level 1), keeps regions with
more than ``k`` instances, computes each region's imbalance score and its
neighbourhood's, and reports the regions whose difference exceeds ``tau_c``.
The neighbourhood engine is selectable (``naive`` per §III-A, ``optimized``
per §III-B) as is the traversal *scope* used in the evaluation's ablation:
``lattice`` (all levels — the paper's method), ``leaf`` (deepest level
only), ``top`` (level 1 only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.hierarchy import Hierarchy, HierarchyNode
from repro.core.imbalance import imbalance_score, is_biased, score_difference
from repro.core.neighbors import (
    EUCLIDEAN_UNIT,
    naive_neighbor_counts,
    naive_neighbor_counts_scan,
    optimized_neighbor_counts,
)
from repro.core.pattern import Pattern
from repro.data.dataset import Dataset
from repro.errors import PatternError

SCOPE_LATTICE = "lattice"
SCOPE_LEAF = "leaf"
SCOPE_TOP = "top"
SCOPES = (SCOPE_LATTICE, SCOPE_LEAF, SCOPE_TOP)

METHOD_NAIVE = "naive"
METHOD_OPTIMIZED = "optimized"
METHODS = (METHOD_NAIVE, METHOD_OPTIMIZED)

DEFAULT_MIN_SIZE = 30  # the paper's central-limit rule of thumb for k


@dataclass(frozen=True)
class RegionReport:
    """One region's imbalance evidence.

    ``ratio`` / ``neighbor_ratio`` follow Definition 3 (``-1`` sentinel for
    an empty negative side); ``difference`` applies the sentinel semantics of
    :func:`repro.core.imbalance.score_difference`.
    """

    pattern: Pattern
    pos: int
    neg: int
    ratio: float
    neighbor_pos: int
    neighbor_neg: int
    neighbor_ratio: float
    difference: float

    @property
    def size(self) -> int:
        return self.pos + self.neg

    @property
    def skew_direction(self) -> int:
        """+1 when the region is positively skewed vs. its neighbourhood
        (``ratio_r > ratio_rn`` — the FPR-inducing case per §V-B1), -1 when
        negatively skewed, 0 when equal/incomparable."""
        if self.difference == 0.0:
            return 0
        if self.neighbor_ratio == -1.0:
            return -1
        if self.ratio == -1.0 or self.ratio > self.neighbor_ratio:
            return +1
        return -1


def scope_levels(hierarchy: Hierarchy, scope: str) -> list[int]:
    """Hierarchy levels visited under a scope, in bottom-up order."""
    if scope == SCOPE_LATTICE:
        return list(range(hierarchy.max_level, 0, -1))
    if scope == SCOPE_LEAF:
        return [hierarchy.max_level]
    if scope == SCOPE_TOP:
        return [1]
    raise PatternError(f"unknown scope {scope!r}; choose from {SCOPES}")


def region_report(
    hierarchy: Hierarchy,
    node: HierarchyNode,
    pattern: Pattern,
    pos: int,
    neg: int,
    T: float,
    method: str = METHOD_OPTIMIZED,
    metric: str = EUCLIDEAN_UNIT,
    dataset: Dataset | None = None,
) -> RegionReport:
    """Build the imbalance evidence for one region.

    ``method='naive'`` reproduces the paper's §III-A algorithm, recounting
    every neighbour from the raw ``dataset`` (required in that mode unless a
    non-default ``metric`` forces the array-walk fallback); ``'optimized'``
    reuses the hierarchy's dominating-region counts (§III-B).
    """
    if method == METHOD_OPTIMIZED:
        npos, nneg = optimized_neighbor_counts(hierarchy, pattern, T)
    elif method == METHOD_NAIVE:
        if dataset is not None and metric == EUCLIDEAN_UNIT:
            npos, nneg = naive_neighbor_counts_scan(dataset, node, pattern, T)
        else:
            npos, nneg = naive_neighbor_counts(node, pattern, T, metric=metric)
    else:
        raise PatternError(f"unknown method {method!r}; choose from {METHODS}")
    ratio = imbalance_score(pos, neg)
    nratio = imbalance_score(npos, nneg)
    return RegionReport(
        pattern=pattern,
        pos=pos,
        neg=neg,
        ratio=ratio,
        neighbor_pos=npos,
        neighbor_neg=nneg,
        neighbor_ratio=nratio,
        difference=score_difference(ratio, nratio),
    )


def identify_ibs(
    dataset: Dataset,
    tau_c: float,
    T: float = 1.0,
    k: int = DEFAULT_MIN_SIZE,
    scope: str = SCOPE_LATTICE,
    method: str = METHOD_OPTIMIZED,
    attrs: Sequence[str] | None = None,
    hierarchy: Hierarchy | None = None,
) -> list[RegionReport]:
    """Algorithm 1: find all biased regions of size > ``k``.

    Parameters
    ----------
    dataset:
        Training data (protected attributes define the intersectional space
        unless ``attrs`` overrides them).
    tau_c:
        Imbalance threshold of Definition 5.
    T:
        Neighbouring-region distance threshold of Definition 4.
    k:
        Size threshold; only regions with ``|r| > k`` are considered.
    scope / method:
        Traversal scope (lattice / leaf / top) and neighbourhood engine
        (optimized / naive).
    hierarchy:
        Optionally a pre-built hierarchy over the same data (reused across
        calls by the remedy loop).

    Returns
    -------
    The IBS as a list of :class:`RegionReport`, ordered bottom-up by level
    then by descending score difference within a level.
    """
    if hierarchy is None:
        hierarchy = Hierarchy(dataset, attrs=attrs)
    found: list[RegionReport] = []
    for level in scope_levels(hierarchy, scope):
        level_reports: list[RegionReport] = []
        for node in hierarchy.nodes_at_level(level):
            for pattern, pos, neg in node.iter_regions(min_size=k + 1):
                report = region_report(
                    hierarchy, node, pattern, pos, neg, T,
                    method=method, dataset=dataset,
                )
                if is_biased(report.ratio, report.neighbor_ratio, tau_c):
                    level_reports.append(report)
        level_reports.sort(key=lambda r: (-r.difference, r.pattern.items))
        found.extend(level_reports)
    return found


def ibs_patterns(reports: Sequence[RegionReport]) -> set[Pattern]:
    """The IBS as a set of patterns (convenience for set comparisons)."""
    return {r.pattern for r in reports}


def dominated_biased_regions(
    subgroup: Pattern, reports: Sequence[RegionReport]
) -> list[RegionReport]:
    """Biased regions dominated by ``subgroup`` (``region ⪯ subgroup``).

    Used to reproduce Fig. 3's *blue* marking: an unfair subgroup that is
    not itself in IBS but dominates significant biased regions.
    """
    return [r for r in reports if r.pattern.is_dominated_by(subgroup)]
