"""The hierarchy of intersectional regions (paper §III, Fig. 1).

Nodes group all patterns sharing the same *deterministic attribute set*;
a node at level ``d`` holds one cell per value combination of its ``d``
attributes.  Counts of positives and negatives per cell are materialised as
``d``-dimensional numpy arrays: the leaf node is one ``bincount`` over the
dataset's joint codes, and every other node is a marginalisation (axis sum)
of a one-level-deeper node — this is the count-sharing that the optimized
and vectorized identification algorithms exploit (a dominating region's
counts are just a cell of an ancestor node's array).

Two cost-relevant properties (see ``docs/performance.md``):

* **Construction** marginalises each node from its *smallest* already-built
  one-level-deeper superset, one axis at a time, instead of summing the full
  leaf array for every one of the ``2^d`` nodes; the per-node cost decays
  geometrically with the level instead of staying at ``O(leaf cells)``.
* **Incremental updates**: :meth:`Hierarchy.apply_count_delta` folds a
  leaf-granular count change confined to one region's slice into every node
  in place, so the remedy loop can keep one hierarchy current across
  iterations instead of rebuilding it from scratch after every update.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.core.pattern import Pattern
from repro.errors import PatternError

#: Attribute bitsets are packed into a single machine word.
MAX_ATTRS = 64


class HierarchyNode:
    """One node: a deterministic attribute set plus per-cell label counts.

    ``mask`` is the node's uint64 attribute bitset (bit ``i`` set when the
    hierarchy's ``i``-th attribute is deterministic here) — the vectorized
    engine addresses dominating nodes by clearing bits from it instead of
    building ``frozenset`` keys per drop-subset.
    """

    def __init__(
        self,
        attrs: tuple[str, ...],
        shape: tuple[int, ...],
        pos: np.ndarray,
        neg: np.ndarray,
        mask: int = 0,
    ):
        self.attrs = attrs
        self.shape = shape
        self.pos = pos  # ndarray of shape `shape` (0-d for the root)
        self.neg = neg
        self.mask = mask
        self._max_cell_size: int | None = None

    @property
    def level(self) -> int:
        return len(self.attrs)

    @property
    def max_cell_size(self) -> int:
        """Largest ``|r+| + |r-|`` over this node's cells (cached).

        Lets the lattice traversal prune empty branches — deep nodes whose
        every cell is below the size threshold — without re-reducing the
        count arrays on every identification pass.  The cache is
        invalidated by :meth:`Hierarchy.apply_count_delta`.
        """
        if self._max_cell_size is None:
            self._max_cell_size = int((self.pos + self.neg).max())
        return self._max_cell_size

    @property
    def n_cells(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    def coords_of(self, pattern: Pattern) -> tuple[int, ...]:
        """Cell coordinates of ``pattern`` (must cover exactly this node)."""
        if pattern.attrs != frozenset(self.attrs):
            raise PatternError(
                f"pattern {pattern!r} does not belong to node {self.attrs}"
            )
        return tuple(pattern.value_of(a) for a in self.attrs)

    def counts_of(self, pattern: Pattern) -> tuple[int, int]:
        """``(|r+|, |r-|)`` for a pattern of this node."""
        coords = self.coords_of(pattern)
        return int(self.pos[coords]), int(self.neg[coords])

    def pattern_of(self, coords: Sequence[int]) -> Pattern:
        """Pattern for a cell coordinate tuple."""
        return Pattern(zip(self.attrs, coords))

    def iter_regions(self, min_size: int = 1) -> Iterator[tuple[Pattern, int, int]]:
        """Yield ``(pattern, |r+|, |r-|)`` for every cell with ≥ min_size rows.

        Matching Problem 1, the paper keeps regions with size strictly
        greater than ``k``; callers pass ``min_size=k+1``.
        """
        total = self.pos + self.neg
        flat = np.flatnonzero(total.reshape(-1) >= min_size)
        for f in flat:
            coords = np.unravel_index(int(f), self.shape) if self.shape else ()
            coords = tuple(int(c) for c in coords)
            yield self.pattern_of(coords), int(self.pos[coords]), int(self.neg[coords])

    @property
    def total_pos(self) -> int:
        return int(self.pos.sum())

    @property
    def total_neg(self) -> int:
        return int(self.neg.sum())


class Hierarchy:
    """All nodes over subsets of the protected attributes of a dataset.

    Parameters
    ----------
    dataset:
        The dataset whose label counts populate the nodes.
    attrs:
        Attribute universe; defaults to ``dataset.protected``.  Order fixes
        the canonical attribute order of every node.
    max_level:
        Build nodes only up to this level (inclusive); ``None`` builds the
        full lattice of ``2^|attrs|`` nodes (root included).
    """

    def __init__(
        self,
        dataset: Dataset,
        attrs: Sequence[str] | None = None,
        max_level: int | None = None,
    ):
        if attrs is None:
            attrs = dataset.protected
        attrs = tuple(attrs)
        if not attrs:
            raise PatternError("hierarchy needs at least one attribute")
        if len(attrs) > MAX_ATTRS:
            raise PatternError(
                f"hierarchy supports at most {MAX_ATTRS} attributes "
                f"(uint64 bitset), got {len(attrs)}"
            )
        dataset.schema.require_categorical(attrs)
        self.attrs = attrs
        self.max_level = len(attrs) if max_level is None else min(max_level, len(attrs))
        if self.max_level < 1:
            raise PatternError("max_level must be >= 1")

        # Leaf counts once; every other node is built by marginalising its
        # smallest already-built one-level-deeper superset a single axis at
        # a time (geometrically cheaper than summing the full leaf array for
        # each of the 2^d nodes).
        pos_flat, neg_flat, shape = dataset.region_counts(attrs)
        leaf_pos = pos_flat.reshape(shape)
        leaf_neg = neg_flat.reshape(shape)

        self._nodes: dict[frozenset[str], HierarchyNode] = {}
        self._nodes_by_mask: dict[int, HierarchyNode] = {}
        self._levels: dict[int, list[HierarchyNode]] = {}
        axis_of = {a: i for i, a in enumerate(attrs)}
        self._card = {a: shape[axis_of[a]] for a in attrs}
        self._bit_of = {a: 1 << i for i, a in enumerate(attrs)}

        # Deepest stored level comes straight from the leaf array (it *is*
        # the leaf array when max_level == len(attrs)).
        for subset in itertools.combinations(attrs, self.max_level):
            drop_axes = tuple(axis_of[a] for a in attrs if a not in subset)
            pos = leaf_pos.sum(axis=drop_axes) if drop_axes else leaf_pos
            neg = leaf_neg.sum(axis=drop_axes) if drop_axes else leaf_neg
            self._add_node(subset, np.asarray(pos), np.asarray(neg))

        for level in range(self.max_level - 1, -1, -1):
            for subset in itertools.combinations(attrs, level):
                spare = min(
                    (a for a in attrs if a not in subset),
                    key=lambda a: (self._card[a], axis_of[a]),
                )
                parent_attrs = tuple(
                    a for a in attrs if a in subset or a == spare
                )
                parent = self._nodes[frozenset(parent_attrs)]
                axis = parent_attrs.index(spare)
                self._add_node(
                    subset, parent.pos.sum(axis=axis), parent.neg.sum(axis=axis)
                )

    def _add_node(
        self, subset: tuple[str, ...], pos: np.ndarray, neg: np.ndarray
    ) -> None:
        """Register one node in the lookup dicts and the level index."""
        mask = 0
        for a in subset:
            mask |= self._bit_of[a]
        node = HierarchyNode(
            subset,
            tuple(self._card[a] for a in subset),
            np.asarray(pos),
            np.asarray(neg),
            mask=mask,
        )
        self._nodes[frozenset(subset)] = node
        self._nodes_by_mask[mask] = node
        self._levels.setdefault(len(subset), []).append(node)

    # -- lookup ----------------------------------------------------------------
    def node(self, attrs: Sequence[str] | frozenset[str]) -> HierarchyNode:
        """Node for the given deterministic attribute set."""
        key = frozenset(attrs)
        try:
            return self._nodes[key]
        except KeyError:
            raise PatternError(
                f"no hierarchy node for attribute set {sorted(key)}"
            ) from None

    def attr_bit(self, attr: str) -> int:
        """The uint64 bitset bit of one hierarchy attribute."""
        try:
            return self._bit_of[attr]
        except KeyError:
            raise PatternError(
                f"{attr!r} is not a hierarchy attribute {list(self.attrs)}"
            ) from None

    def node_by_mask(self, mask: int) -> HierarchyNode:
        """Node for an attribute bitset (the vectorized engine's hot lookup).

        A bitset probe on an int-keyed dict replaces hashing a
        ``frozenset`` of strings per drop-subset — the per-node constant
        that dominates deep-lattice traversal at Hamming budget 1.
        """
        try:
            return self._nodes_by_mask[mask]
        except KeyError:
            raise PatternError(
                f"no hierarchy node for attribute bitset {mask:#x}"
            ) from None

    def __contains__(self, attrs: object) -> bool:
        if isinstance(attrs, (frozenset, set, tuple, list)):
            return frozenset(attrs) in self._nodes
        return False

    @property
    def root(self) -> HierarchyNode:
        """The level-0 node (the entire dataset)."""
        return self._nodes[frozenset()]

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    def levels(self) -> range:
        """Levels with region nodes: 1 .. max_level."""
        return range(1, self.max_level + 1)

    def nodes_at_level(self, level: int) -> list[HierarchyNode]:
        """All nodes whose attribute set has the given size.

        Served from a level index built at construction time (no scan of
        the full node dict); nodes appear in canonical combination order.
        """
        return list(self._levels.get(level, ()))

    def iter_nodes_bottom_up(self) -> Iterator[HierarchyNode]:
        """Region nodes from the leaf level down to level 1 (Alg. 1 order)."""
        for level in range(self.max_level, 0, -1):
            yield from self.nodes_at_level(level)

    def parents(self, node: HierarchyNode) -> list[HierarchyNode]:
        """Nodes one level up (one deterministic attribute removed)."""
        out = []
        for drop in node.attrs:
            key = frozenset(node.attrs) - {drop}
            if key in self._nodes:
                out.append(self._nodes[key])
        return out

    def counts_of(self, pattern: Pattern) -> tuple[int, int]:
        """``(|r+|, |r-|)`` of an arbitrary pattern over hierarchy attrs."""
        return self.node(pattern.attrs).counts_of(pattern)

    # -- incremental updates ---------------------------------------------------
    def _free_attrs(self, pattern: Pattern) -> tuple[str, ...]:
        """Hierarchy attributes the pattern leaves non-deterministic."""
        fixed = pattern.attrs
        unknown = fixed - set(self.attrs)
        if unknown:
            raise PatternError(
                f"pattern attributes {sorted(unknown)} are not hierarchy "
                f"attributes {list(self.attrs)}"
            )
        return tuple(a for a in self.attrs if a not in fixed)

    def region_leaf_counts(
        self, dataset: Dataset, pattern: Pattern
    ) -> tuple[np.ndarray, np.ndarray]:
        """Leaf-granular ``(pos, neg)`` count arrays of ``pattern``'s slice.

        The arrays are indexed by the pattern's *free* attributes (hierarchy
        attributes it does not fix, in canonical order) and count only the
        rows of ``dataset`` matching the pattern.  Differencing two such
        blocks taken before and after a region edit yields the exact delta
        for :meth:`apply_count_delta`.
        """
        free = self._free_attrs(pattern)
        mask = dataset.mask(pattern.assignment)
        pos_flat, neg_flat, shape = dataset.region_counts(free, rows=mask)
        return pos_flat.reshape(shape), neg_flat.reshape(shape)

    def apply_count_delta(
        self, pattern: Pattern, dpos: np.ndarray, dneg: np.ndarray
    ) -> None:
        """Fold a leaf-granular count change inside ``pattern`` into all nodes.

        ``dpos``/``dneg`` are integer arrays over the pattern's free
        attributes (the shape returned by :meth:`region_leaf_counts`),
        holding per-leaf-cell changes of the positive/negative counts; cells
        outside the pattern's slice must be unchanged — which is exactly the
        contract the remedy samplers satisfy, since every row they add,
        drop, or flip matches the remedied region's pattern.  Every stored
        node is updated in place by marginalising the delta onto the node's
        axes and adding it at the pattern's fixed coordinates, leaving the
        hierarchy equal to one freshly built from the edited dataset.
        """
        free = self._free_attrs(pattern)
        want_shape = tuple(self._card[a] for a in free)
        dpos = np.asarray(dpos, dtype=np.int64).reshape(want_shape)
        dneg = np.asarray(dneg, dtype=np.int64).reshape(want_shape)
        free_axis = {a: i for i, a in enumerate(free)}
        fixed = pattern.attrs
        # Iterate the bitset index, not the frozenset one: it is the index
        # the vectorized engine's node_by_mask pruning reads, so every node
        # reachable there — ancestors included — must see both the count
        # update and the max_cell_size cache invalidation, or a branch a
        # delta emptied (or filled) would be mis-pruned on the next
        # vectorized identify.
        for node in self._nodes_by_mask.values():
            drop_axes = tuple(
                free_axis[a] for a in free if a not in node.attrs
            )
            block_pos = dpos.sum(axis=drop_axes) if drop_axes else dpos
            block_neg = dneg.sum(axis=drop_axes) if drop_axes else dneg
            idx = tuple(
                pattern.value_of(a) if a in fixed else slice(None)
                for a in node.attrs
            )
            node.pos[idx] += block_pos
            node.neg[idx] += block_neg
            node._max_cell_size = None  # counts changed; recompute lazily

    def dominating_counts(
        self, pattern: Pattern, drop: Sequence[str]
    ) -> tuple[int, int]:
        """Counts of the dominating region with ``drop`` attributes removed.

        This is the reuse path of the optimized algorithm: the dominating
        region's counts are one cell of an ancestor node's array, already
        materialised.
        """
        dominating = pattern.drop_all(drop)
        return self.node(dominating.attrs).counts_of(dominating)
