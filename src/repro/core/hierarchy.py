"""The hierarchy of intersectional regions (paper §III, Fig. 1).

Nodes group all patterns sharing the same *deterministic attribute set*;
a node at level ``d`` holds one cell per value combination of its ``d``
attributes.  Counts of positives and negatives per cell are materialised as
``d``-dimensional numpy arrays: the leaf node is one ``bincount`` over the
dataset's joint codes, and every other node is a marginalisation (axis sum)
of the leaf — this is the count-sharing that the optimized identification
algorithm exploits (a dominating region's counts are just a cell of an
ancestor node's array).
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.core.pattern import Pattern
from repro.errors import PatternError


class HierarchyNode:
    """One node: a deterministic attribute set plus per-cell label counts."""

    def __init__(
        self,
        attrs: tuple[str, ...],
        shape: tuple[int, ...],
        pos: np.ndarray,
        neg: np.ndarray,
    ):
        self.attrs = attrs
        self.shape = shape
        self.pos = pos  # ndarray of shape `shape` (0-d for the root)
        self.neg = neg

    @property
    def level(self) -> int:
        return len(self.attrs)

    @property
    def n_cells(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    def coords_of(self, pattern: Pattern) -> tuple[int, ...]:
        """Cell coordinates of ``pattern`` (must cover exactly this node)."""
        if pattern.attrs != frozenset(self.attrs):
            raise PatternError(
                f"pattern {pattern!r} does not belong to node {self.attrs}"
            )
        return tuple(pattern.value_of(a) for a in self.attrs)

    def counts_of(self, pattern: Pattern) -> tuple[int, int]:
        """``(|r+|, |r-|)`` for a pattern of this node."""
        coords = self.coords_of(pattern)
        return int(self.pos[coords]), int(self.neg[coords])

    def pattern_of(self, coords: Sequence[int]) -> Pattern:
        """Pattern for a cell coordinate tuple."""
        return Pattern(zip(self.attrs, coords))

    def iter_regions(self, min_size: int = 1) -> Iterator[tuple[Pattern, int, int]]:
        """Yield ``(pattern, |r+|, |r-|)`` for every cell with ≥ min_size rows.

        Matching Problem 1, the paper keeps regions with size strictly
        greater than ``k``; callers pass ``min_size=k+1``.
        """
        total = self.pos + self.neg
        flat = np.flatnonzero(total.reshape(-1) >= min_size)
        for f in flat:
            coords = np.unravel_index(int(f), self.shape) if self.shape else ()
            coords = tuple(int(c) for c in coords)
            yield self.pattern_of(coords), int(self.pos[coords]), int(self.neg[coords])

    @property
    def total_pos(self) -> int:
        return int(self.pos.sum())

    @property
    def total_neg(self) -> int:
        return int(self.neg.sum())


class Hierarchy:
    """All nodes over subsets of the protected attributes of a dataset.

    Parameters
    ----------
    dataset:
        The dataset whose label counts populate the nodes.
    attrs:
        Attribute universe; defaults to ``dataset.protected``.  Order fixes
        the canonical attribute order of every node.
    max_level:
        Build nodes only up to this level (inclusive); ``None`` builds the
        full lattice of ``2^|attrs|`` nodes (root included).
    """

    def __init__(
        self,
        dataset: Dataset,
        attrs: Sequence[str] | None = None,
        max_level: int | None = None,
    ):
        if attrs is None:
            attrs = dataset.protected
        attrs = tuple(attrs)
        if not attrs:
            raise PatternError("hierarchy needs at least one attribute")
        dataset.schema.require_categorical(attrs)
        self.attrs = attrs
        self.max_level = len(attrs) if max_level is None else min(max_level, len(attrs))
        if self.max_level < 1:
            raise PatternError("max_level must be >= 1")

        # Leaf counts once, then marginalise for every other node.
        pos_flat, neg_flat, shape = dataset.region_counts(attrs)
        leaf_pos = pos_flat.reshape(shape)
        leaf_neg = neg_flat.reshape(shape)

        self._nodes: dict[frozenset[str], HierarchyNode] = {}
        axis_of = {a: i for i, a in enumerate(attrs)}
        for level in range(0, self.max_level + 1):
            for subset in itertools.combinations(attrs, level):
                drop_axes = tuple(
                    axis_of[a] for a in attrs if a not in subset
                )
                pos = leaf_pos.sum(axis=drop_axes) if drop_axes else leaf_pos
                neg = leaf_neg.sum(axis=drop_axes) if drop_axes else leaf_neg
                node_shape = tuple(shape[axis_of[a]] for a in subset)
                self._nodes[frozenset(subset)] = HierarchyNode(
                    subset, node_shape, np.asarray(pos), np.asarray(neg)
                )

    # -- lookup ----------------------------------------------------------------
    def node(self, attrs: Sequence[str] | frozenset[str]) -> HierarchyNode:
        """Node for the given deterministic attribute set."""
        key = frozenset(attrs)
        try:
            return self._nodes[key]
        except KeyError:
            raise PatternError(
                f"no hierarchy node for attribute set {sorted(key)}"
            ) from None

    def __contains__(self, attrs: object) -> bool:
        if isinstance(attrs, (frozenset, set, tuple, list)):
            return frozenset(attrs) in self._nodes
        return False

    @property
    def root(self) -> HierarchyNode:
        """The level-0 node (the entire dataset)."""
        return self._nodes[frozenset()]

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    def levels(self) -> range:
        """Levels with region nodes: 1 .. max_level."""
        return range(1, self.max_level + 1)

    def nodes_at_level(self, level: int) -> list[HierarchyNode]:
        """All nodes whose attribute set has the given size."""
        return [n for key, n in self._nodes.items() if len(key) == level]

    def iter_nodes_bottom_up(self) -> Iterator[HierarchyNode]:
        """Region nodes from the leaf level down to level 1 (Alg. 1 order)."""
        for level in range(self.max_level, 0, -1):
            yield from self.nodes_at_level(level)

    def parents(self, node: HierarchyNode) -> list[HierarchyNode]:
        """Nodes one level up (one deterministic attribute removed)."""
        out = []
        for drop in node.attrs:
            key = frozenset(node.attrs) - {drop}
            if key in self._nodes:
                out.append(self._nodes[key])
        return out

    def counts_of(self, pattern: Pattern) -> tuple[int, int]:
        """``(|r+|, |r-|)`` of an arbitrary pattern over hierarchy attrs."""
        return self.node(pattern.attrs).counts_of(pattern)

    def dominating_counts(
        self, pattern: Pattern, drop: Sequence[str]
    ) -> tuple[int, int]:
        """Counts of the dominating region with ``drop`` attributes removed.

        This is the reuse path of the optimized algorithm: the dominating
        region's counts are one cell of an ancestor node's array, already
        materialised.
        """
        dominating = pattern.drop_all(drop)
        return self.node(dominating.attrs).counts_of(dominating)
