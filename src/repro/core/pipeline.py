"""High-level public API composing identify → remedy → (optionally) train.

:class:`RemedyPipeline` is the one-stop entry point a downstream user would
adopt: configure the thresholds once, then call :meth:`identify` to inspect
the Implicit Biased Set of a training set or :meth:`transform` to obtain the
remedied training data, and :meth:`fit_model` to train any of the paper's
downstream classifiers on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.hierarchy import Hierarchy
from repro.core.ibs import (
    DEFAULT_MIN_SIZE,
    METHOD_OPTIMIZED,
    METHODS,
    RegionReport,
    SCOPE_LATTICE,
    SCOPES,
    identify_ibs,
)
from repro.core.remedy import RemedyResult, remedy_dataset
from repro.core.samplers import PREFERENTIAL, TECHNIQUES
from repro.data.dataset import Dataset
from repro.errors import ExperimentError
from repro.ml.models import DatasetClassifier, make_model


@dataclass(frozen=True)
class RemedyConfig:
    """Hyperparameters of the remedy pipeline (paper defaults)."""

    tau_c: float = 0.1
    T: float = 1.0
    k: int = DEFAULT_MIN_SIZE
    technique: str = PREFERENTIAL
    scope: str = SCOPE_LATTICE
    method: str = METHOD_OPTIMIZED
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tau_c < 0:
            raise ExperimentError("tau_c must be non-negative")
        if self.T < 1:
            raise ExperimentError("T must be >= 1")
        if self.k < 0:
            raise ExperimentError("k must be non-negative")
        if self.technique not in TECHNIQUES:
            raise ExperimentError(
                f"technique must be one of {TECHNIQUES}, got {self.technique!r}"
            )
        if self.scope not in SCOPES:
            raise ExperimentError(f"scope must be one of {SCOPES}, got {self.scope!r}")
        if self.method not in METHODS:
            raise ExperimentError(
                f"method must be one of {METHODS}, got {self.method!r}"
            )


class RemedyPipeline:
    """Identify and remedy Implicit Biased Sets on training data."""

    def __init__(
        self, config: RemedyConfig | None = None, attrs: Sequence[str] | None = None
    ):
        self.config = config or RemedyConfig()
        self.attrs = tuple(attrs) if attrs is not None else None
        self._last_result: RemedyResult | None = None
        self._hierarchy_cache: tuple[Dataset, Hierarchy] | None = None

    def hierarchy_for(self, train: Dataset) -> Hierarchy:
        """The hierarchy of ``train`` under the configured attributes.

        Cached by dataset identity (datasets are immutable — every edit
        returns a new object), so ``identify`` and ``transform`` on the
        same training set share one build; after ``transform`` the cache
        holds the remedied dataset and its incrementally maintained
        hierarchy.
        """
        cached = self._hierarchy_cache
        if cached is None or cached[0] is not train:
            self._hierarchy_cache = (train, Hierarchy(train, attrs=self.attrs))
        return self._hierarchy_cache[1]

    def identify(self, train: Dataset) -> list[RegionReport]:
        """The IBS of ``train`` under the configured thresholds."""
        cfg = self.config
        return identify_ibs(
            train,
            cfg.tau_c,
            T=cfg.T,
            k=cfg.k,
            scope=cfg.scope,
            method=cfg.method,
            attrs=self.attrs,
            hierarchy=self.hierarchy_for(train),
        )

    def transform(self, train: Dataset) -> Dataset:
        """Remedied copy of ``train`` (the input is untouched)."""
        cfg = self.config
        self._last_result = remedy_dataset(
            train,
            cfg.tau_c,
            T=cfg.T,
            k=cfg.k,
            technique=cfg.technique,
            scope=cfg.scope,
            method=cfg.method,
            attrs=self.attrs,
            seed=cfg.seed,
            hierarchy=self.hierarchy_for(train),
        )
        result = self._last_result
        if result.hierarchy is not None:
            self._hierarchy_cache = (result.dataset, result.hierarchy)
        return result.dataset

    @property
    def last_result(self) -> RemedyResult:
        """Full audit of the most recent :meth:`transform` call."""
        if self._last_result is None:
            raise ExperimentError("transform() has not been called yet")
        return self._last_result

    def fit_model(
        self, train: Dataset, model: str | DatasetClassifier = "dt"
    ) -> DatasetClassifier:
        """Remedy ``train`` and fit a downstream classifier on the result.

        ``model`` is a short name (``dt``/``rf``/``lg``/``nn``) or a
        pre-built :class:`DatasetClassifier`.
        """
        remedied = self.transform(train)
        classifier = (
            make_model(model, seed=self.config.seed)
            if isinstance(model, str)
            else model
        )
        return classifier.fit(remedied)
