"""Imbalance scores (paper Definition 3) and their comparison semantics.

``ratio_r = |r+| / |r-|`` with the sentinel ``-1`` when a region has no
negatives.  The paper leaves the comparison of sentinel scores unspecified;
we pin down conservative semantics (documented in DESIGN.md):

* both scores undefined → difference 0 (two all-positive regions are not
  evidence of *relative* bias between them),
* exactly one undefined → difference ``+inf`` (an all-positive region next
  to a neighbourhood that does contain negatives is maximal skew),
* both defined → plain absolute difference.
"""

from __future__ import annotations

import math

RATIO_UNDEFINED = -1.0


def imbalance_score(pos: int, neg: int) -> float:
    """``|r+|/|r-|`` or the ``-1`` sentinel when ``|r-| == 0`` (Def. 3)."""
    if pos < 0 or neg < 0:
        raise ValueError(f"counts must be non-negative, got ({pos}, {neg})")
    if neg == 0:
        return RATIO_UNDEFINED
    return pos / neg


def is_undefined(ratio: float) -> bool:
    """True for the sentinel value of :func:`imbalance_score`."""
    return ratio == RATIO_UNDEFINED


def score_difference(ratio_r: float, ratio_rn: float) -> float:
    """``|ratio_r - ratio_rn|`` with sentinel handling (see module docs)."""
    r_undef = is_undefined(ratio_r)
    n_undef = is_undefined(ratio_rn)
    if r_undef and n_undef:
        return 0.0
    if r_undef or n_undef:
        return math.inf
    return abs(ratio_r - ratio_rn)


def is_biased(ratio_r: float, ratio_rn: float, tau_c: float) -> bool:
    """Definition 5 membership test: ``|ratio_r - ratio_rn| > tau_c``."""
    if tau_c < 0:
        raise ValueError(f"tau_c must be non-negative, got {tau_c}")
    return score_difference(ratio_r, ratio_rn) > tau_c
