"""Iterated remedy — addressing the paper's §VI limitation.

"The remedy algorithm does not guarantee achieving an optimal dataset where
the difference between the imbalance score and that of the neighboring
region is zero for all regions, as adjustments in one region may impact
others."  A single Algorithm-2 pass can therefore leave residual biased
regions.  :func:`remedy_until_converged` re-runs the pass until the IBS is
empty, stops shrinking, or a pass budget is exhausted — the natural
fixed-point extension the paper leaves as future work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.hierarchy import Hierarchy
from repro.core.ibs import METHOD_OPTIMIZED, SCOPE_LATTICE, identify_ibs
from repro.core.remedy import RemedyResult, remedy_dataset
from repro.core.samplers import PREFERENTIAL, RegionUpdate
from repro.data.dataset import Dataset
from repro.errors import RemedyError
from repro.obs import trace as obs


@dataclass(frozen=True)
class ConvergenceResult:
    """Outcome of an iterated remedy run."""

    dataset: Dataset
    passes: tuple[RemedyResult, ...]
    ibs_sizes: tuple[int, ...]  # |IBS| before pass 1, after pass 1, ...

    @property
    def n_passes(self) -> int:
        return len(self.passes)

    @property
    def converged(self) -> bool:
        """True when the final IBS is empty."""
        return self.ibs_sizes[-1] == 0

    @property
    def all_updates(self) -> tuple[RegionUpdate, ...]:
        return tuple(u for p in self.passes for u in p.updates)


def remedy_until_converged(
    dataset: Dataset,
    tau_c: float,
    T: float = 1.0,
    k: int = 30,
    technique: str = PREFERENTIAL,
    scope: str = SCOPE_LATTICE,
    method: str = METHOD_OPTIMIZED,
    attrs: Sequence[str] | None = None,
    seed: int = 0,
    max_passes: int = 5,
) -> ConvergenceResult:
    """Run Algorithm 2 repeatedly until the IBS stops shrinking.

    Stops when (a) the IBS is empty, (b) a pass makes no update, (c) the
    IBS size fails to decrease (oscillation guard), or (d) ``max_passes``
    is reached.  Each pass derives a fresh seed so repeated sampling does
    not replay the same random choices.  The hierarchy is built once and
    threaded through every pass: each :func:`remedy_dataset` call keeps it
    incrementally up to date and hands it back via
    :attr:`RemedyResult.hierarchy`, so neither the between-pass IBS checks
    nor the passes themselves rebuild it from scratch.
    """
    if max_passes < 1:
        raise RemedyError("max_passes must be >= 1")

    with obs.span(
        "remedy_until_converged", technique=technique, max_passes=max_passes
    ) as loop_span:
        current = dataset
        hierarchy = Hierarchy(current, attrs=attrs)
        passes: list[RemedyResult] = []
        sizes = [
            len(
                identify_ibs(
                    current, tau_c, T=T, k=k, scope=scope, method=method,
                    attrs=attrs, hierarchy=hierarchy,
                )
            )
        ]
        for pass_no in range(max_passes):
            if sizes[-1] == 0:
                break
            with obs.span("remedy.pass", pass_no=pass_no) as pass_span:
                result = remedy_dataset(
                    current,
                    tau_c,
                    T=T,
                    k=k,
                    technique=technique,
                    scope=scope,
                    method=method,
                    attrs=attrs,
                    seed=seed + pass_no,
                    hierarchy=hierarchy,
                )
                passes.append(result)
                current = result.dataset
                hierarchy = result.hierarchy
                sizes.append(
                    len(
                        identify_ibs(
                            current, tau_c, T=T, k=k, scope=scope, method=method,
                            attrs=attrs, hierarchy=hierarchy,
                        )
                    )
                )
                obs.count("remedy.convergence_passes")
                pass_span.annotate(
                    ibs_before=sizes[-2],
                    ibs_after=sizes[-1],
                    regions_remedied=result.n_regions_remedied,
                )
            if result.n_regions_remedied == 0 or sizes[-1] >= sizes[-2]:
                break

        obs.gauge_set("remedy.final_ibs_size", sizes[-1])
        loop_span.annotate(passes=len(passes), converged=sizes[-1] == 0)
        return ConvergenceResult(
            dataset=current, passes=tuple(passes), ibs_sizes=tuple(sizes)
        )
