"""The four pre-processing techniques of §IV-A.

Each sampler transforms the class distribution inside one biased region so
its post-update imbalance score equals the neighbourhood's (Definition 6):

* **oversampling** — duplicate uniformly-chosen minority-class rows,
* **undersampling** — drop uniformly-chosen majority-class rows,
* **preferential sampling** — duplicate top-k borderline minority rows and
  drop top-k borderline majority rows (k per Eq. 1 with ``p_r = -n_r``),
* **massaging** — flip the labels of top-k borderline majority rows.

A sampler returns the updated dataset plus a :class:`RegionUpdate` audit
record, or ``None`` when the region cannot be remedied (undefined target
ratio, or no rows available to move) — Algorithm 2 skips such regions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ibs import RegionReport
from repro.core.imbalance import is_undefined
from repro.core.pattern import Pattern
from repro.core.ranker import BorderlineRanker
from repro.data.dataset import Dataset
from repro.errors import RemedyError

OVERSAMPLING = "oversampling"
UNDERSAMPLING = "undersampling"
PREFERENTIAL = "preferential"
MASSAGING = "massaging"
TECHNIQUES = (OVERSAMPLING, UNDERSAMPLING, PREFERENTIAL, MASSAGING)

# Oversampling toward a near-zero target ratio would add unbounded rows; cap
# additions at this multiple of the region size (documented deviation — the
# paper's Eq. 1 has no finite solution when ratio_rn = 0 and |r+| > 0).
MAX_GROWTH_FACTOR = 10


@dataclass(frozen=True)
class RegionUpdate:
    """Audit record of one region's remedy."""

    pattern: Pattern
    technique: str
    added_positives: int = 0
    added_negatives: int = 0
    removed_positives: int = 0
    removed_negatives: int = 0
    flipped_to_positive: int = 0
    flipped_to_negative: int = 0

    @property
    def rows_touched(self) -> int:
        return (
            self.added_positives
            + self.added_negatives
            + self.removed_positives
            + self.removed_negatives
            + self.flipped_to_positive
            + self.flipped_to_negative
        )


def _region_rows(
    dataset: Dataset, pattern: Pattern
) -> tuple[np.ndarray, np.ndarray]:
    """(positive_indices, negative_indices) of the region's rows."""
    mask = pattern.mask(dataset)
    idx = np.flatnonzero(mask)
    pos_idx = idx[dataset.y[idx] == 1]
    neg_idx = idx[dataset.y[idx] == 0]
    return pos_idx, neg_idx


def _rounded(value: float) -> int:
    return int(round(value))


def apply_oversampling(
    dataset: Dataset, report: RegionReport, rng: np.random.Generator
) -> tuple[Dataset, RegionUpdate] | None:
    """Duplicate minority-class rows until the region hits the target ratio."""
    target = report.neighbor_ratio
    if is_undefined(target):
        return None
    pos_idx, neg_idx = _region_rows(dataset, report.pattern)
    pos, neg = len(pos_idx), len(neg_idx)
    size = pos + neg
    skew_positive = is_undefined(report.ratio) or report.ratio > target

    if skew_positive:
        # Need negatives: |r+| / (|r-| + n) = target.
        if target > 0:
            n_add = _rounded(pos / target - neg)
        else:
            n_add = MAX_GROWTH_FACTOR * size
        n_add = min(max(n_add, 0), MAX_GROWTH_FACTOR * size)
        if n_add == 0 or neg == 0:
            return None  # nothing to duplicate from
        chosen = rng.choice(neg_idx, size=n_add, replace=True)
        update = RegionUpdate(report.pattern, OVERSAMPLING, added_negatives=n_add)
    else:
        # Need positives: (|r+| + p) / |r-| = target.
        n_add = _rounded(target * neg - pos)
        n_add = min(max(n_add, 0), MAX_GROWTH_FACTOR * size)
        if n_add == 0 or pos == 0:
            return None
        chosen = rng.choice(pos_idx, size=n_add, replace=True)
        update = RegionUpdate(report.pattern, OVERSAMPLING, added_positives=n_add)
    return dataset.duplicate_rows(chosen), update


def apply_undersampling(
    dataset: Dataset, report: RegionReport, rng: np.random.Generator
) -> tuple[Dataset, RegionUpdate] | None:
    """Drop majority-class rows until the region hits the target ratio."""
    target = report.neighbor_ratio
    if is_undefined(target):
        return None
    pos_idx, neg_idx = _region_rows(dataset, report.pattern)
    pos, neg = len(pos_idx), len(neg_idx)
    skew_positive = is_undefined(report.ratio) or report.ratio > target

    if skew_positive:
        # Remove positives: (|r+| - p) / |r-| = target.
        n_rm = _rounded(pos - target * neg)
        n_rm = min(max(n_rm, 0), pos)
        if n_rm == 0:
            return None
        chosen = rng.choice(pos_idx, size=n_rm, replace=False)
        update = RegionUpdate(report.pattern, UNDERSAMPLING, removed_positives=n_rm)
    else:
        # Remove negatives: |r+| / (|r-| - n) = target.
        n_rm = _rounded(neg - pos / target) if target > 0 else 0
        n_rm = min(max(n_rm, 0), neg)
        if n_rm == 0:
            return None
        chosen = rng.choice(neg_idx, size=n_rm, replace=False)
        update = RegionUpdate(report.pattern, UNDERSAMPLING, removed_negatives=n_rm)
    return dataset.drop(chosen), update


def _preferential_k(pos: int, neg: int, target: float, skew_positive: bool) -> int:
    """Solve Eq. 1 with |p_r| = |n_r| = k for the combined move count."""
    if skew_positive:
        # (pos - k) / (neg + k) = target  =>  k = (pos - target*neg)/(1+target)
        k = (pos - target * neg) / (1.0 + target)
    else:
        # (pos + k) / (neg - k) = target  =>  k = (target*neg - pos)/(1+target)
        k = (target * neg - pos) / (1.0 + target)
    return max(_rounded(k), 0)


def apply_preferential(
    dataset: Dataset,
    report: RegionReport,
    rng: np.random.Generator,
    ranker: BorderlineRanker,
) -> tuple[Dataset, RegionUpdate] | None:
    """Swap k borderline majority rows for k duplicated borderline minority rows."""
    target = report.neighbor_ratio
    if is_undefined(target):
        return None
    pos_idx, neg_idx = _region_rows(dataset, report.pattern)
    pos, neg = len(pos_idx), len(neg_idx)
    skew_positive = is_undefined(report.ratio) or report.ratio > target
    k = _preferential_k(pos, neg, target, skew_positive)
    if k == 0:
        return None

    if skew_positive:
        remove = ranker.borderline_positives(dataset, pos_idx, k)
        duplicate = ranker.borderline_negatives(dataset, neg_idx, k, cycle=True)
        if remove.size == 0 and duplicate.size == 0:
            return None
        update = RegionUpdate(
            report.pattern,
            PREFERENTIAL,
            removed_positives=int(remove.size),
            added_negatives=int(duplicate.size),
        )
    else:
        remove = ranker.borderline_negatives(dataset, neg_idx, k)
        duplicate = ranker.borderline_positives(dataset, pos_idx, k, cycle=True)
        if remove.size == 0 and duplicate.size == 0:
            return None
        update = RegionUpdate(
            report.pattern,
            PREFERENTIAL,
            removed_negatives=int(remove.size),
            added_positives=int(duplicate.size),
        )
    # Duplicates are copies of original rows, so append before dropping.
    out = dataset.append_rows(dataset.take(duplicate)).drop(remove)
    return out, update


def apply_massaging(
    dataset: Dataset,
    report: RegionReport,
    rng: np.random.Generator,
    ranker: BorderlineRanker,
) -> tuple[Dataset, RegionUpdate] | None:
    """Flip the labels of k borderline majority-class rows."""
    target = report.neighbor_ratio
    if is_undefined(target):
        return None
    pos_idx, neg_idx = _region_rows(dataset, report.pattern)
    pos, neg = len(pos_idx), len(neg_idx)
    skew_positive = is_undefined(report.ratio) or report.ratio > target
    k = _preferential_k(pos, neg, target, skew_positive)
    if k == 0:
        return None

    y = dataset.y.copy()
    if skew_positive:
        flip = ranker.borderline_positives(dataset, pos_idx, min(k, pos))
        if flip.size == 0:
            return None
        y[flip] = 0
        update = RegionUpdate(
            report.pattern, MASSAGING, flipped_to_negative=int(flip.size)
        )
    else:
        flip = ranker.borderline_negatives(dataset, neg_idx, min(k, neg))
        if flip.size == 0:
            return None
        y[flip] = 1
        update = RegionUpdate(
            report.pattern, MASSAGING, flipped_to_positive=int(flip.size)
        )
    return dataset.with_labels(y), update


def apply_technique(
    technique: str,
    dataset: Dataset,
    report: RegionReport,
    rng: np.random.Generator,
    ranker: BorderlineRanker | None = None,
) -> tuple[Dataset, RegionUpdate] | None:
    """Dispatch by technique name (the ``alg`` input of Algorithm 2)."""
    if technique == OVERSAMPLING:
        return apply_oversampling(dataset, report, rng)
    if technique == UNDERSAMPLING:
        return apply_undersampling(dataset, report, rng)
    if technique in (PREFERENTIAL, MASSAGING):
        if ranker is None:
            raise RemedyError(f"technique {technique!r} requires a fitted ranker")
        if technique == PREFERENTIAL:
            return apply_preferential(dataset, report, rng, ranker)
        return apply_massaging(dataset, report, rng, ranker)
    raise RemedyError(f"unknown technique {technique!r}; choose from {TECHNIQUES}")
