"""Borderline-instance ranker for preferential sampling and massaging.

§IV-A: both techniques "use a ranker, such as a Naïve Bayes model, to
identify the borderline instances, which have a higher probability of
belonging to another class".  The ranker here is the mixed categorical +
Gaussian naive Bayes of :mod:`repro.ml.naive_bayes`, fitted once on the
training data; the remedy asks it for the top-k most borderline positives or
negatives inside a region.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import FitError
from repro.ml.naive_bayes import MixedNaiveBayes


class BorderlineRanker:
    """Ranks rows by their probability of belonging to the opposite class."""

    def __init__(self, alpha: float = 1.0):
        self._model = MixedNaiveBayes(alpha=alpha)
        self._fitted = False

    def fit(self, dataset: Dataset) -> "BorderlineRanker":
        if dataset.n_positive == 0 or dataset.n_negative == 0:
            raise FitError("ranker needs both classes present in the data")
        self._model.fit(dataset)
        self._fitted = True
        return self

    def positive_scores(self, dataset: Dataset) -> np.ndarray:
        """P(y=1 | x) for every row."""
        if not self._fitted:
            raise FitError("BorderlineRanker must be fitted first")
        return self._model.predict_proba(dataset)

    def borderline_positives(
        self,
        dataset: Dataset,
        candidate_indices: np.ndarray,
        k: int,
        cycle: bool = False,
    ) -> np.ndarray:
        """Top-``k`` candidates (positive rows) most likely to be negative.

        Candidates are row indices into ``dataset``; the caller guarantees
        they are positive instances.  Returns at most ``k`` indices, ranked
        most-borderline first; ties break on row index for determinism.
        With ``cycle=True`` and fewer than ``k`` candidates, the ranked list
        repeats cyclically to exactly ``k`` entries — the Kamiran–Calders
        behaviour when a class is too small to supply ``k`` distinct
        duplicates (only meaningful for duplication, never for removal).
        """
        return self._top_k(dataset, candidate_indices, k, False, cycle)

    def borderline_negatives(
        self,
        dataset: Dataset,
        candidate_indices: np.ndarray,
        k: int,
        cycle: bool = False,
    ) -> np.ndarray:
        """Top-``k`` candidates (negative rows) most likely to be positive."""
        return self._top_k(dataset, candidate_indices, k, True, cycle)

    def _top_k(
        self,
        dataset: Dataset,
        candidate_indices: np.ndarray,
        k: int,
        want_positive: bool,
        cycle: bool,
    ) -> np.ndarray:
        candidate_indices = np.asarray(candidate_indices, dtype=np.int64)
        if k <= 0 or candidate_indices.size == 0:
            return np.empty(0, dtype=np.int64)
        scores = self.positive_scores(dataset.take(candidate_indices))
        keyed = scores if want_positive else 1.0 - scores
        # Sort by descending borderline score, then ascending index.
        order = np.lexsort((candidate_indices, -keyed))
        ranked = candidate_indices[order]
        if k <= ranked.size:
            return ranked[:k]
        if not cycle:
            return ranked
        reps = int(np.ceil(k / ranked.size))
        return np.tile(ranked, reps)[:k]
