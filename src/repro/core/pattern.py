"""Region/subgroup patterns and the dominance relationship (paper §II).

A pattern is a conjunction of ``attribute = value`` assignments over
categorical attributes (Definition in §II-A); attributes not mentioned are
non-deterministic ("don't care").  ``Pattern`` is immutable and hashable so
it can key dictionaries and sets throughout the IBS machinery.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.errors import PatternError


class Pattern:
    """An immutable conjunction of ``(attribute, code)`` assignments.

    The number of deterministic elements (the paper's ``d``) is
    :attr:`level`.  The empty pattern is the level-0 region: the entire
    dataset.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, items: Iterable[tuple[str, int]] = ()):
        pairs = tuple(sorted((str(a), int(c)) for a, c in items))
        attrs = [a for a, __ in pairs]
        if len(set(attrs)) != len(attrs):
            dupes = sorted({a for a in attrs if attrs.count(a) > 1})
            raise PatternError(f"pattern assigns attributes twice: {dupes}")
        if any(c < 0 for __, c in pairs):
            raise PatternError("pattern codes must be non-negative")
        self._items = pairs
        self._hash = hash(pairs)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_labels(cls, schema: Schema, assignment: Mapping[str, str]) -> "Pattern":
        """Build from ``{attr: label}`` using the schema's domains."""
        items = []
        for name, label in assignment.items():
            col = schema[name]
            if not col.is_categorical:
                raise PatternError(f"pattern attribute {name!r} must be categorical")
            items.append((name, col.code_of(label)))
        return cls(items)

    # -- identity -------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        if not self._items:
            return "Pattern(<all>)"
        body = ", ".join(f"{a}={c}" for a, c in self._items)
        return f"Pattern({body})"

    # -- accessors ------------------------------------------------------------
    @property
    def items(self) -> tuple[tuple[str, int], ...]:
        return self._items

    @property
    def attrs(self) -> frozenset[str]:
        """The deterministic attribute set."""
        return frozenset(a for a, __ in self._items)

    @property
    def level(self) -> int:
        """Number of deterministic elements (the paper's ``d``)."""
        return len(self._items)

    @property
    def assignment(self) -> dict[str, int]:
        """``{attr: code}`` view, accepted by :meth:`Dataset.mask`."""
        return dict(self._items)

    def value_of(self, attr: str) -> int:
        """Code assigned to ``attr``; raises if non-deterministic."""
        for a, c in self._items:
            if a == attr:
                return c
        raise PatternError(f"attribute {attr!r} is non-deterministic in {self!r}")

    def describe(self, schema: Schema) -> str:
        """Human-readable form using domain labels."""
        if not self._items:
            return "(entire dataset)"
        parts = [f"{a}={schema[a].label_of(c)}" for a, c in self._items]
        return "(" + ", ".join(parts) + ")"

    # -- algebra ---------------------------------------------------------------
    def drop(self, attr: str) -> "Pattern":
        """Pattern with ``attr`` made non-deterministic (one level up)."""
        if attr not in self.attrs:
            raise PatternError(f"attribute {attr!r} is not deterministic in {self!r}")
        return Pattern((a, c) for a, c in self._items if a != attr)

    def drop_all(self, attrs: Iterable[str]) -> "Pattern":
        """Pattern with every attribute in ``attrs`` made non-deterministic."""
        attrs = set(attrs)
        missing = attrs - self.attrs
        if missing:
            raise PatternError(
                f"attributes {sorted(missing)} are not deterministic in {self!r}"
            )
        return Pattern((a, c) for a, c in self._items if a not in attrs)

    def with_value(self, attr: str, code: int) -> "Pattern":
        """Pattern with ``attr`` (re)assigned to ``code``."""
        items = [(a, c) for a, c in self._items if a != attr]
        items.append((attr, int(code)))
        return Pattern(items)

    def is_dominated_by(self, other: "Pattern") -> bool:
        """Dominance (Definition 2): ``self ⪯ other``.

        True when ``other``'s pattern is obtained from ``self``'s by turning
        some deterministic elements non-deterministic — i.e. ``other``'s
        assignments are a subset of ``self``'s.
        """
        return set(other._items) <= set(self._items)

    def dominates(self, other: "Pattern") -> bool:
        """True when ``other ⪯ self`` (self is the more general subgroup)."""
        return other.is_dominated_by(self)

    def hamming_distance(self, other: "Pattern") -> int:
        """Number of differing value assignments.

        Defined only between patterns over the same deterministic attribute
        set — regions in different dimensions "are not directly comparable"
        (§II-B) — and raises otherwise.
        """
        if self.attrs != other.attrs:
            raise PatternError(
                f"distance undefined between different attribute sets "
                f"{sorted(self.attrs)} vs {sorted(other.attrs)}"
            )
        theirs = dict(other._items)
        return sum(1 for a, c in self._items if theirs[a] != c)

    # -- dataset hooks -----------------------------------------------------------
    def mask(self, dataset: Dataset):
        """Boolean row mask of this pattern over ``dataset``."""
        return dataset.mask(self.assignment)

    def counts(self, dataset: Dataset) -> tuple[int, int]:
        """``(|r+|, |r-|)`` of this region in ``dataset``."""
        return dataset.counts(self.assignment)

    def support(self, dataset: Dataset) -> float:
        """Fraction of the dataset's rows matched by the pattern."""
        if dataset.n_rows == 0:
            return 0.0
        return float(self.mask(dataset).mean())
