"""JSON serialisation of IBS findings and remedy audit trails.

Regulated deployments need a durable record of *what the preprocessing did
to the data*: which regions were deemed biased, under which thresholds, and
exactly how many rows each technique added / removed / relabelled.  These
helpers serialise :class:`~repro.core.ibs.RegionReport`,
:class:`~repro.core.samplers.RegionUpdate` and
:class:`~repro.core.remedy.RemedyResult` to plain JSON and back (pattern
codes are stored with their attribute names; schema labels are not needed
to round-trip).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.core.ibs import RegionReport
from repro.core.pattern import Pattern
from repro.core.remedy import RemedyResult
from repro.core.samplers import RegionUpdate
from repro.data.io import atomic_write_json
from repro.errors import DataError


def pattern_to_dict(pattern: Pattern) -> dict:
    """Serialise a :class:`Pattern` to a JSON-ready dict."""
    return {"items": [[attr, code] for attr, code in pattern.items]}


def pattern_from_dict(payload: dict) -> Pattern:
    """Rebuild a :class:`Pattern` from :func:`pattern_to_dict` output."""
    try:
        return Pattern((str(a), int(c)) for a, c in payload["items"])
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"malformed pattern payload: {payload!r}") from exc


def report_to_dict(report: RegionReport) -> dict:
    """Serialise a :class:`RegionReport` to a JSON-ready dict."""
    return {
        "pattern": pattern_to_dict(report.pattern),
        "pos": report.pos,
        "neg": report.neg,
        "ratio": report.ratio,
        "neighbor_pos": report.neighbor_pos,
        "neighbor_neg": report.neighbor_neg,
        "neighbor_ratio": report.neighbor_ratio,
        "difference": report.difference,
    }


def report_from_dict(payload: dict) -> RegionReport:
    """Rebuild a :class:`RegionReport` from :func:`report_to_dict` output."""
    try:
        return RegionReport(
            pattern=pattern_from_dict(payload["pattern"]),
            pos=int(payload["pos"]),
            neg=int(payload["neg"]),
            ratio=float(payload["ratio"]),
            neighbor_pos=int(payload["neighbor_pos"]),
            neighbor_neg=int(payload["neighbor_neg"]),
            neighbor_ratio=float(payload["neighbor_ratio"]),
            difference=float(payload["difference"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"malformed region report payload: {payload!r}") from exc


def update_to_dict(update: RegionUpdate) -> dict:
    """Serialise a :class:`RegionUpdate` to a JSON-ready dict."""
    return {
        "pattern": pattern_to_dict(update.pattern),
        "technique": update.technique,
        "added_positives": update.added_positives,
        "added_negatives": update.added_negatives,
        "removed_positives": update.removed_positives,
        "removed_negatives": update.removed_negatives,
        "flipped_to_positive": update.flipped_to_positive,
        "flipped_to_negative": update.flipped_to_negative,
    }


def update_from_dict(payload: dict) -> RegionUpdate:
    """Rebuild a :class:`RegionUpdate` from :func:`update_to_dict` output."""
    try:
        return RegionUpdate(
            pattern=pattern_from_dict(payload["pattern"]),
            technique=str(payload["technique"]),
            added_positives=int(payload.get("added_positives", 0)),
            added_negatives=int(payload.get("added_negatives", 0)),
            removed_positives=int(payload.get("removed_positives", 0)),
            removed_negatives=int(payload.get("removed_negatives", 0)),
            flipped_to_positive=int(payload.get("flipped_to_positive", 0)),
            flipped_to_negative=int(payload.get("flipped_to_negative", 0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DataError(f"malformed region update payload: {payload!r}") from exc


def audit_trail_to_dict(result: RemedyResult) -> dict:
    """Full JSON-serialisable audit trail of one remedy run."""
    return {
        "n_rows_after": result.dataset.n_rows,
        "initial_ibs": [report_to_dict(r) for r in result.initial_ibs],
        "updates": [update_to_dict(u) for u in result.updates],
        "rows_touched": result.rows_touched,
    }


def write_audit_trail(result: RemedyResult, path: str | Path) -> None:
    """Persist a remedy's audit trail as JSON (atomically)."""
    atomic_write_json(path, audit_trail_to_dict(result))


def read_audit_trail(
    path: str | Path,
) -> tuple[list[RegionReport], list[RegionUpdate]]:
    """Load ``(initial_ibs, updates)`` from a persisted audit trail."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise DataError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise DataError(f"{path} does not contain an audit-trail object")
    reports = [report_from_dict(r) for r in payload.get("initial_ibs", ())]
    updates = [update_from_dict(u) for u in payload.get("updates", ())]
    return reports, updates
