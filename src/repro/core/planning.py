"""Remedy planning: preview the cost of a parameter setting without applying.

Choosing ``tau_c`` and ``T`` is the practitioner's main knob (the paper
spends Figs. 7–8 on it).  :func:`plan_remedies` sweeps a grid and reports,
for each setting, how many regions would be flagged and an *estimate* of the
rows the remedy would touch (the Definition-6 move count per region, summed)
— all read-only, so the sweep is cheap even on large data.

The estimate is a deliberate **upper bound**: Algorithm 2 re-identifies
regions after every update, and fixing a deep region usually also fixes the
more general regions that dominate it, so the static per-region sum
double-counts across lattice levels (typically by a factor of a few).  The
*ranking* of settings is preserved — which is what a planning sweep is for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.ibs import RegionReport, identify_ibs
from repro.core.imbalance import is_undefined
from repro.core.samplers import _preferential_k
from repro.data.dataset import Dataset
from repro.errors import RemedyError


@dataclass(frozen=True)
class RemedyPlan:
    """Projected footprint of one (tau_c, T) setting."""

    tau_c: float
    T: float
    n_regions: int
    estimated_rows_touched: int
    fraction_of_dataset: float

    def row(self) -> tuple[object, ...]:
        return (
            self.tau_c,
            self.T,
            self.n_regions,
            self.estimated_rows_touched,
            self.fraction_of_dataset,
        )


def estimate_rows_touched(reports: Sequence[RegionReport]) -> int:
    """Sum of Definition-6 move counts over a set of region reports.

    Uses the preferential-sampling ``k`` (one removal + one duplication per
    unit) as the canonical per-region cost; uniform samplers move a similar
    order of rows.  Regions with undefined targets contribute zero (they
    would be skipped by the remedy).
    """
    total = 0
    for report in reports:
        target = report.neighbor_ratio
        if is_undefined(target):
            continue
        skew_positive = is_undefined(report.ratio) or report.ratio > target
        total += 2 * _preferential_k(report.pos, report.neg, target, skew_positive)
    return total


def plan_remedies(
    dataset: Dataset,
    tau_grid: Sequence[float] = (0.1, 0.3, 0.5),
    T_values: Sequence[float] | None = None,
    k: int = 30,
    scope: str = "lattice",
) -> list[RemedyPlan]:
    """Read-only sweep over (tau_c, T): what would each setting cost?

    Returns plans ordered by the grid, each with the flagged-region count
    and the estimated touched-row total (as a fraction of the dataset too,
    which is the quantity that predicts the accuracy cost).  Estimates are
    conservative upper bounds — see the module docstring.
    """
    if dataset.n_rows == 0:
        raise RemedyError("cannot plan on an empty dataset")
    if T_values is None:
        T_values = (1.0, float(len(dataset.protected) or 1))
    plans = []
    for T in T_values:
        for tau_c in tau_grid:
            reports = identify_ibs(dataset, tau_c, T=T, k=k, scope=scope)
            touched = estimate_rows_touched(reports)
            plans.append(
                RemedyPlan(
                    tau_c=float(tau_c),
                    T=float(T),
                    n_regions=len(reports),
                    estimated_rows_touched=touched,
                    fraction_of_dataset=touched / dataset.n_rows,
                )
            )
    return plans


def plan_table(plans: Sequence[RemedyPlan]) -> str:
    """Render plans as a text table."""
    from repro.experiments.reporting import format_table

    return format_table(
        ("tau_c", "T", "regions", "est. rows touched", "fraction"),
        [p.row() for p in plans],
        precision=3,
        title="Remedy plans (read-only estimates)",
    )
