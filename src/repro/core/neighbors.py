"""Neighbouring-region counting (paper Definition 4, §III-A/B).

Two interchangeable engines compute ``(|r_n+|, |r_n-|)`` — the label counts
of the union of regions within distance ``T`` of a region ``r``:

* :func:`naive_neighbor_counts` enumerates every neighbouring cell and sums
  its counts, exactly the §III-A procedure with its ``(c-1)·d·T`` cost;
* :func:`optimized_neighbor_counts` combines cached *dominating-region*
  counts (cells of ancestor hierarchy nodes) with inclusion–exclusion
  coefficients, the §III-B optimisation that touches only ``O(d^T)``
  pre-aggregated regions.  For ``T=1`` it reduces to the paper's formula
  ``ratio_rn = (Σ_{R_d}|r_k+| − |R_d|·|r+|) / (Σ_{R_d}|r_k-| − |R_d|·|r-|)``.

Distance semantics: attribute values are one unit apart, so a region
differing from ``r`` in ``j`` attributes lies at Euclidean distance
``sqrt(j)``; a threshold ``T`` therefore admits differences in at most
``floor(T²)`` attributes (the *Hamming budget*).  ``T = 1`` gives budget 1
(Example 5); ``T = |X|`` covers the whole node.  An optional per-attribute
*ordinal* metric (``|code_i − code_j|`` per attribute) is supported by the
naive engine for ordered domains — the refinement §II-B suggests.
"""

from __future__ import annotations

import itertools
from math import comb, floor, sqrt
from typing import Iterator

from repro.core.hierarchy import Hierarchy, HierarchyNode
from repro.core.pattern import Pattern
from repro.errors import PatternError

EUCLIDEAN_UNIT = "euclidean-unit"
ORDINAL = "ordinal"
METRICS = (EUCLIDEAN_UNIT, ORDINAL)


def hamming_budget(T: float, d: int) -> int:
    """Max number of differing attributes admitted by threshold ``T``.

    ``floor(T²)`` clamped to ``[1, d]``; a threshold below 1 admits no
    neighbour at all and is rejected.
    """
    if T < 1:
        raise PatternError(f"distance threshold T must be >= 1, got {T}")
    if d < 1:
        raise PatternError("region must have at least one deterministic attribute")
    return max(1, min(int(floor(T * T + 1e-9)), d))


def iter_neighbor_cells(
    node: HierarchyNode, coords: tuple[int, ...], budget: int
) -> Iterator[tuple[int, ...]]:
    """Yield coordinates of every cell differing from ``coords`` in 1..budget axes."""
    d = len(coords)
    for n_diff in range(1, budget + 1):
        for axes in itertools.combinations(range(d), n_diff):
            choices = [
                [v for v in range(node.shape[ax]) if v != coords[ax]] for ax in axes
            ]
            for replacement in itertools.product(*choices):
                cell = list(coords)
                for ax, v in zip(axes, replacement):
                    cell[ax] = v
                yield tuple(cell)


def naive_neighbor_counts(
    node: HierarchyNode,
    pattern: Pattern,
    T: float = 1.0,
    metric: str = EUCLIDEAN_UNIT,
) -> tuple[int, int]:
    """Neighbourhood counts by explicit cell enumeration over node arrays.

    This is the semantic reference used by property tests to validate the
    optimized engine; for the paper's §III-A *cost model* (each neighbour is
    counted from the raw data) see :func:`naive_neighbor_counts_scan`.

    With ``metric='ordinal'`` the per-attribute distance is the absolute
    code difference instead of the 0/1 unit distance, and a cell is a
    neighbour when the full Euclidean distance over all attributes is ≤ T.
    """
    if metric not in METRICS:
        raise PatternError(f"unknown metric {metric!r}; choose from {METRICS}")
    coords = node.coords_of(pattern)
    d = len(coords)
    pos = neg = 0
    if metric == EUCLIDEAN_UNIT:
        budget = hamming_budget(T, d)
        for cell in iter_neighbor_cells(node, coords, budget):
            pos += int(node.pos[cell])
            neg += int(node.neg[cell])
        return pos, neg

    # Ordinal metric: full scan of the node's cells with the refined distance.
    for cell in itertools.product(*(range(s) for s in node.shape)):
        if cell == coords:
            continue
        dist = sqrt(sum((a - b) ** 2 for a, b in zip(cell, coords)))
        if dist <= T + 1e-9:
            pos += int(node.pos[cell])
            neg += int(node.neg[cell])
    return pos, neg


def naive_neighbor_counts_scan(
    dataset,
    node: HierarchyNode,
    pattern: Pattern,
    T: float = 1.0,
) -> tuple[int, int]:
    """The paper's naive algorithm (§III-A): count each neighbour from data.

    For every one of the ``(c-1)·d·T`` neighbouring regions, the counts
    ``|r_ni+|`` and ``|r_ni-|`` are computed by scanning the dataset with the
    neighbour's pattern mask — no reuse of pre-aggregated counts.  This is
    the cost profile the optimized algorithm is benchmarked against in
    Fig. 9a/9c.
    """
    coords = node.coords_of(pattern)
    budget = hamming_budget(T, len(coords))
    pos = neg = 0
    for cell in iter_neighbor_cells(node, coords, budget):
        neighbor = node.pattern_of(cell)
        p, n = dataset.counts(neighbor.assignment)
        pos += p
        neg += n
    return pos, neg


def inclusion_exclusion_coefficients(d: int, budget: int) -> list[int]:
    """Coefficient of Σ_{|S|=j} dom(S) in the neighbourhood-count expansion.

    The union of cells differing in 1..budget attributes satisfies
    ``N = Σ_j coeff(j) · Σ_{|S|=j} dom(S)`` where ``dom(S)`` is the count of
    the dominating region with attribute set ``S`` freed (``dom(∅)`` is the
    region itself).  Derivation: Möbius inversion of exact-difference cell
    counts over the dominance lattice;
    ``coeff(j) = Σ_{s=max(j,1)}^{budget} (−1)^{s−j} · C(d−j, s−j)``.
    For ``budget=1`` this yields ``coeff(0) = −d, coeff(1) = 1`` — the
    paper's ``Σ dom − |R_d|·r`` formula.
    """
    coeffs = []
    for j in range(0, budget + 1):
        c = sum(
            (-1) ** (s - j) * comb(d - j, s - j)
            for s in range(max(j, 1), budget + 1)
        )
        coeffs.append(c)
    return coeffs


def optimized_neighbor_counts(
    hierarchy: Hierarchy,
    pattern: Pattern,
    T: float = 1.0,
) -> tuple[int, int]:
    """Neighbourhood counts from dominating-region counts (§III-B).

    Requires the hierarchy to contain every node up to ``budget`` levels
    above the pattern's node (always true for a full hierarchy).
    """
    d = pattern.level
    budget = hamming_budget(T, d)
    coeffs = inclusion_exclusion_coefficients(d, budget)
    attrs = sorted(pattern.attrs)

    pos = neg = 0
    for j in range(0, budget + 1):
        c = coeffs[j]
        if c == 0:
            continue
        for drop in itertools.combinations(attrs, j):
            dp, dn = hierarchy.dominating_counts(pattern, drop)
            pos += c * dp
            neg += c * dn
    return pos, neg
