"""Neighbouring-region counting (paper Definition 4, §III-A/B).

Three interchangeable engines compute ``(|r_n+|, |r_n-|)`` — the label
counts of the union of regions within distance ``T`` of a region ``r``:

* :func:`naive_neighbor_counts` enumerates every neighbouring cell and sums
  its counts, exactly the §III-A procedure with its ``(c-1)·d·T`` cost;
* :func:`optimized_neighbor_counts` combines cached *dominating-region*
  counts (cells of ancestor hierarchy nodes) with inclusion–exclusion
  coefficients, the §III-B optimisation that touches only ``O(d^T)``
  pre-aggregated regions.  For ``T=1`` it reduces to the paper's formula
  ``ratio_rn = (Σ_{R_d}|r_k+| − |R_d|·|r+|) / (Σ_{R_d}|r_k-| − |R_d|·|r-|)``;
* :func:`vectorized_neighbor_counts` evaluates the same inclusion–exclusion
  sum for **all cells of a node at once**: the dominating counts of every
  cell with drop-set ``S`` form the ancestor node's whole array, re-expanded
  over the dropped axes and broadcast back to the node's shape, so one
  ``C(d, ≤budget)``-term sum of whole-array operations replaces
  ``|cells| × C(d, ≤budget)`` scalar lookups (see ``docs/performance.md``).

Distance semantics: attribute values are one unit apart, so a region
differing from ``r`` in ``j`` attributes lies at Euclidean distance
``sqrt(j)``; a threshold ``T`` therefore admits differences in at most
``floor(T²)`` attributes (the *Hamming budget*).  ``T = 1`` gives budget 1
(Example 5); ``T = |X|`` covers the whole node.  An optional per-attribute
*ordinal* metric (``|code_i − code_j|`` per attribute) is supported by the
naive engine for ordered domains — the refinement §II-B suggests.
"""

from __future__ import annotations

import itertools
from math import comb, floor
from typing import Iterator

import numpy as np

from repro.core.hierarchy import Hierarchy, HierarchyNode
from repro.core.pattern import Pattern
from repro.errors import PatternError

EUCLIDEAN_UNIT = "euclidean-unit"
ORDINAL = "ordinal"
METRICS = (EUCLIDEAN_UNIT, ORDINAL)


def hamming_budget(T: float, d: int) -> int:
    """Max number of differing attributes admitted by threshold ``T``.

    ``floor(T²)`` clamped to ``[1, d]``; a threshold below 1 admits no
    neighbour at all and is rejected.
    """
    if T < 1:
        raise PatternError(f"distance threshold T must be >= 1, got {T}")
    if d < 1:
        raise PatternError("region must have at least one deterministic attribute")
    return max(1, min(int(floor(T * T + 1e-9)), d))


def iter_neighbor_cells(
    node: HierarchyNode, coords: tuple[int, ...], budget: int
) -> Iterator[tuple[int, ...]]:
    """Yield coordinates of every cell differing from ``coords`` in 1..budget axes."""
    d = len(coords)
    for n_diff in range(1, budget + 1):
        for axes in itertools.combinations(range(d), n_diff):
            choices = [
                [v for v in range(node.shape[ax]) if v != coords[ax]] for ax in axes
            ]
            for replacement in itertools.product(*choices):
                cell = list(coords)
                for ax, v in zip(axes, replacement):
                    cell[ax] = v
                yield tuple(cell)


def naive_neighbor_counts(
    node: HierarchyNode,
    pattern: Pattern,
    T: float = 1.0,
    metric: str = EUCLIDEAN_UNIT,
) -> tuple[int, int]:
    """Neighbourhood counts by explicit cell enumeration over node arrays.

    This is the semantic reference used by property tests to validate the
    optimized engine; for the paper's §III-A *cost model* (each neighbour is
    counted from the raw data) see :func:`naive_neighbor_counts_scan`.

    With ``metric='ordinal'`` the per-attribute distance is the absolute
    code difference instead of the 0/1 unit distance, and a cell is a
    neighbour when the full Euclidean distance over all attributes is ≤ T.
    """
    if metric not in METRICS:
        raise PatternError(f"unknown metric {metric!r}; choose from {METRICS}")
    coords = node.coords_of(pattern)
    d = len(coords)
    pos = neg = 0
    if metric == EUCLIDEAN_UNIT:
        budget = hamming_budget(T, d)
        for cell in iter_neighbor_cells(node, coords, budget):
            pos += int(node.pos[cell])
            neg += int(node.neg[cell])
        return pos, neg

    # Ordinal metric: a broadcast distance grid over cell coordinates
    # replaces the Python full scan — per-axis squared code offsets are
    # outer-added into one d-dimensional squared-distance array.
    dist2 = np.zeros(node.shape, dtype=np.int64)
    for ax, (c, size) in enumerate(zip(coords, node.shape)):
        offsets = (np.arange(size, dtype=np.int64) - c) ** 2
        dist2 = dist2 + offsets.reshape(
            tuple(size if i == ax else 1 for i in range(d))
        )
    within = np.sqrt(dist2.astype(np.float64)) <= T + 1e-9
    within[coords] = False  # the region itself is not its own neighbour
    return int(node.pos[within].sum()), int(node.neg[within].sum())


def naive_neighbor_counts_scan(
    dataset,
    node: HierarchyNode,
    pattern: Pattern,
    T: float = 1.0,
) -> tuple[int, int]:
    """The paper's naive algorithm (§III-A): count each neighbour from data.

    For every one of the ``(c-1)·d·T`` neighbouring regions, the counts
    ``|r_ni+|`` and ``|r_ni-|`` are computed by scanning the dataset with the
    neighbour's pattern mask — no reuse of pre-aggregated counts.  This is
    the cost profile the optimized algorithm is benchmarked against in
    Fig. 9a/9c.
    """
    coords = node.coords_of(pattern)
    budget = hamming_budget(T, len(coords))
    pos = neg = 0
    for cell in iter_neighbor_cells(node, coords, budget):
        neighbor = node.pattern_of(cell)
        p, n = dataset.counts(neighbor.assignment)
        pos += p
        neg += n
    return pos, neg


def inclusion_exclusion_coefficients(d: int, budget: int) -> list[int]:
    """Coefficient of Σ_{|S|=j} dom(S) in the neighbourhood-count expansion.

    The union of cells differing in 1..budget attributes satisfies
    ``N = Σ_j coeff(j) · Σ_{|S|=j} dom(S)`` where ``dom(S)`` is the count of
    the dominating region with attribute set ``S`` freed (``dom(∅)`` is the
    region itself).  Derivation: Möbius inversion of exact-difference cell
    counts over the dominance lattice;
    ``coeff(j) = Σ_{s=max(j,1)}^{budget} (−1)^{s−j} · C(d−j, s−j)``.
    For ``budget=1`` this yields ``coeff(0) = −d, coeff(1) = 1`` — the
    paper's ``Σ dom − |R_d|·r`` formula.
    """
    coeffs = []
    for j in range(0, budget + 1):
        c = sum(
            (-1) ** (s - j) * comb(d - j, s - j)
            for s in range(max(j, 1), budget + 1)
        )
        coeffs.append(c)
    return coeffs


def optimized_neighbor_counts(
    hierarchy: Hierarchy,
    pattern: Pattern,
    T: float = 1.0,
) -> tuple[int, int]:
    """Neighbourhood counts from dominating-region counts (§III-B).

    Requires the hierarchy to contain every node up to ``budget`` levels
    above the pattern's node (always true for a full hierarchy).
    """
    d = pattern.level
    budget = hamming_budget(T, d)
    coeffs = inclusion_exclusion_coefficients(d, budget)
    attrs = sorted(pattern.attrs)

    pos = neg = 0
    for j in range(0, budget + 1):
        c = coeffs[j]
        if c == 0:
            continue
        for drop in itertools.combinations(attrs, j):
            dp, dn = hierarchy.dominating_counts(pattern, drop)
            pos += c * dp
            neg += c * dn
    return pos, neg


def vectorized_neighbor_counts(
    hierarchy: Hierarchy,
    node: HierarchyNode,
    T: float = 1.0,
    cache: dict | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Neighbourhood counts of **every cell** of ``node`` as two arrays.

    Evaluates the same inclusion–exclusion expansion as
    :func:`optimized_neighbor_counts`, but per drop-subset ``S`` the
    dominating counts of all cells at once are the ancestor node's array
    with size-1 axes re-inserted at ``S``'s positions and broadcast back to
    ``node.shape``.  The whole node therefore costs ``Σ_{j≤budget} C(d, j)``
    array additions instead of that many scalar lookups *per cell*.

    Deep-lattice fast paths (all byte-identical to the plain expansion,
    since int64 accumulation is exact in any order):

    * dominating nodes are addressed by **uint64 bitset** (clearing the
      dropped axes' bits from ``node.mask``) instead of hashing a
      ``frozenset`` of attribute names per drop-subset;
    * coefficients ``±1`` add/subtract the ancestor's array view directly,
      skipping the scaling multiply — at Hamming budget 1 that covers
      every ``j ≥ 1`` term;
    * other coefficients scale each ancestor array **once per**
      ``(ancestor, coefficient)`` into ``cache`` (thread one dict across
      the sibling nodes of a level, as :func:`repro.core.ibs.identify_ibs`
      does): siblings re-expand the shared scaled array as an O(1) view
      instead of re-multiplying it per node.

    Returns ``(pos, neg)`` int64 arrays of ``node.shape``; entry ``c`` is
    exactly ``optimized_neighbor_counts(hierarchy, node.pattern_of(c), T)``.
    Requires the hierarchy to contain every node up to ``budget`` levels
    above ``node`` (always true for a full hierarchy) and ``node`` to be a
    region node (level ≥ 1).
    """
    d = node.level
    budget = hamming_budget(T, d)
    coeffs = inclusion_exclusion_coefficients(d, budget)
    bits = tuple(hierarchy.attr_bit(a) for a in node.attrs)

    pos = np.zeros(node.shape, dtype=np.int64)
    neg = np.zeros(node.shape, dtype=np.int64)
    for j in range(0, budget + 1):
        c = coeffs[j]
        if c == 0:
            continue
        for axes in itertools.combinations(range(d), j):
            drop_mask = 0
            for ax in axes:
                drop_mask |= bits[ax]
            dom = hierarchy.node_by_mask(node.mask ^ drop_mask)
            if c == 1:
                pos += np.expand_dims(dom.pos, axis=axes)
                neg += np.expand_dims(dom.neg, axis=axes)
            elif c == -1:
                pos -= np.expand_dims(dom.pos, axis=axes)
                neg -= np.expand_dims(dom.neg, axis=axes)
            else:
                scaled = None if cache is None else cache.get((dom.mask, c))
                if scaled is None:
                    scaled = (c * dom.pos, c * dom.neg)
                    if cache is not None:
                        cache[(dom.mask, c)] = scaled
                pos += np.expand_dims(scaled[0], axis=axes)
                neg += np.expand_dims(scaled[1], axis=axes)
    return pos, neg
