"""Dataset remedy (paper Problem 2 / Algorithm 2).

Walks the hierarchy node by node (bottom-up, as Algorithm 1 does), at each
node re-identifies the biased regions *on the current, partially remedied
dataset*, and applies the chosen pre-processing technique to each.  The
paper notes this is iterative because "adjusting the class distribution for
specific regions will impact the imbalance score of all regions that either
dominate or are dominated by them" — hence the hierarchy is rebuilt whenever
an update has dirtied the counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.hierarchy import Hierarchy
from repro.core.ibs import (
    METHOD_OPTIMIZED,
    RegionReport,
    SCOPE_LATTICE,
    identify_ibs,
    region_report,
    scope_levels,
)
from repro.core.imbalance import is_biased
from repro.core.ranker import BorderlineRanker
from repro.core.samplers import (
    PREFERENTIAL,
    MASSAGING,
    TECHNIQUES,
    RegionUpdate,
    apply_technique,
)
from repro.data.dataset import Dataset
from repro.errors import RemedyError


@dataclass(frozen=True)
class RemedyResult:
    """Outcome of one remedy run."""

    dataset: Dataset
    updates: tuple[RegionUpdate, ...] = field(default_factory=tuple)
    initial_ibs: tuple[RegionReport, ...] = field(default_factory=tuple)

    @property
    def n_regions_remedied(self) -> int:
        return len(self.updates)

    @property
    def rows_touched(self) -> int:
        return sum(u.rows_touched for u in self.updates)


def remedy_dataset(
    dataset: Dataset,
    tau_c: float,
    T: float = 1.0,
    k: int = 30,
    technique: str = PREFERENTIAL,
    scope: str = SCOPE_LATTICE,
    method: str = METHOD_OPTIMIZED,
    attrs: Sequence[str] | None = None,
    seed: int = 0,
) -> RemedyResult:
    """Algorithm 2: remedy every biased region of the dataset.

    Parameters mirror :func:`repro.core.ibs.identify_ibs`; ``technique`` is
    one of :data:`repro.core.samplers.TECHNIQUES` and ``seed`` drives the
    random row selection of the sampling techniques.

    Returns a :class:`RemedyResult` whose ``dataset`` is the remedied copy
    (the input is never modified), ``updates`` the per-region audit records,
    and ``initial_ibs`` the IBS found on the *original* data for reference.
    """
    if technique not in TECHNIQUES:
        raise RemedyError(f"unknown technique {technique!r}; choose from {TECHNIQUES}")
    if dataset.n_rows == 0:
        raise RemedyError("cannot remedy an empty dataset")
    rng = np.random.default_rng(seed)

    ranker: BorderlineRanker | None = None
    if technique in (PREFERENTIAL, MASSAGING):
        ranker = BorderlineRanker().fit(dataset)

    initial_ibs = tuple(
        identify_ibs(
            dataset, tau_c, T=T, k=k, scope=scope, method=method, attrs=attrs
        )
    )

    current = dataset
    hierarchy = Hierarchy(current, attrs=attrs)
    dirty = False
    node_keys = [
        frozenset(node.attrs)
        for level in scope_levels(hierarchy, scope)
        for node in hierarchy.nodes_at_level(level)
    ]

    updates: list[RegionUpdate] = []
    for key in node_keys:
        if dirty:
            hierarchy = Hierarchy(current, attrs=attrs)
            dirty = False
        node = hierarchy.node(key)
        # Identify this node's biased regions on the current data (line 3).
        biased: list[RegionReport] = []
        for pattern, pos, neg in node.iter_regions(min_size=k + 1):
            report = region_report(
                hierarchy, node, pattern, pos, neg, T,
                method=method, dataset=current,
            )
            if is_biased(report.ratio, report.neighbor_ratio, tau_c):
                biased.append(report)
        biased.sort(key=lambda r: (-r.difference, r.pattern.items))
        # Apply updates sequentially (lines 4-6).  Cells within a node are
        # disjoint, so each region's identification counts stay valid while
        # its siblings are updated; cross-node staleness is handled by the
        # dirty-flag rebuild.
        for report in biased:
            outcome = apply_technique(technique, current, report, rng, ranker)
            if outcome is None:
                continue
            current, update = outcome
            updates.append(update)
            dirty = True

    return RemedyResult(
        dataset=current, updates=tuple(updates), initial_ibs=initial_ibs
    )
