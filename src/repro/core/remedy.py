"""Dataset remedy (paper Problem 2 / Algorithm 2).

Walks the hierarchy node by node (bottom-up, as Algorithm 1 does), at each
node re-identifies the biased regions *on the current, partially remedied
dataset*, and applies the chosen pre-processing technique to each.  The
paper notes this is iterative because "adjusting the class distribution for
specific regions will impact the imbalance score of all regions that either
dominate or are dominated by them".  Rather than rebuilding the hierarchy
from scratch whenever an update dirties the counts, the loop keeps **one**
hierarchy current incrementally: every sampler only touches rows matching
the remedied region's pattern, so the exact count change is the difference
of the region's leaf-granular count block before and after the update, and
:meth:`repro.core.hierarchy.Hierarchy.apply_count_delta` folds it into all
nodes in place (see ``docs/performance.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.hierarchy import Hierarchy
from repro.core.ibs import (
    METHOD_OPTIMIZED,
    RegionReport,
    SCOPE_LATTICE,
    identify_ibs,
    node_biased_reports,
    scope_levels,
)
from repro.core.ranker import BorderlineRanker
from repro.core.samplers import (
    PREFERENTIAL,
    MASSAGING,
    TECHNIQUES,
    RegionUpdate,
    apply_technique,
)
from repro.data.dataset import Dataset
from repro.errors import RemedyError
from repro.obs import trace as obs


@dataclass(frozen=True)
class RemedyResult:
    """Outcome of one remedy run."""

    dataset: Dataset
    updates: tuple[RegionUpdate, ...] = field(default_factory=tuple)
    initial_ibs: tuple[RegionReport, ...] = field(default_factory=tuple)
    #: The incrementally maintained hierarchy, equal to one freshly built
    #: from ``dataset``; callers (e.g. the convergence loop) can pass it
    #: back into ``identify_ibs``/``remedy_dataset`` to skip a rebuild.
    hierarchy: Hierarchy | None = None

    @property
    def n_regions_remedied(self) -> int:
        return len(self.updates)

    @property
    def rows_touched(self) -> int:
        return sum(u.rows_touched for u in self.updates)


def remedy_dataset(
    dataset: Dataset,
    tau_c: float,
    T: float = 1.0,
    k: int = 30,
    technique: str = PREFERENTIAL,
    scope: str = SCOPE_LATTICE,
    method: str = METHOD_OPTIMIZED,
    attrs: Sequence[str] | None = None,
    seed: int = 0,
    hierarchy: Hierarchy | None = None,
    incremental: bool = True,
) -> RemedyResult:
    """Algorithm 2: remedy every biased region of the dataset.

    Parameters mirror :func:`repro.core.ibs.identify_ibs`; ``technique`` is
    one of :data:`repro.core.samplers.TECHNIQUES` and ``seed`` drives the
    random row selection of the sampling techniques.  ``hierarchy`` may be
    a pre-built hierarchy over ``dataset`` (e.g. from a previous pass's
    :attr:`RemedyResult.hierarchy`) — it is updated **in place** as regions
    are remedied; ``incremental=False`` falls back to
    rebuilding the hierarchy from scratch after dirtying updates — it
    produces identical results and exists as an equivalence oracle for
    tests and debugging.

    Returns a :class:`RemedyResult` whose ``dataset`` is the remedied copy
    (the input is never modified), ``updates`` the per-region audit records,
    and ``initial_ibs`` the IBS found on the *original* data for reference.
    """
    if technique not in TECHNIQUES:
        raise RemedyError(f"unknown technique {technique!r}; choose from {TECHNIQUES}")
    if dataset.n_rows == 0:
        raise RemedyError("cannot remedy an empty dataset")
    with obs.span(
        "remedy_dataset",
        technique=technique,
        method=method,
        scope=scope,
        tau_c=tau_c,
        incremental=incremental,
    ) as remedy_span:
        rng = np.random.default_rng(seed)

        ranker: BorderlineRanker | None = None
        if technique in (PREFERENTIAL, MASSAGING):
            with obs.span("remedy.fit_ranker"):
                ranker = BorderlineRanker().fit(dataset)

        current = dataset
        if hierarchy is None:
            hierarchy = Hierarchy(current, attrs=attrs)
        initial_ibs = tuple(
            identify_ibs(
                current, tau_c, T=T, k=k, scope=scope, method=method,
                attrs=attrs, hierarchy=hierarchy,
            )
        )

        dirty = False
        node_keys = [
            frozenset(node.attrs)
            for level in scope_levels(hierarchy, scope)
            for node in hierarchy.nodes_at_level(level)
        ]

        updates: list[RegionUpdate] = []
        for key in node_keys:
            if dirty:
                hierarchy = Hierarchy(current, attrs=attrs)
                dirty = False
                obs.count("remedy.hierarchy_rebuilds")
            node = hierarchy.node(key)
            # Identify this node's biased regions on the current data (line 3).
            biased = node_biased_reports(
                hierarchy, node, tau_c, T=T, k=k, method=method, dataset=current
            )
            biased.sort(key=lambda r: (-r.difference, r.pattern.items))
            # Apply updates sequentially (lines 4-6).  Cells within a node are
            # disjoint, so each region's identification counts stay valid while
            # its siblings are updated; cross-node staleness is handled by
            # folding each update's exact count delta into the hierarchy (or,
            # with incremental=False, by a dirty-flag rebuild).
            for report in biased:
                before = (
                    hierarchy.region_leaf_counts(current, report.pattern)
                    if incremental
                    else None
                )
                outcome = apply_technique(technique, current, report, rng, ranker)
                if outcome is None:
                    continue
                current, update = outcome
                updates.append(update)
                obs.count("remedy.regions_remedied")
                obs.count(
                    "remedy.rows_added",
                    update.added_positives + update.added_negatives,
                )
                obs.count(
                    "remedy.rows_removed",
                    update.removed_positives + update.removed_negatives,
                )
                obs.count(
                    "remedy.rows_relabelled",
                    update.flipped_to_positive + update.flipped_to_negative,
                )
                if incremental:
                    after = hierarchy.region_leaf_counts(current, report.pattern)
                    hierarchy.apply_count_delta(
                        report.pattern, after[0] - before[0], after[1] - before[1]
                    )
                else:
                    dirty = True

        if dirty:
            hierarchy = Hierarchy(current, attrs=attrs)
            obs.count("remedy.hierarchy_rebuilds")
        remedy_span.annotate(
            regions_remedied=len(updates),
            rows_touched=sum(u.rows_touched for u in updates),
        )
        return RemedyResult(
            dataset=current,
            updates=tuple(updates),
            initial_ibs=initial_ibs,
            hierarchy=hierarchy,
        )
