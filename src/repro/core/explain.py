"""Explain an unfair subgroup via the training data's IBS.

Fig. 3's analysis — is an unfair subgroup itself a biased region, or does
it dominate one, and in which direction is the skew — is useful beyond the
validation experiment: a practitioner auditing a model wants exactly that
diagnosis for each subgroup the auditor flags.  :func:`explain_subgroup`
packages it, together with a remedy suggestion (which technique, how many
rows it would move) derived from Definition 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.hierarchy import Hierarchy
from repro.core.ibs import RegionReport, identify_ibs, region_report
from repro.core.imbalance import is_undefined
from repro.core.pattern import Pattern
from repro.core.samplers import _preferential_k
from repro.data.dataset import Dataset
from repro.errors import PatternError


@dataclass(frozen=True)
class RemedySuggestion:
    """What Definition 6 implies for one biased region."""

    pattern: Pattern
    target_ratio: float
    preferential_moves: int  # k of Eq. 1 with |p_r| = |n_r| = k
    direction: str  # "remove positives / add negatives" or the reverse

    @property
    def summary(self) -> str:
        return (
            f"{self.pattern!r}: move ~{self.preferential_moves} rows "
            f"({self.direction}) toward ratio {self.target_ratio:.2f}"
        )


@dataclass(frozen=True)
class SubgroupExplanation:
    """Why a subgroup misbehaves, in the paper's terms."""

    subgroup: Pattern
    own_region: RegionReport | None  # the subgroup's own imbalance evidence
    in_ibs: bool
    dominated_biased: tuple[RegionReport, ...]
    suggestions: tuple[RemedySuggestion, ...]

    @property
    def explained(self) -> bool:
        """True when the IBS accounts for the subgroup (Fig. 3 grey/blue)."""
        return self.in_ibs or bool(self.dominated_biased)

    @property
    def skew_direction(self) -> int:
        """+1 over-positive (FPR-inducing), -1 over-negative, 0 unknown."""
        if self.in_ibs and self.own_region is not None:
            return self.own_region.skew_direction
        if self.dominated_biased:
            return max(self.dominated_biased, key=lambda r: r.size).skew_direction
        return 0

    def describe(self, schema) -> str:
        """Multi-line human-readable diagnosis."""
        lines = [f"subgroup {self.subgroup.describe(schema)}:"]
        if self.own_region is not None:
            r = self.own_region
            lines.append(
                f"  imbalance score {r.ratio:.2f} vs neighbourhood "
                f"{r.neighbor_ratio:.2f} (difference {r.difference:.2f})"
                + ("  -> in IBS" if self.in_ibs else "")
            )
        if self.dominated_biased:
            lines.append(
                f"  dominates {len(self.dominated_biased)} biased region(s):"
            )
            for r in self.dominated_biased:
                lines.append(
                    f"    {r.pattern.describe(schema)} "
                    f"ratio {r.ratio:.2f} vs {r.neighbor_ratio:.2f}"
                )
        if not self.explained:
            lines.append("  no matching representation bias found in the IBS")
        for s in self.suggestions:
            lines.append(f"  remedy: {s.summary}")
        return "\n".join(lines)


def _suggestion_for(report: RegionReport) -> RemedySuggestion | None:
    target = report.neighbor_ratio
    if is_undefined(target):
        return None
    skew_positive = is_undefined(report.ratio) or report.ratio > target
    k = _preferential_k(report.pos, report.neg, target, skew_positive)
    if k == 0:
        return None
    direction = (
        "remove positives / add negatives"
        if skew_positive
        else "add positives / remove negatives"
    )
    return RemedySuggestion(report.pattern, target, k, direction)


def explain_subgroup(
    train: Dataset,
    subgroup: Pattern,
    tau_c: float = 0.1,
    T: float = 1.0,
    k: int = 30,
    ibs: Sequence[RegionReport] | None = None,
    hierarchy: Hierarchy | None = None,
) -> SubgroupExplanation:
    """Diagnose ``subgroup`` against the training data's IBS.

    ``ibs``/``hierarchy`` may be passed in when explaining many subgroups
    against the same training data (they are recomputed otherwise).
    """
    if not subgroup.attrs:
        raise PatternError("cannot explain the empty (level-0) subgroup")
    if hierarchy is None:
        hierarchy = Hierarchy(train)
    if ibs is None:
        ibs = identify_ibs(train, tau_c, T=T, k=k, hierarchy=hierarchy)

    own: RegionReport | None = None
    if frozenset(subgroup.attrs) in hierarchy:
        node = hierarchy.node(subgroup.attrs)
        pos, neg = node.counts_of(subgroup)
        own = region_report(
            hierarchy, node, subgroup, pos, neg, T, dataset=train
        )

    by_pattern = {r.pattern for r in ibs}
    in_ibs = subgroup in by_pattern
    dominated = tuple(
        r
        for r in ibs
        if r.pattern != subgroup and r.pattern.is_dominated_by(subgroup)
    )

    suggestions = []
    if in_ibs and own is not None:
        suggestion = _suggestion_for(own)
        if suggestion:
            suggestions.append(suggestion)
    for r in dominated:
        suggestion = _suggestion_for(r)
        if suggestion:
            suggestions.append(suggestion)

    return SubgroupExplanation(
        subgroup=subgroup,
        own_region=own,
        in_ibs=in_ibs,
        dominated_biased=dominated,
        suggestions=tuple(suggestions),
    )


def explain_unfair_subgroups(
    train: Dataset,
    subgroups: Sequence[Pattern],
    tau_c: float = 0.1,
    T: float = 1.0,
    k: int = 30,
) -> list[SubgroupExplanation]:
    """Batch :func:`explain_subgroup` with shared IBS/hierarchy computation."""
    hierarchy = Hierarchy(train)
    ibs = identify_ibs(train, tau_c, T=T, k=k, hierarchy=hierarchy)
    return [
        explain_subgroup(
            train, subgroup, tau_c=tau_c, T=T, k=k, ibs=ibs, hierarchy=hierarchy
        )
        for subgroup in subgroups
    ]
