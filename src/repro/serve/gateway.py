"""The audit gateway: a bounded, crash-safe HTTP front for stream + registry.

One :class:`AuditGateway` owns a :class:`~repro.stream.service.StreamService`
(the durable write path), optionally a :class:`~repro.data.store.Registry`
(the fetch tier) and a :class:`~repro.serve.remedy.RemedyController`
(remedy-on-drift).  Endpoints:

========================================  =====================================
``POST /ingest``                          journal + apply one delta batch
``GET  /health``                          gateway + stream status (stable JSON)
``GET  /datasets``                        registry listing (stable JSON)
``GET  /datasets/<name>``                 a store's manifest
``GET  /datasets/<name>/ref``             StoreRef identity (digest, rows)
``GET  /datasets/<name>/files/<s>/<f>``   raw shard bytes + sha256 header
========================================  =====================================

Degradation is graceful and *typed* (see :mod:`repro.serve.protocol`):

* **Load shedding** — at most ``admission_limit`` ingest requests are in
  the house at once; the next producer gets an immediate 429
  (:class:`~repro.errors.AdmissionError`) without touching the stream.
* **Deadlines** — every ingest carries a deadline (``X-Repro-Deadline``
  header, capped by the server's own); a request that cannot acquire the
  write lock in time gets a 504 (:class:`~repro.errors.RequestDeadlineError`)
  — crucially *before* any journalling, so a timed-out request has no
  durable effect and its retry is clean.
* **Idempotency** — the batch id is the idempotency key: the stream's
  duplicate-batch dedup turns a client retry of an already-journalled
  batch into a cheap 200 with ``"duplicate": true``.  Combined with
  ack-after-apply (the response is written only once the batch is fsynced
  *and* folded), producer retries are exactly-once in effect.
* **Drain** — :meth:`AuditGateway.request_drain` (wired to SIGTERM/SIGINT
  by ``repro serve``) flips new requests to 503
  (:class:`~repro.errors.DrainingError`), lets in-flight handlers finish,
  then flushes and closes the service so leases and file handles are
  released.  A SIGKILL instead of a drain is exactly what
  :mod:`repro.serve.chaos` proves recoverable.

The ``StreamService`` is deliberately single-writer; the gateway serialises
ingest behind one lock rather than pretending the journal is concurrent.
Multi-producer throughput comes from admission + dedup + the bounded wait,
not from interleaved appends — the sha chain stays linear.
"""

from __future__ import annotations

import json
import os
import signal
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.data.store.format import manifest_digest, read_manifest
from repro.errors import (
    AdmissionError,
    DataError,
    DrainingError,
    RequestDeadlineError,
    ReproError,
    ServeError,
    StoreError,
)
from repro.obs import trace as obs
from repro.serve.protocol import canonical_json_bytes, error_payload, registry_payload, status_for
from repro.serve.remedy import RemedyController
from repro.stream.deltas import deltas_from_records
from repro.stream.monitor import ALARM_CLEAR, ALARM_RAISE

#: Environment variable arming the fetch-tier chaos plan for one server
#: process: ``{"file": "shard-00000/c0000.npy"}`` makes the gateway
#: SIGKILL itself after serving *half* of that file's bytes — the
#: ``serve-chaos`` mid-fetch drill.
SERVE_CHAOS_ENV = "REPRO_SERVE_CHAOS"

#: Ingest deadline header; value in (fractional) seconds.
DEADLINE_HEADER = "X-Repro-Deadline"
SHA_HEADER = "X-Repro-Sha256"

_MAX_BODY_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway knobs; every field has a production-ish default."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: bind an ephemeral port (read it back from .address)
    #: Ingest requests admitted concurrently (queued on the write lock);
    #: the next one is shed with a 429.
    admission_limit: int = 8
    #: Default + ceiling for the per-request ingest deadline (seconds).
    deadline_seconds: float = 10.0

    def __post_init__(self) -> None:
        if self.admission_limit < 1:
            raise ServeError(
                f"admission_limit must be >= 1, got {self.admission_limit}"
            )
        if self.deadline_seconds <= 0:
            raise ServeError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )


def _fetch_chaos_plan() -> dict | None:
    """The armed mid-fetch chaos plan, if any (see :data:`SERVE_CHAOS_ENV`)."""
    spec = os.environ.get(SERVE_CHAOS_ENV)
    if not spec:
        return None
    plan = json.loads(spec)
    if not isinstance(plan, dict) or "file" not in plan:
        raise ServeError(f"malformed {SERVE_CHAOS_ENV} plan: {spec!r}")
    return plan


class AuditGateway:
    """HTTP front for one stream directory and (optionally) one registry."""

    def __init__(
        self,
        service,
        registry=None,
        config: GatewayConfig | None = None,
        controller: RemedyController | None = None,
    ):
        self.service = service
        self.registry = registry
        self.config = config or GatewayConfig()
        self.controller = controller
        self._ingest_lock = threading.Lock()
        self._state_lock = threading.Lock()  # guards the counters below
        self._inflight = 0
        self._acked = 0
        self._shed = 0
        self._draining = False
        self._serve_thread: threading.Thread | None = None
        self._fetch_chaos = _fetch_chaos_plan()
        gateway = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def log_message(self, *args) -> None:  # silence default stderr noise
                pass

            def do_GET(self) -> None:
                gateway._handle(self, "GET")

            def do_POST(self) -> None:
                gateway._handle(self, "POST")

        self.server = ThreadingHTTPServer(
            (self.config.host, self.config.port), Handler
        )

    # -- lifecycle ---------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — read the port back when it was 0."""
        host, port = self.server.server_address[:2]
        return str(host), int(port)

    def start(self) -> None:
        """Serve in a background thread (the test/bench entry point)."""
        self._serve_thread = threading.Thread(
            target=self.server.serve_forever, name="repro-serve", daemon=True
        )
        self._serve_thread.start()

    def run(self) -> None:
        """Serve in the calling thread until a drain is requested.

        Installs SIGTERM/SIGINT handlers that trigger a graceful drain:
        stop accepting, finish in-flight requests, flush and close the
        service.  This is the ``repro serve`` entry point.
        """
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, lambda *_: self.request_drain())
        try:
            self.server.serve_forever()
        finally:
            self.server.server_close()  # joins in-flight handler threads
            self.service.close()

    def request_drain(self) -> None:
        """Flip to draining and stop the accept loop (idempotent, async-safe)."""
        self._draining = True
        # shutdown() blocks until serve_forever exits, so it must not run
        # on the serving thread (signal handlers land there).
        threading.Thread(target=self.server.shutdown, daemon=True).start()

    def stop(self) -> None:
        """Drain and release everything (the test/bench counterpart of run)."""
        self._draining = True
        self.server.shutdown()
        self.server.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=30.0)
        self.service.close()

    # -- dispatch ----------------------------------------------------------------
    def _handle(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        try:
            if self._draining:
                raise DrainingError(
                    "gateway is draining; no new requests are accepted"
                )
            path = handler.path.rstrip("/") or "/"
            if method == "POST" and path == "/ingest":
                payload = self._ingest(handler)
            elif method == "GET" and path == "/health":
                payload = self.health_payload()
            elif method == "GET" and path == "/datasets":
                payload = registry_payload(self._require_registry())
            elif method == "GET" and path.startswith("/datasets/"):
                if self._shard_file_get(handler, path):
                    return  # raw file bytes already written
                payload = self._manifest_or_ref(path)
            else:
                raise ServeError(f"no such endpoint: {method} {handler.path}")
        except ReproError as exc:
            # Errors can fire before the request body was consumed, which
            # would desync a kept-alive connection — close it instead.
            handler.close_connection = True
            self._send_json(handler, status_for(exc), error_payload(exc))
            return
        except Exception as exc:  # repro: ignore[R007] — boundary: every
            # handler fault must become a 500 body, never a socket abort.
            handler.close_connection = True
            self._send_json(
                handler,
                500,
                {
                    "error": type(exc).__name__,
                    "message": str(exc),
                    "retryable": False,
                    "status": 500,
                },
            )
            return
        self._send_json(handler, 200, payload)

    def _send_json(
        self, handler: BaseHTTPRequestHandler, status: int, payload: dict
    ) -> None:
        body = canonical_json_bytes(payload)
        handler.send_response(status)
        handler.send_header("Content-Type", "application/json")
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)

    # -- ingest ------------------------------------------------------------------
    def _read_body(self, handler: BaseHTTPRequestHandler) -> bytes:
        length = int(handler.headers.get("Content-Length") or 0)
        if length <= 0:
            raise DataError("ingest requires a JSON body with Content-Length")
        if length > _MAX_BODY_BYTES:
            raise DataError(
                f"ingest body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte cap; split the batch"
            )
        return handler.rfile.read(length)

    def _deadline(self, handler: BaseHTTPRequestHandler) -> float:
        raw = handler.headers.get(DEADLINE_HEADER)
        if raw is None:
            return self.config.deadline_seconds
        try:
            value = float(raw)
        except ValueError:
            raise DataError(f"bad {DEADLINE_HEADER} header: {raw!r}")
        if value <= 0:
            raise RequestDeadlineError(
                f"deadline {value}s already expired on arrival"
            )
        return min(value, self.config.deadline_seconds)

    def _ingest(self, handler: BaseHTTPRequestHandler) -> dict:
        deadline = self._deadline(handler)
        body = self._read_body(handler)
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise DataError(f"ingest body is not valid JSON: {exc.msg}")
        if (
            not isinstance(payload, dict)
            or "id" not in payload
            or not isinstance(payload.get("deltas"), list)
        ):
            raise DataError('ingest body must be {"id": ..., "deltas": [...]}')
        batch_id = str(payload["id"])
        deltas = deltas_from_records(payload["deltas"])

        with self._state_lock:
            if self._inflight >= self.config.admission_limit:
                self._shed += 1
                obs.count("serve.shed")
                raise AdmissionError(
                    f"{self._inflight} ingest requests in flight (limit "
                    f"{self.config.admission_limit}); retry batch "
                    f"{batch_id!r} after backoff"
                )
            self._inflight += 1
            obs.gauge_set("serve.inflight", self._inflight)
        try:
            # The deadline covers the wait for the single-writer lock: a
            # request that cannot start journalling in time has had no
            # durable effect, so its 504 is safe to retry verbatim.
            if not self._ingest_lock.acquire(timeout=deadline):
                raise RequestDeadlineError(
                    f"batch {batch_id!r} waited {deadline:.3f}s for the "
                    "write lock; retry with backoff"
                )
            try:
                return self._ingest_locked(batch_id, deltas)
            finally:
                self._ingest_lock.release()
        finally:
            with self._state_lock:
                self._inflight -= 1
                obs.gauge_set("serve.inflight", self._inflight)

    def _ingest_locked(self, batch_id: str, deltas) -> dict:
        with obs.span("serve.ingest", batch=batch_id, n=len(deltas)):
            accepted = self.service.submit(batch_id, deltas)
            if not accepted:
                response = {
                    "batch": batch_id,
                    "duplicate": True,
                    "watermark": self.service.auditor.watermark,
                }
            else:
                events = self.service.drain()
                response = {
                    "batch": batch_id,
                    "duplicate": False,
                    "watermark": self.service.auditor.watermark,
                    "alarms_raised": sum(e.kind == ALARM_RAISE for e in events),
                    "alarms_cleared": sum(e.kind == ALARM_CLEAR for e in events),
                }
                if self.controller is not None:
                    response["remedy"] = self.controller.on_alarms(events)
        # Reaching here means the batch is fsynced AND applied: the ack
        # the response carries is durable (chaos asserts acked => replayed).
        with self._state_lock:
            self._acked += 1
        return response

    # -- registry fetch tier -----------------------------------------------------
    def _require_registry(self):
        if self.registry is None:
            raise StoreError("this gateway serves no dataset registry")
        return self.registry

    def _manifest_for(self, name: str) -> tuple[Path, dict]:
        registry = self._require_registry()
        path = registry.path_of(name)
        return path, read_manifest(path)

    def _shard_file_get(self, handler: BaseHTTPRequestHandler, path: str) -> bool:
        """Serve raw shard files; return False for manifest/ref paths."""
        parts = [p for p in path.split("/") if p][1:]  # drop "datasets"
        if len(parts) != 4 or parts[1] != "files":
            return False
        name, _, shard_dir, fname = parts
        store_path, manifest = self._manifest_for(name)
        meta = None
        for entry in manifest["shards"]:
            if entry["dir"] == shard_dir:
                meta = entry["files"].get(fname)
                break
        if meta is None:
            raise StoreError(
                f"dataset {name!r} has no shard file {shard_dir}/{fname}"
            )
        data = (store_path / shard_dir / fname).read_bytes()
        handler.send_response(200)
        handler.send_header("Content-Type", "application/octet-stream")
        handler.send_header("Content-Length", str(len(data)))
        handler.send_header(SHA_HEADER, meta["sha256"])
        handler.end_headers()
        plan = self._fetch_chaos
        if plan is not None and plan["file"] == f"{shard_dir}/{fname}":
            # Mid-fetch chaos: half the body, then death by signal — the
            # client sees a short read and must converge by retrying.
            handler.wfile.write(data[: len(data) // 2])
            handler.wfile.flush()
            os.kill(os.getpid(), signal.SIGKILL)
        handler.wfile.write(data)
        obs.count("serve.shard_bytes", len(data))
        return True

    def _manifest_or_ref(self, path: str) -> dict:
        parts = [p for p in path.split("/") if p][1:]
        if len(parts) == 1:
            _, manifest = self._manifest_for(parts[0])
            return manifest
        if len(parts) == 2 and parts[1] == "ref":
            name = parts[0]
            _, manifest = self._manifest_for(name)
            return {
                "name": name,
                "manifest_digest": manifest_digest(manifest),
                "n_rows": int(manifest["n_rows"]),
                "n_shards": len(manifest["shards"]),
            }
        raise ServeError(f"no such endpoint: GET /{'/'.join(['datasets', *parts])}")

    # -- health ------------------------------------------------------------------
    def health_payload(self) -> dict:
        """Gateway + stream status; embeds the exact ``stream status --json``
        payload under ``"stream"`` so the two stay comparable byte for byte."""
        deadline = self.config.deadline_seconds
        if not self._ingest_lock.acquire(timeout=deadline):
            raise RequestDeadlineError(
                f"health waited {deadline:.3f}s for the write lock"
            )
        try:
            stream = self.service.status()
        finally:
            self._ingest_lock.release()
        with self._state_lock:
            payload = {
                "status": "draining" if self._draining else "ok",
                "inflight": self._inflight,
                "acked_batches": self._acked,
                "shed_requests": self._shed,
                "admission_limit": self.config.admission_limit,
                "deadline_seconds": self.config.deadline_seconds,
                "stream": stream,
            }
        if self.controller is not None:
            payload["breaker"] = self.controller.breaker.snapshot()
            payload["remedies_applied"] = self.controller.applied
        return payload


__all__ = [
    "AuditGateway",
    "DEADLINE_HEADER",
    "GatewayConfig",
    "SERVE_CHAOS_ENV",
    "SHA_HEADER",
]
