"""Fault-tolerant audit gateway: multi-producer serving front (see docs/serving.md).

The package puts an HTTP front door on the two durable subsystems so
untrusted concurrent producers can feed the streaming auditor and fetch
registry datasets without ever being able to corrupt state:

* :mod:`repro.serve.protocol` — the stable status-code taxonomy mapping
  every typed :mod:`repro.errors` class to exactly one HTTP code, plus the
  byte-stable JSON encoding shared by the CLI ``--json`` outputs and the
  gateway's health endpoint;
* :mod:`repro.serve.breaker` — a deterministic circuit breaker
  (closed / open / half-open, probe-counted cooldown, no wall clock);
* :mod:`repro.serve.remedy` — the drift-triggered remedy controller:
  wraps :func:`repro.core.remedy_dataset` behind the breaker and journals
  every automated action as one ordinary delta batch, so recovery replays
  it byte-identically and no partial remedy is ever visible;
* :mod:`repro.serve.gateway` — the :class:`AuditGateway` itself: bounded
  admission (429), per-request deadlines (504), idempotent ingest via the
  stream's duplicate-batch dedup, a registry fetch tier with per-file
  sha256 headers, and graceful drain on SIGTERM/SIGINT;
* :mod:`repro.serve.client` — the retrying :class:`GatewayClient` built
  on :class:`repro.resilience.RetryPolicy`'s deterministic jittered
  backoff, with client-side sha256 verification and crash-atomic install
  of fetched stores;
* :mod:`repro.serve.chaos` — the ``serve-chaos`` drills: SIGKILL the
  server mid-ingest and mid-fetch, restart, prove the client retry loop
  converges to a byte-identical replay with zero acked-but-lost batches.

This package is the single place allowed to touch raw sockets and HTTP
primitives — rule R016 flags them anywhere else.
"""

from repro.serve.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from repro.serve.client import GatewayClient
from repro.serve.gateway import AuditGateway, GatewayConfig
from repro.serve.protocol import (
    canonical_json_bytes,
    registry_payload,
    status_for,
    status_table,
)
from repro.serve.remedy import RemedyController, RemedyPolicy

__all__ = [
    "AuditGateway",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "GatewayClient",
    "GatewayConfig",
    "RemedyController",
    "RemedyPolicy",
    "canonical_json_bytes",
    "registry_payload",
    "status_for",
    "status_table",
]
