"""Retrying gateway client: idempotent ingest and verified dataset fetch.

The client is the other half of the gateway's fault contract:

* **Typed retries** — transport faults (connection refused, reset, short
  read) become :class:`~repro.errors.TransportError`; those and the
  retryable status codes (:data:`~repro.serve.protocol.RETRYABLE_STATUSES`:
  429 shed, 503 draining/breaker, 504 deadline) are retried on the
  deterministic jittered backoff of
  :class:`~repro.resilience.RetryPolicy` — the same request, same
  idempotency key, every time.  Everything else surfaces immediately as
  the typed error the server named (reconstructed from the error payload),
  so a 422 poison batch is *not* hammered.
* **Exactly-once effect** — the batch id is the idempotency key.  A retry
  of a batch the server already journalled (the ack was lost, not the
  batch) comes back as a cheap ``"duplicate": true`` ack.  The chaos drill
  (:mod:`repro.serve.chaos`) kills the server between journal and ack and
  asserts the retry loop converges with zero double-applies.
* **Verified fetch** — :meth:`GatewayClient.fetch_dataset` mirrors the
  registry's own crash-safe install: shard files download into a
  ``.tmp-*`` sibling, every file is re-hashed against the manifest's
  sha256 ledger *on the client side*, the manifest is written last, and
  the directory is renamed into place only then.  A fetch killed at any
  byte leaves either nothing or a ``.tmp-*`` orphan the registry's
  ``prune`` removes — never a half-installed store — and a store already
  present at the right manifest digest is skipped without moving bytes.
"""

from __future__ import annotations

import http.client
import json
import os
import shutil
import time
from pathlib import Path
from typing import Sequence

from repro import errors
from repro.data.store.format import (
    file_sha256,
    manifest_digest,
    read_manifest,
    write_manifest,
)
from repro.data.store.registry import TMP_PREFIX, verify_store
from repro.errors import StoreCorruptionError, TransportError
from repro.obs import trace as obs
from repro.resilience import RetryPolicy
from repro.serve.gateway import DEADLINE_HEADER, SHA_HEADER
from repro.serve.protocol import RETRYABLE_STATUSES
from repro.stream.deltas import Delta

#: Default client policy: 5 attempts, short jittered exponential backoff.
DEFAULT_RETRY = RetryPolicy(max_attempts=5, base_delay=0.05, jitter=0.5)


def _rebuild_error(status: int, body: bytes) -> Exception:
    """The typed error a gateway error payload names, rebuilt client-side."""
    try:
        payload = json.loads(body)
        name = payload["error"]
        message = payload["message"]
    except (json.JSONDecodeError, KeyError, TypeError):
        return TransportError(
            f"gateway returned HTTP {status} with an unreadable error body"
        )
    klass = getattr(errors, str(name), None)
    if not (isinstance(klass, type) and issubclass(klass, errors.ReproError)):
        klass = errors.ReproError
    return klass(f"gateway: {message}")


class GatewayClient:
    """HTTP client for one :class:`~repro.serve.gateway.AuditGateway`."""

    def __init__(
        self,
        host: str,
        port: int,
        retry: RetryPolicy | None = None,
        timeout: float = 30.0,
    ):
        self.host = host
        self.port = int(port)
        self.retry = retry or DEFAULT_RETRY
        self.timeout = timeout

    # -- transport ---------------------------------------------------------------
    def _request_once(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One connection, one request; transport faults become typed."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            data = response.read()  # IncompleteRead on a mid-body crash
            return response.status, dict(response.getheaders()), data
        except (OSError, http.client.HTTPException) as exc:
            raise TransportError(
                f"{method} {path} to {self.host}:{self.port} failed in "
                f"transport: {type(exc).__name__}: {exc}"
            ) from exc
        finally:
            conn.close()

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """Request with retries on transport faults and retryable statuses.

        Retries re-send the identical request — safe because every write
        endpoint is idempotent by batch id.  Returns the first
        non-retryable response; raises :class:`~repro.errors.TransportError`
        when every attempt failed or was shed.
        """
        last: str = "no attempt made"
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                status, resp_headers, data = self._request_once(
                    method, path, body=body, headers=headers
                )
            except TransportError as exc:
                last = str(exc)
                obs.count("serve.client_transport_faults")
            else:
                if status not in RETRYABLE_STATUSES:
                    return status, resp_headers, data
                last = f"HTTP {status}: {data[:200]!r}"
                obs.count("serve.client_retryable_statuses")
            if attempt < self.retry.max_attempts:
                delay = self.retry.delay(attempt)
                if delay > 0:
                    time.sleep(delay)
        raise TransportError(
            f"{method} {path} still failing after "
            f"{self.retry.max_attempts} attempt(s); last: {last}"
        )

    def _json(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> dict:
        status, _, data = self.request(method, path, body=body, headers=headers)
        if status != 200:
            raise _rebuild_error(status, data)
        return json.loads(data)

    # -- endpoints ---------------------------------------------------------------
    def health(self) -> dict:
        """``GET /health``."""
        return self._json("GET", "/health")

    def ingest(
        self,
        batch_id: str,
        deltas: Sequence[Delta],
        deadline: float | None = None,
    ) -> dict:
        """Submit one delta batch; retries ride the batch-id idempotency key."""
        body = json.dumps(
            {"id": batch_id, "deltas": [d.to_record() for d in deltas]}
        ).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if deadline is not None:
            headers[DEADLINE_HEADER] = repr(float(deadline))
        return self._json("POST", "/ingest", body=body, headers=headers)

    def list_datasets(self) -> dict:
        """``GET /datasets``."""
        return self._json("GET", "/datasets")

    def manifest(self, name: str) -> dict:
        """``GET /datasets/<name>`` — the store's manifest document."""
        return self._json("GET", f"/datasets/{name}")

    def resolve_ref(self, name: str) -> dict:
        """``GET /datasets/<name>/ref`` — StoreRef identity over HTTP."""
        return self._json("GET", f"/datasets/{name}/ref")

    # -- the fetch tier ----------------------------------------------------------
    def _fetch_file(
        self, name: str, shard_dir: str, fname: str, dest: Path, expect: dict
    ) -> int:
        """Download one shard file into ``dest`` and verify it against the
        manifest entry (size and sha256) before anyone can read it."""
        status, headers, data = self.request(
            "GET", f"/datasets/{name}/files/{shard_dir}/{fname}"
        )
        if status != 200:
            raise _rebuild_error(status, data)
        claimed = headers.get(SHA_HEADER)
        if len(data) != int(expect["nbytes"]):
            raise TransportError(
                f"short read of {shard_dir}/{fname}: got {len(data)} of "
                f"{expect['nbytes']} bytes"
            )
        dest.write_bytes(data)
        digest = file_sha256(dest)
        if digest != expect["sha256"] or (claimed and claimed != digest):
            dest.unlink()
            raise StoreCorruptionError(
                f"fetched {shard_dir}/{fname} hashes to {digest}, manifest "
                f"says {expect['sha256']} (header said {claimed}); refusing "
                "to install"
            )
        return len(data)

    def fetch_dataset(self, name: str, dest_root: str | Path) -> Path:
        """Fetch the named store into ``dest_root/name``, crash-safely.

        Same install discipline as the registry's own writer: bytes land
        in a ``.tmp-*`` sibling, each file is verified against the
        manifest's sha256 on arrival, the manifest is written **last**,
        and only a fully verified tree is renamed into place.  A local
        copy already at the remote manifest digest short-circuits.
        """
        dest_root = Path(dest_root)
        dest_root.mkdir(parents=True, exist_ok=True)
        manifest = self.manifest(name)
        digest = manifest_digest(manifest)
        final = dest_root / name
        if final.is_dir():
            try:
                if manifest_digest(read_manifest(final)) == digest:
                    obs.count("serve.fetch_skipped")
                    return final
            except errors.StoreError:
                pass  # unreadable local copy: refetch over it
        tmp = dest_root / f"{TMP_PREFIX}{name}-{os.getpid()}"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir()
        nbytes = 0
        with obs.span("serve.fetch", dataset=name):
            for shard in manifest["shards"]:
                shard_path = tmp / shard["dir"]
                shard_path.mkdir()
                for fname, meta in shard["files"].items():
                    nbytes += self._fetch_file(
                        name, shard["dir"], fname, shard_path / fname, meta
                    )
            write_manifest(tmp, manifest)  # manifest last: tmp is now whole
            if final.is_dir():
                shutil.rmtree(final)  # digest mismatch: replace the stale copy
            os.rename(tmp, final)
        verify_store(final)
        obs.count("serve.fetch_bytes", nbytes)
        return final


__all__ = ["DEFAULT_RETRY", "GatewayClient"]
