"""Wire protocol of the audit gateway: status taxonomy and stable JSON.

Two contracts live here, both pinned by tests:

* **Status-code taxonomy** — :data:`STATUS_BY_ERROR` maps *every* class the
  :mod:`repro.errors` module exports to exactly one HTTP status code, and
  :func:`status_for` resolves an instance through its MRO so subclasses
  added later inherit a sane code until they get their own entry.  The
  exhaustiveness test (``tests/test_serve_protocol.py``) fails the build
  when a new error class ships without a mapping, which is what makes the
  taxonomy *stable*: clients can dispatch on codes without parsing
  messages.
* **Byte-stable JSON** — :func:`canonical_json_bytes` is the single
  encoder used by the gateway's JSON endpoints and the CLI ``--json``
  outputs (``repro stream status --json`` / ``repro data list --json``),
  so the health endpoint and the CLI agree byte for byte and machine
  consumers can hash or diff responses.

Retryability is part of the taxonomy: 429 (shed / backpressure), 503
(draining, breaker open) and 504 (deadline) mean "the same request may
succeed later" — the client retries exactly these, leaning on idempotency
keys for effect-exactly-once.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro import errors

if TYPE_CHECKING:  # pragma: no cover - import only for the annotation
    from repro.data.store.registry import Registry

#: HTTP status for every error class ``repro.errors`` exports.  Exhaustive
#: by test: an exported ``ReproError`` subclass missing here fails CI.
STATUS_BY_ERROR: dict[type, int] = {
    errors.ReproError: 500,
    # Malformed client payloads: the request parsed but violates a schema,
    # data, or pattern invariant — the client must change it, not retry it.
    errors.SchemaError: 422,
    errors.DataError: 422,
    errors.PatternError: 422,
    errors.FitError: 422,
    errors.NotFittedError: 422,
    errors.ExperimentError: 400,
    errors.AnalysisError: 400,
    # Server-side subsystem failures.
    errors.RemedyError: 500,
    errors.ResilienceError: 500,
    errors.CellTimeout: 504,
    errors.CheckpointError: 500,
    errors.WorkerCrash: 503,
    errors.ObsError: 500,
    # Registry fetch tier: an unknown store is a 404; a store that fails
    # integrity verification is a server-side 500 (never served).
    errors.StoreError: 404,
    errors.StoreCorruptionError: 500,
    # Stream write path.
    errors.StreamError: 422,
    errors.JournalError: 500,
    errors.DeltaError: 422,
    errors.BackpressureError: 429,
    # Serving front.
    errors.ServeError: 500,
    errors.AdmissionError: 429,
    errors.RequestDeadlineError: 504,
    errors.CircuitOpenError: 503,
    errors.DrainingError: 503,
    errors.TransportError: 502,
    errors.InternalError: 500,
}

#: Status codes the retrying client treats as transient: the identical
#: request (same idempotency key) may succeed after backoff.
RETRYABLE_STATUSES = frozenset({429, 503, 504})


def status_for(exc: BaseException) -> int:
    """The HTTP status for ``exc``: nearest mapped class in its MRO.

    Non-:class:`~repro.errors.ReproError` exceptions are a gateway bug by
    definition and map to 500.
    """
    for klass in type(exc).__mro__:
        code = STATUS_BY_ERROR.get(klass)
        if code is not None:
            return code
    return 500


def error_payload(exc: BaseException) -> dict:
    """JSON body of an error response: type, message, retryability."""
    status = status_for(exc)
    return {
        "error": type(exc).__name__,
        "message": str(exc),
        "retryable": status in RETRYABLE_STATUSES,
        "status": status,
    }


def canonical_json_bytes(payload: object) -> bytes:
    """Byte-stable JSON: sorted keys, fixed separators, trailing newline.

    The single encoding used by every gateway JSON response and by the
    CLI ``--json`` outputs, so the two are comparable byte for byte.
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def registry_payload(registry: Registry) -> dict:
    """JSON-safe snapshot of a :class:`~repro.data.store.Registry`.

    Shared by ``repro data list --json`` and the gateway's ``GET
    /datasets``; entries are sorted by name (the registry's own order) so
    the encoding above makes the whole document byte-stable.
    """
    datasets = []
    for name, manifest in registry.entries():
        nbytes = sum(
            meta["nbytes"]
            for shard in manifest["shards"]
            for meta in shard["files"].values()
        )
        datasets.append(
            {
                "name": name,
                "n_rows": int(manifest["n_rows"]),
                "n_shards": len(manifest["shards"]),
                "nbytes": int(nbytes),
                "live_leases": len(registry.live_leases(name)),
            }
        )
    return {
        "root": str(registry.root),
        "datasets": datasets,
        "tmp_dirs": [p.name for p in registry.tmp_dirs()],
    }


def status_table() -> list[tuple[str, int]]:
    """``(error class name, status)`` rows, sorted by name — for the docs
    and the CLI, not for dispatch (use :func:`status_for`)."""
    return sorted(
        (klass.__name__, code) for klass, code in STATUS_BY_ERROR.items()
    )


__all__ = [
    "STATUS_BY_ERROR",
    "RETRYABLE_STATUSES",
    "status_for",
    "error_payload",
    "canonical_json_bytes",
    "registry_payload",
    "status_table",
]
