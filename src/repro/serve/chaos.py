"""Chaos smoke for the audit gateway: crash-safe serving, proven end to end.

``make serve-chaos`` (and the CI ``serve-chaos`` stage) batters the whole
serving stack — gateway subprocess, retrying client, registry fetch tier,
remedy-on-drift — and asserts the contract the docs promise:

* **mid-ingest SIGKILL / crash-exit** — the gateway is armed (via the
  stream's own ``REPRO_STREAM_CHAOS`` plan, which ``repro serve`` honours
  exactly like ``repro stream ingest``) to die at the victim batch's
  ``post-append`` / ``pre-apply`` window, mid-HTTP-request.  The producer's
  retry loop restarts the server on the same port and re-sends the same
  batch id; the journalled-but-unacked batch dedups (``duplicate: true``),
  every one of the 40 batches ends up acked exactly once, and the final
  ``repro stream replay`` is byte-identical to a direct, uninterrupted
  ``repro stream ingest`` of the same workload — the gateway adds no bytes
  of divergence.  Zero acknowledged-but-lost batches: an ack is only ever
  written after the batch is fsynced *and* applied.
* **mid-fetch SIGKILL** — ``REPRO_SERVE_CHAOS`` makes the gateway kill
  itself halfway through a shard file's body.  The client sees a short
  read (typed :class:`~repro.errors.TransportError`), leaves only a
  ``.tmp-*`` sibling behind, and a retry against the restarted server
  installs the store with every sha256 verified, no ``.tmp-*`` leftovers,
  and no stale leases on either side.
* **remedy-on-drift across a crash** — two ``--remedy`` gateways ingest
  the same workload; one is SIGKILLed at a victim batch and restarted.
  Automated remedy batches are journalled under deterministic ids
  (``remedy-w<watermark>``), so both journals replay to the same digest,
  byte for byte — recovery replays every automated action identically and
  no partial remedy is ever visible.
* **graceful drain** — SIGTERM makes the server refuse new work, finish
  in-flight requests, flush and close the journal, and exit 0 printing
  ``drained``; the directory replays clean afterwards.

Run directly::

    PYTHONPATH=src python -m repro.serve.chaos
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.data.store.format import (
    LABELS_FILE,
    manifest_digest,
    read_manifest,
    shard_dir_name,
)
from repro.data.store.registry import TMP_PREFIX, Registry
from repro.errors import InternalError, TransportError
from repro.resilience import RetryPolicy
from repro.resilience.faults import (
    CRASH_EXIT,
    CRASH_EXIT_CODE,
    CRASH_SIGKILL,
    CrashFault,
)
from repro.serve.client import GatewayClient
from repro.serve.gateway import SERVE_CHAOS_ENV
from repro.serve.remedy import REMEDY_APPLIED
from repro.stream.chaos import (
    CHAOS_ENV,
    CHAOS_TIMEOUT,
    N_BATCHES,
    VICTIM_BATCH,
    _assert_no_orphans,
    _init,
    _replay_stdout,
    run_clean,
    write_workload,
)
from repro.stream.service import read_batches_file

#: Fast, deterministic client policy: the harness drives its own
#: restart-and-retry loop, so per-request retries stay short.
_RETRY = RetryPolicy(max_attempts=2, base_delay=0.01)

FETCH_DATASET = "chaosset"
#: Shard file the mid-fetch kill is armed on (every shard has labels).
FETCH_VICTIM_FILE = f"{shard_dir_name(1)}/{LABELS_FILE}"


# -- server management ------------------------------------------------------------

def _base_env(extra: dict | None) -> dict:
    env = dict(os.environ)
    env.pop(CHAOS_ENV, None)
    env.pop(SERVE_CHAOS_ENV, None)
    if extra:
        env.update(extra)
    return env


def _start_server(
    stream_dir: Path,
    *extra_args: str,
    port: int = 0,
    env_extra: dict | None = None,
) -> tuple[subprocess.Popen, int]:
    """Launch ``repro serve`` and block until its ready line arrives."""
    cmd = [
        sys.executable, "-m", "repro", "serve", str(stream_dir),
        "--port", str(port), *extra_args,
    ]
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=_base_env(env_extra),
    )
    ready = proc.stdout.readline()
    if not ready:
        proc.wait(timeout=CHAOS_TIMEOUT)
        raise InternalError(
            f"server on {stream_dir} died before its ready line "
            f"(exit {proc.returncode}): "
            f"{proc.stderr.read().decode(errors='replace')}"
        )
    return proc, int(json.loads(ready)["port"])


def _reap(proc: subprocess.Popen, want_code: int, context: str) -> None:
    """Collect a killed server and check it died the armed way."""
    proc.wait(timeout=CHAOS_TIMEOUT)
    proc.stdout.close()
    proc.stderr.close()
    if proc.returncode != want_code:
        raise InternalError(
            f"{context}: server exited {proc.returncode}, expected {want_code}"
        )


def _drain(proc: subprocess.Popen, context: str) -> bytes:
    """SIGTERM the server; it must drain, close the journal, and exit 0."""
    proc.send_signal(signal.SIGTERM)
    out, err = proc.communicate(timeout=CHAOS_TIMEOUT)
    if proc.returncode != 0:
        raise InternalError(
            f"{context}: drain exited {proc.returncode}: "
            f"{err.decode(errors='replace')}"
        )
    if b"drained" not in out:
        raise InternalError(f"{context}: drained server never said 'drained'")
    return out


def _client(port: int) -> GatewayClient:
    return GatewayClient("127.0.0.1", port, retry=_RETRY)


def _stream_chaos_env(batch: str, stage: str, mode: str) -> dict:
    action = CrashFault(times=1, mode=mode).worker_action(("serve",), 1)
    return {
        CHAOS_ENV: json.dumps({"batch": batch, "stage": stage, "action": action})
    }


def _ingest_converge(
    stream_dir: Path,
    batches: list,
    proc: subprocess.Popen,
    port: int,
    want_code: int,
    context: str,
    *extra_args: str,
) -> tuple[subprocess.Popen, dict, int]:
    """Drive every batch through the gateway, restarting it on death.

    Returns the live server, the acks by batch id, and how many times the
    server had to be restarted (the armed plans fire exactly once).
    """
    acked: dict[str, dict] = {}
    restarts = 0
    for batch_id, deltas in batches:
        while True:
            try:
                acked[batch_id] = _client(port).ingest(batch_id, deltas)
                break
            except TransportError:
                if proc.poll() is None:
                    proc.kill()
                    raise InternalError(
                        f"{context}: transport fault on {batch_id!r} but the "
                        "server is still alive"
                    )
                _reap(proc, want_code, context)
                restarts += 1
                # Same port, chaos disarmed: the producer's view of "the"
                # gateway endpoint never changes across the crash.
                proc, port = _start_server(stream_dir, *extra_args, port=port)
    return proc, acked, restarts


# -- scenarios --------------------------------------------------------------------

def run_gateway_crash(
    tmp: Path, schema: Path, batches_path: Path, clean: bytes,
    mode: str, stage: str,
) -> None:
    """Kill the serving gateway mid-ingest; the retry loop must converge."""
    context = f"gateway {mode} at {stage}"
    stream_dir = tmp / f"gw-{mode}-{stage}"
    _init(stream_dir, schema)
    batches = read_batches_file(batches_path)
    want = CRASH_EXIT_CODE if mode == CRASH_EXIT else -signal.SIGKILL
    proc, port = _start_server(
        stream_dir, env_extra=_stream_chaos_env(VICTIM_BATCH, stage, mode)
    )
    proc, acked, restarts = _ingest_converge(
        stream_dir, batches, proc, port, want, context
    )
    _drain(proc, context)
    if restarts != 1:
        raise InternalError(f"{context}: armed crash fired {restarts} times")
    if len(acked) != N_BATCHES:
        raise InternalError(
            f"{context}: {len(acked)} of {N_BATCHES} batches acked"
        )
    if not acked[VICTIM_BATCH]["duplicate"]:
        raise InternalError(
            f"{context}: journalled victim batch was not deduped on retry"
        )
    if _replay_stdout(stream_dir) != clean:
        raise InternalError(
            f"{context}: replay diverges from the direct stream ingest"
        )
    _assert_no_orphans(stream_dir, context)


def run_fetch_crash(tmp: Path, schema: Path) -> None:
    """Kill the gateway halfway through a shard body; retry must install."""
    context = "mid-fetch SIGKILL"
    source_root = tmp / "registry"
    subprocess.run(
        [
            sys.executable, "-m", "repro", "data", "materialize",
            FETCH_DATASET, "--root", str(source_root),
            "--rows", "3000", "--shard-rows", "1000", "--seed", "5",
        ],
        check=True, capture_output=True, timeout=CHAOS_TIMEOUT,
    )
    source_digest = manifest_digest(read_manifest(source_root / FETCH_DATASET))
    stream_dir = tmp / "fetch-stream"
    _init(stream_dir, schema)
    dest_root = tmp / "fetched"
    plan = {SERVE_CHAOS_ENV: json.dumps({"file": FETCH_VICTIM_FILE})}
    proc, port = _start_server(
        stream_dir, "--registry", str(source_root), env_extra=plan
    )
    try:
        _client(port).fetch_dataset(FETCH_DATASET, dest_root)
    except TransportError:
        pass
    else:
        proc.kill()
        raise InternalError(f"{context}: armed fetch kill never fired")
    _reap(proc, -signal.SIGKILL, context)
    leftovers = [p.name for p in dest_root.iterdir() if p.name.startswith(TMP_PREFIX)]
    if not leftovers:
        raise InternalError(
            f"{context}: interrupted fetch left no .tmp-* staging dir — the "
            "kill landed outside the download window"
        )
    proc, port = _start_server(
        stream_dir, "--registry", str(source_root), port=port
    )
    installed = _client(port).fetch_dataset(FETCH_DATASET, dest_root)
    _drain(proc, context)
    if manifest_digest(read_manifest(installed)) != source_digest:
        raise InternalError(f"{context}: installed manifest digest diverges")
    stale = [p.name for p in dest_root.iterdir() if p.name.startswith(TMP_PREFIX)]
    if stale:
        raise InternalError(f"{context}: .tmp-* leftovers after install: {stale}")
    if Registry(source_root).live_leases(FETCH_DATASET):
        raise InternalError(f"{context}: stale live lease on the source store")
    Registry(dest_root).verify(FETCH_DATASET)


def run_remedy_crash(tmp: Path, schema: Path, batches_path: Path) -> None:
    """SIGKILL a --remedy gateway mid-ingest; digests must still converge."""
    context = "remedy crash"
    batches = read_batches_file(batches_path)

    clean_dir = tmp / "remedy-clean"
    _init(clean_dir, schema)
    proc, port = _start_server(clean_dir, "--remedy")
    acks = []
    for batch_id, deltas in batches:
        acks.append(_client(port).ingest(batch_id, deltas))
    clean_health = _client(port).health()
    _drain(proc, context)
    applied = [
        a for a in acks if a.get("remedy", {}).get("status") == REMEDY_APPLIED
    ]
    if not applied:
        raise InternalError(
            f"{context}: the workload triggered no automated remedy"
        )
    # Victim: the last batch that raised no new alarm, so the crash cannot
    # eat a remedy trigger — the convergence oracle stays exact.
    quiet = [
        bid
        for (bid, _), ack in zip(batches, acks)
        if ack["alarms_raised"] == 0
    ]
    if not quiet:
        raise InternalError(f"{context}: every batch raised an alarm edge")
    victim = quiet[-1]
    clean_replay = _replay_stdout(clean_dir)

    chaos_dir = tmp / "remedy-chaos"
    _init(chaos_dir, schema)
    proc, port = _start_server(
        chaos_dir, "--remedy",
        env_extra=_stream_chaos_env(victim, "post-append", CRASH_SIGKILL),
    )
    proc, acked, restarts = _ingest_converge(
        chaos_dir, batches, proc, port, -signal.SIGKILL, context, "--remedy"
    )
    chaos_health = _client(port).health()
    _drain(proc, context)
    if restarts != 1:
        raise InternalError(f"{context}: armed crash fired {restarts} times")
    if chaos_health["stream"]["digest"] != clean_health["stream"]["digest"]:
        raise InternalError(
            f"{context}: digests diverge across the crash "
            f"({chaos_health['stream']['digest']} vs "
            f"{clean_health['stream']['digest']})"
        )
    if _replay_stdout(chaos_dir) != clean_replay:
        raise InternalError(
            f"{context}: replay (including remedy batches) diverges from the "
            "uninterrupted --remedy run"
        )
    n_remedies = sum(
        1 for a in acked.values() if a.get("remedy", {}).get("status") == REMEDY_APPLIED
    )
    if n_remedies != len(applied):
        raise InternalError(
            f"{context}: {n_remedies} remedies across the crash vs "
            f"{len(applied)} in the clean run"
        )


def run_drain(tmp: Path, schema: Path, batches_path: Path, clean: bytes) -> None:
    """SIGTERM mid-life: drain cleanly, refuse new work, replay clean."""
    context = "graceful drain"
    stream_dir = tmp / "drain"
    _init(stream_dir, schema)
    proc, port = _start_server(stream_dir)
    for batch_id, deltas in read_batches_file(batches_path):
        _client(port).ingest(batch_id, deltas)
    _drain(proc, context)
    try:
        _client(port).health()
    except TransportError:
        pass
    else:
        raise InternalError(f"{context}: drained server still answers")
    if _replay_stdout(stream_dir) != clean:
        raise InternalError(
            f"{context}: replay after drain diverges from direct ingest"
        )
    _assert_no_orphans(stream_dir, context)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``make serve-chaos``."""
    parser = argparse.ArgumentParser(
        description="audit-gateway chaos smoke (kills mid-ingest, mid-fetch, "
        "mid-remedy; graceful drain)"
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-serve-chaos-") as tmpname:
        tmp = Path(tmpname)
        schema, batches = write_workload(tmp, seed=args.seed)
        clean = run_clean(tmp, schema, batches)

        run_gateway_crash(
            tmp, schema, batches, clean, CRASH_SIGKILL, "post-append"
        )
        run_gateway_crash(tmp, schema, batches, clean, CRASH_EXIT, "pre-apply")
        print(
            "serve-chaos ok: SIGKILL/exit mid-ingest recovered; every batch "
            "acked once, victim deduped, replay byte-identical to direct "
            "ingest, no orphan segments"
        )
        run_fetch_crash(tmp, schema)
        print(
            "serve-chaos ok: SIGKILL mid-fetch left only a .tmp-* staging "
            "dir; retry installed the store sha256-verified with no "
            "leftovers and no stale leases"
        )
        run_remedy_crash(tmp, schema, batches)
        print(
            "serve-chaos ok: SIGKILLed --remedy gateway converged to the "
            "uninterrupted run's digest; automated remedies replayed "
            "byte-identically"
        )
        run_drain(tmp, schema, batches, clean)
        print(
            "serve-chaos ok: SIGTERM drained cleanly (exit 0), the port went "
            "quiet, and the journal replays clean"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
