"""Deterministic circuit breaker for supervised automated actions.

The classic three-state machine — with one twist that matters for this
repo's byte-identity story: the open-state cooldown is counted in **denied
calls**, not wall-clock seconds.  R009 keeps wall-clock out of result
paths, and a breaker that reopens "after 30s" makes every chaos drill and
property test timing-dependent.  Counting denials instead gives the same
protection (the caller backs off between calls anyway) while making every
transition a pure function of the call/outcome sequence:

* **closed** — calls flow; ``failure_threshold`` *consecutive* failures
  trip the breaker open (one success resets the streak);
* **open** — calls are denied; after ``probe_after`` denials the breaker
  moves to half-open;
* **half-open** — exactly one probe call is allowed; success closes the
  breaker, failure re-opens it (cooldown restarts).

:meth:`CircuitBreaker.allow` answers "may this call proceed?" and advances
the cooldown; the caller reports the outcome with
:meth:`~CircuitBreaker.record_success` / :meth:`~CircuitBreaker.record_failure`.
:meth:`~CircuitBreaker.guard` raises a typed
:class:`~repro.errors.CircuitOpenError` instead, for call sites that want
the taxonomy to do the talking.
"""

from __future__ import annotations

from repro.errors import CircuitOpenError, ServeError
from repro.obs import trace as obs

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with a denial-counted cooldown."""

    def __init__(self, failure_threshold: int = 3, probe_after: int = 2):
        if failure_threshold < 1:
            raise ServeError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if probe_after < 1:
            raise ServeError(f"probe_after must be >= 1, got {probe_after}")
        self.failure_threshold = failure_threshold
        self.probe_after = probe_after
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self._denials_left = 0
        self._probe_in_flight = False
        self.total_successes = 0
        self.total_failures = 0
        self.total_denied = 0

    # -- gate -------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether the next call may proceed; advances the open cooldown."""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            self._denials_left -= 1
            self.total_denied += 1
            if self._denials_left <= 0:
                self._transition(BREAKER_HALF_OPEN)
            return False
        # half-open: admit exactly one probe at a time.
        if self._probe_in_flight:
            self.total_denied += 1
            return False
        self._probe_in_flight = True
        return True

    def guard(self) -> None:
        """Raise :class:`~repro.errors.CircuitOpenError` unless a call may
        proceed (typed form of :meth:`allow` for the status taxonomy)."""
        if not self.allow():
            raise CircuitOpenError(
                f"remedy circuit breaker is {self.state} after "
                f"{self.consecutive_failures} consecutive failure(s); "
                f"probe in {max(self._denials_left, 0)} denial(s)"
            )

    # -- outcomes ---------------------------------------------------------------
    def record_success(self) -> None:
        """A permitted call succeeded; half-open probes close the breaker."""
        self.total_successes += 1
        self.consecutive_failures = 0
        if self.state == BREAKER_HALF_OPEN:
            self._probe_in_flight = False
            self._transition(BREAKER_CLOSED)

    def record_failure(self) -> None:
        """A permitted call failed; trips or re-opens the breaker."""
        self.total_failures += 1
        self.consecutive_failures += 1
        if self.state == BREAKER_HALF_OPEN:
            self._probe_in_flight = False
            self._open()
        elif (
            self.state == BREAKER_CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._open()

    def _open(self) -> None:
        self._denials_left = self.probe_after
        self._transition(BREAKER_OPEN)

    def _transition(self, state: str) -> None:
        obs.event("serve.breaker", state=state, failures=self.total_failures)
        self.state = state

    # -- introspection ----------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe state for the health endpoint and the chaos oracle."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "total_successes": self.total_successes,
            "total_failures": self.total_failures,
            "total_denied": self.total_denied,
        }


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "CircuitBreaker",
]
