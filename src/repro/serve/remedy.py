"""Drift-triggered remedy controller: automated, supervised, journalled.

When the stream's :class:`~repro.stream.monitor.DriftMonitor` raises new
alarms, the controller runs the paper's remedy (Algorithm 2, via
:func:`repro.core.remedy_dataset`) over the *current* audited state and
feeds the outcome back into the stream as one ordinary delta batch.  Three
properties make this safe to automate:

* **Atomic and replayable** — the remedy lands in the journal as a single
  ``append_batch`` record under the sha chain, exactly like a producer
  batch.  Either the whole remedy is durable or none of it is; recovery
  replays it byte-identically, and a crash between journal and ack is
  healed by the deterministic batch id (``remedy-w<watermark>``) hitting
  the duplicate-batch dedup on retry.  No partial remedy is ever visible.
* **Supervised** — the call is wrapped in a
  :class:`~repro.serve.breaker.CircuitBreaker`: a remedy that keeps
  failing trips the breaker open instead of hammering the engine, the
  auditor keeps serving reads throughout, and a bounded ``budget`` caps
  how many automated remedies one controller will ever journal.
* **Label-only** — the controller speaks the *massaging* technique, the
  one sampler whose effect is purely ``with_labels`` on the same rows.
  That makes the translation back into deltas exact: positional diff of
  labels before/after, mapped through
  :meth:`~repro.stream.state.StreamState.alive_row_ids` onto stable row
  ids.  Techniques that add or drop rows have no faithful positional
  mapping onto the stream's id space and are refused with a typed error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core import remedy_dataset
from repro.core.samplers import MASSAGING
from repro.errors import CircuitOpenError, RemedyError, ReproError
from repro.obs import trace as obs
from repro.serve.breaker import CircuitBreaker
from repro.stream.deltas import RelabelDelta
from repro.stream.monitor import ALARM_RAISE

#: Controller outcome statuses (the ``status`` field of :meth:`on_alarms`).
REMEDY_IDLE = "idle"
REMEDY_APPLIED = "applied"
REMEDY_DUPLICATE = "duplicate"
REMEDY_NOOP = "noop"
REMEDY_FAILED = "failed"
REMEDY_OPEN = "open"
REMEDY_BUDGET_EXHAUSTED = "budget-exhausted"


@dataclass(frozen=True)
class RemedyPolicy:
    """Knobs of the automated remedy loop.

    ``budget`` caps journalled remedies over the controller's lifetime;
    ``failure_threshold`` / ``probe_after`` parameterise the breaker;
    ``seed`` feeds ``remedy_dataset`` (combined with the watermark, so two
    remedies at different watermarks draw independent-but-reproducible
    row selections).
    """

    technique: str = MASSAGING
    budget: int = 8
    failure_threshold: int = 3
    probe_after: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.technique != MASSAGING:
            raise RemedyError(
                f"automated remedy supports only {MASSAGING!r} (label-only, "
                f"so the diff maps exactly onto stream row ids); got "
                f"{self.technique!r}"
            )
        if self.budget < 0:
            raise RemedyError(f"budget must be >= 0, got {self.budget}")


class RemedyController:
    """Folds new drift alarms into journalled remedy batches, via a breaker."""

    def __init__(
        self,
        service,
        policy: RemedyPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        remedy_fn: Callable | None = None,
    ):
        self.service = service
        self.policy = policy or RemedyPolicy()
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=self.policy.failure_threshold,
            probe_after=self.policy.probe_after,
        )
        #: Injection seam for the chaos/property tests: same signature as
        #: :meth:`compute_deltas`; faults injected here exercise the
        #: breaker without touching the remedy engine.
        self.remedy_fn = remedy_fn or self.compute_deltas
        self.applied = 0

    # -- the remedy itself -------------------------------------------------------
    def compute_deltas(self) -> list[RelabelDelta]:
        """Run ``remedy_dataset`` on the live state; diff into relabels.

        Massaging never reorders, adds, or drops rows, so position ``i``
        of the remedied dataset is position ``i`` of the input and the
        label diff is exact.  A technique that changed the row count
        would break that bijection — guarded here as a hard error.
        """
        state = self.service.auditor.state
        config = self.service.auditor.config
        dataset = state.materialize()
        if dataset.n_rows == 0:
            return []
        result = remedy_dataset(
            dataset,
            config.tau_c,
            T=config.T,
            k=config.k,
            technique=self.policy.technique,
            seed=self.policy.seed + self.service.auditor.watermark,
        )
        if result.dataset.n_rows != dataset.n_rows:
            raise RemedyError(
                f"technique {self.policy.technique!r} changed the row count "
                f"({dataset.n_rows} -> {result.dataset.n_rows}); label-only "
                "remedies are required on a stream"
            )
        alive_ids = state.alive_row_ids()
        changed = np.flatnonzero(result.dataset.y != dataset.y)
        return [
            RelabelDelta(
                row=int(alive_ids[i]), label=int(result.dataset.y[i])
            )
            for i in changed
        ]

    # -- the supervised loop -----------------------------------------------------
    def on_alarms(self, events) -> dict:
        """React to one batch's alarm events; returns a JSON-safe outcome.

        Only *raise* events trigger a remedy (clears are good news).  The
        outcome never raises: ingest must keep succeeding whatever the
        remedy engine does — that is the whole point of the breaker.
        """
        raised = [e for e in events if e.kind == ALARM_RAISE]
        if not raised:
            return {"status": REMEDY_IDLE}
        if self.applied >= self.policy.budget:
            return {"status": REMEDY_BUDGET_EXHAUSTED, "budget": self.policy.budget}
        try:
            self.breaker.guard()
        except CircuitOpenError as exc:
            obs.count("serve.remedy_denied")
            return {"status": REMEDY_OPEN, "message": str(exc)}
        # Deterministic id: derived from journal state, so a crash between
        # journal and ack dedups on retry instead of double-applying.
        batch_id = f"remedy-w{self.service.auditor.watermark}"
        try:
            with obs.span("serve.remedy", batch=batch_id, alarms=len(raised)):
                deltas = self.remedy_fn()
                if not deltas:
                    self.breaker.record_success()
                    return {"status": REMEDY_NOOP, "batch": batch_id}
                if not self.service.submit(batch_id, deltas):
                    # Journalled by a previous life of this controller.
                    self.breaker.record_success()
                    return {"status": REMEDY_DUPLICATE, "batch": batch_id}
                self.service.drain()
        except ReproError as exc:
            self.breaker.record_failure()
            obs.count("serve.remedy_failures")
            return {
                "status": REMEDY_FAILED,
                "batch": batch_id,
                "error": type(exc).__name__,
                "message": str(exc),
            }
        self.breaker.record_success()
        self.applied += 1
        obs.count("serve.remedies_applied")
        return {
            "status": REMEDY_APPLIED,
            "batch": batch_id,
            "n_deltas": len(deltas),
            "budget_left": self.policy.budget - self.applied,
        }


__all__ = [
    "REMEDY_APPLIED",
    "REMEDY_BUDGET_EXHAUSTED",
    "REMEDY_DUPLICATE",
    "REMEDY_FAILED",
    "REMEDY_IDLE",
    "REMEDY_NOOP",
    "REMEDY_OPEN",
    "RemedyController",
    "RemedyPolicy",
]
