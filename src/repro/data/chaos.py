"""Chaos smoke for the sharded dataset plane: verified storage, proven.

``make data-chaos`` (and the CI ``data-verify`` stage) attacks the store
write and read paths and asserts the registry's two contracts:

* **corruption is loud and named** — flip one byte (or truncate) any shard
  file of a verified store and ``repro data verify`` must fail with a typed
  :class:`~repro.errors.StoreCorruptionError` (CLI exit 2) whose message
  names the offending shard file;
* **materialisation is all-or-nothing** — SIGKILL a ``repro data
  materialize`` subprocess between shard writes (armed via the
  ``REPRO_DATA_CHAOS=kill_after_shard:<k>`` hook in
  :mod:`repro.data.store.registry`) and the registry must show **no partial
  entry**: ``list``/``verify`` never see the torso, ``prune`` sweeps the
  orphaned ``.tmp-*`` directory, and re-materialising the same name
  succeeds and verifies.

Plus the refcount drill: an entry leased by a live process survives
``prune`` until the lease is released (or ``--force``).

Run directly::

    PYTHONPATH=src python -m repro.data.chaos
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.data.store.registry import CHAOS_ENV, Registry
from repro.errors import InternalError, StoreCorruptionError

ROWS = 20_000
SHARD_ROWS = 4_000
CHAOS_TIMEOUT = 120.0
VICTIM_SHARD = 2


def _data_cmd(*tail: str) -> list[str]:
    return [sys.executable, "-m", "repro", "data", *tail]


def _run(
    cmd: list[str], env_extra: dict | None = None, check: bool = True
) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env.pop(CHAOS_ENV, None)
    if env_extra:
        env.update(env_extra)
    proc = subprocess.run(
        cmd, capture_output=True, env=env, timeout=CHAOS_TIMEOUT
    )
    if check and proc.returncode != 0:
        raise InternalError(
            f"command {cmd[3:]} failed (exit {proc.returncode}): "
            f"{proc.stderr.decode(errors='replace')}"
        )
    return proc


def _materialize(root: Path, name: str, env_extra: dict | None = None,
                 check: bool = True) -> subprocess.CompletedProcess:
    return _run(
        _data_cmd(
            "materialize", name, "--root", str(root),
            "--rows", str(ROWS), "--shard-rows", str(SHARD_ROWS),
        ),
        env_extra=env_extra,
        check=check,
    )


# -- scenarios --------------------------------------------------------------------

def run_corruption(root: Path) -> None:
    """Flip one byte in a shard; verify must fail loudly, naming the shard."""
    _materialize(root, "flip")
    _run(_data_cmd("verify", "flip", "--root", str(root)))

    victim = root / "flip" / f"shard-{VICTIM_SHARD:05d}" / "c0000.npy"
    blob = bytearray(victim.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    victim.write_bytes(bytes(blob))

    # CLI contract: exit 2, stderr names the shard file.
    proc = _run(_data_cmd("verify", "flip", "--root", str(root)), check=False)
    stderr = proc.stderr.decode(errors="replace")
    if proc.returncode != 2:
        raise InternalError(
            f"verify of a bit-flipped shard exited {proc.returncode}, "
            f"expected 2; stderr: {stderr}"
        )
    needle = f"shard-{VICTIM_SHARD:05d}/c0000.npy"
    if needle not in stderr or "sha256 mismatch" not in stderr:
        raise InternalError(
            f"verify error does not name the corrupt shard {needle!r}: {stderr}"
        )

    # Typed contract: the in-process API raises StoreCorruptionError.
    try:
        Registry(root).verify("flip")
    except StoreCorruptionError as exc:
        if needle not in str(exc):
            raise InternalError(
                f"StoreCorruptionError does not name {needle!r}: {exc}"
            ) from exc
    else:
        raise InternalError(
            "Registry.verify accepted a bit-flipped shard file"
        )

    # Truncation is a distinct detector (size precedes hashing) — same story.
    victim.write_bytes(victim.read_bytes()[:-16])
    try:
        Registry(root).verify("flip")
    except StoreCorruptionError as exc:
        if needle not in str(exc):
            raise InternalError(
                f"truncation error does not name {needle!r}: {exc}"
            ) from exc
    else:
        raise InternalError("Registry.verify accepted a truncated shard file")
    _run(_data_cmd("prune", "flip", "--root", str(root)))


def run_torn_materialize(root: Path) -> None:
    """SIGKILL materialize between shards; no partial entry may surface."""
    proc = _materialize(
        root,
        "torn",
        env_extra={CHAOS_ENV: f"kill_after_shard:{VICTIM_SHARD}"},
        check=False,
    )
    if proc.returncode != -signal.SIGKILL:
        raise InternalError(
            f"armed materialize exited {proc.returncode}, expected "
            f"{-signal.SIGKILL} (SIGKILL)"
        )

    registry = Registry(root)
    if "torn" in registry.names():
        raise InternalError(
            "a SIGKILLed materialize left a partial entry visible in list()"
        )
    orphans = registry.tmp_dirs()
    if not orphans:
        raise InternalError(
            "the SIGKILLed materialize left no .tmp-* directory — the kill "
            "window was never entered"
        )
    # verify-all must not see the torso either.
    _run(_data_cmd("verify", "--root", str(root)))

    swept = registry.prune()["swept"]
    if not swept:
        raise InternalError("prune failed to sweep the orphaned .tmp-* dir")
    if registry.tmp_dirs():
        raise InternalError("orphaned .tmp-* dirs survived prune")

    # The name is reusable: a clean re-materialize must succeed and verify.
    _materialize(root, "torn")
    report = Registry(root).verify("torn")
    if report["n_rows"] != ROWS:
        raise InternalError(
            f"re-materialized store has {report['n_rows']} rows, "
            f"expected {ROWS}"
        )
    _run(_data_cmd("prune", "torn", "--root", str(root)))


def run_lease_protection(root: Path) -> None:
    """A live lease pins an entry against prune; releasing it unpins."""
    _materialize(root, "leased")
    registry = Registry(root)
    handle = registry.open("leased", lease=True)
    try:
        report = registry.prune(["leased"])
        if report["removed"] or "leased" not in report["kept"]:
            raise InternalError(
                f"prune deleted a leased entry: {report}"
            )
    finally:
        handle.close()
    report = registry.prune(["leased"])
    if report["removed"] != ["leased"]:
        raise InternalError(
            f"prune kept an unleased entry after close(): {report}"
        )


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``make data-chaos``."""
    parser = argparse.ArgumentParser(
        description="sharded-store chaos smoke (bit flips, torn writes, leases)"
    )
    parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-data-chaos-") as tmpname:
        root = Path(tmpname) / "registry"
        run_corruption(root)
        print(
            "data-chaos ok: bit flip and truncation both failed verify with "
            "a typed error naming the corrupt shard file (CLI exit 2)"
        )
        run_torn_materialize(root)
        print(
            "data-chaos ok: SIGKILLed materialize left no partial entry; "
            "prune swept the .tmp-* orphan and the name re-materialized clean"
        )
        run_lease_protection(root)
        print(
            "data-chaos ok: a live lease pinned its entry through prune; "
            "close() released it for deletion"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
