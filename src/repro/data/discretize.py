"""Bucketisation of numeric columns into categorical ones.

The paper's protected attributes must be categorical ("categorical (or
discretized) value from a finite data domain", §II-A).  These helpers convert
a numeric column of a :class:`~repro.data.Dataset` into a categorical column
whose ordered domain reflects the bin order, so the neighbouring-region
distance can optionally exploit the ordering.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import CATEGORICAL, Column, Schema
from repro.errors import DataError, SchemaError


def equal_width_edges(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Interior edges of ``n_bins`` equal-width bins over ``values``."""
    if n_bins < 2:
        raise DataError("need at least 2 bins")
    lo, hi = float(np.min(values)), float(np.max(values))
    if lo == hi:
        raise DataError("cannot bin a constant column")
    return np.linspace(lo, hi, n_bins + 1)[1:-1]


def quantile_edges(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Interior edges of ``n_bins`` (approximately) equal-count bins."""
    if n_bins < 2:
        raise DataError("need at least 2 bins")
    qs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    edges = np.quantile(values, qs)
    if len(np.unique(edges)) != len(edges):
        raise DataError(
            "quantile edges are not distinct; reduce n_bins or use equal width"
        )
    return edges


def default_bin_labels(edges: Sequence[float]) -> tuple[str, ...]:
    """Human-readable interval labels for a set of interior edges."""
    edges = list(edges)
    labels = [f"<{edges[0]:g}"]
    labels.extend(
        f"[{edges[i]:g}-{edges[i + 1]:g})" for i in range(len(edges) - 1)
    )
    labels.append(f">={edges[-1]:g}")
    return tuple(labels)


def bucketize(
    dataset: Dataset,
    name: str,
    edges: Sequence[float],
    labels: Sequence[str] | None = None,
) -> Dataset:
    """Replace numeric column ``name`` with a categorical binned version.

    ``edges`` are the interior cut points: a value ``v`` falls in bin ``i``
    where ``i`` counts how many edges are ``<= v``.  The resulting domain has
    ``len(edges) + 1`` ordered values.
    """
    col = dataset.schema[name]
    if col.is_categorical:
        raise SchemaError(f"column {name!r} is already categorical")
    edges = np.asarray(sorted(edges), dtype=np.float64)
    if edges.size == 0:
        raise DataError("need at least one edge")
    if labels is None:
        labels = default_bin_labels(edges)
    if len(labels) != edges.size + 1:
        raise DataError(
            f"need {edges.size + 1} labels for {edges.size} edges, got {len(labels)}"
        )
    codes = np.searchsorted(edges, dataset.column(name), side="right")

    new_cols = []
    arrays = {}
    for c in dataset.schema:
        if c.name == name:
            new_cols.append(Column(name, CATEGORICAL, tuple(labels)))
            arrays[name] = codes
        else:
            new_cols.append(c)
            arrays[c.name] = dataset.column(c.name)
    return Dataset(Schema(new_cols), arrays, dataset.y, dataset.protected)


def bucketize_uniform(dataset: Dataset, name: str, n_bins: int) -> Dataset:
    """Equal-width bucketisation convenience wrapper."""
    return bucketize(dataset, name, equal_width_edges(dataset.column(name), n_bins))


def bucketize_quantile(dataset: Dataset, name: str, n_bins: int) -> Dataset:
    """Quantile bucketisation convenience wrapper."""
    return bucketize(dataset, name, quantile_edges(dataset.column(name), n_bins))
