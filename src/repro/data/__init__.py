"""Tabular substrate: columnar datasets, schemas, splitting, discretisation."""

from repro.data.dataset import Dataset, concat
from repro.data.discretize import (
    bucketize,
    bucketize_quantile,
    bucketize_uniform,
    default_bin_labels,
    equal_width_edges,
    quantile_edges,
)
from repro.data.io import atomic_write_json, atomic_write_text, read_csv, write_csv
from repro.data.schema_io import read_schema, schema_from_dict, schema_to_dict, write_schema
from repro.data.schema import CATEGORICAL, NUMERIC, Column, Schema, schema_from_domains
from repro.data.split import kfold_indices, train_test_split
from repro.data.summary import DatasetSummary, summarize_dataset, summary_table

__all__ = [
    "Dataset",
    "concat",
    "Schema",
    "Column",
    "schema_from_domains",
    "CATEGORICAL",
    "NUMERIC",
    "train_test_split",
    "kfold_indices",
    "bucketize",
    "bucketize_uniform",
    "bucketize_quantile",
    "equal_width_edges",
    "quantile_edges",
    "default_bin_labels",
    "read_csv",
    "write_csv",
    "atomic_write_text",
    "atomic_write_json",
    "read_schema",
    "write_schema",
    "schema_to_dict",
    "schema_from_dict",
    "summarize_dataset",
    "summary_table",
    "DatasetSummary",
]
