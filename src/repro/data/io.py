"""CSV round-trip for :class:`~repro.data.Dataset`.

A dataset is persisted as a plain CSV whose first row is the header
(column names plus a trailing ``label`` column).  Categorical cells are
written as their string labels, numeric cells as decimal floats.  Reading
requires the target :class:`~repro.data.schema.Schema` so the categorical
domains (and their order, which drives neighbour distances) are explicit
rather than inferred.
"""

from __future__ import annotations

import contextlib
import csv
import json
import os
import tempfile
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.errors import DataError, SchemaError

LABEL_COLUMN = "label"


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The content is first written to a temporary file in the same directory
    (so the rename never crosses a filesystem boundary), fsynced, then moved
    over ``path`` in one atomic step.  A process killed mid-write therefore
    leaves either the old file or the new one — never a truncated mix.
    Checkpoints, baselines, schemas and audit trails all go through here.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
    finally:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)


def atomic_write_json(path: str | Path, payload: object, indent: int = 2) -> None:
    """Serialise ``payload`` to JSON and write it atomically via
    :func:`atomic_write_text` (with a trailing newline)."""
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")


def write_csv(dataset: Dataset, path: str | Path) -> None:
    """Write ``dataset`` (including labels) to ``path`` as CSV."""
    path = Path(path)
    names = dataset.schema.names
    decoded = {}
    for name in names:
        col = dataset.schema[name]
        if col.is_categorical:
            decoded[name] = dataset.labels_of(name)
        else:
            decoded[name] = dataset.column(name)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(names) + [LABEL_COLUMN])
        for i in range(dataset.n_rows):
            row = [decoded[name][i] for name in names]
            writer.writerow(row + [int(dataset.y[i])])


MISSING_TOKENS = ("", "?", "NA", "N/A", "null", "None")


def read_csv(
    path: str | Path,
    schema: Schema,
    protected: Sequence[str] = (),
    on_bad_value: str = "error",
    missing_tokens: Sequence[str] = MISSING_TOKENS,
) -> Dataset:
    """Read a CSV written by :func:`write_csv` back into a dataset.

    ``on_bad_value`` controls what happens to rows whose cells are missing
    (one of ``missing_tokens``), outside a categorical domain, or not
    parseable as a number:

    * ``"error"`` (default) — raise :class:`~repro.errors.DataError` with
      the offending line number;
    * ``"drop"`` — skip such rows, reproducing the paper's "removing any
      missing values" preprocessing step.
    """
    if on_bad_value not in ("error", "drop"):
        raise DataError(
            f"on_bad_value must be 'error' or 'drop', got {on_bad_value!r}"
        )
    missing = set(missing_tokens)
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        expected = list(schema.names) + [LABEL_COLUMN]
        if header != expected:
            raise DataError(
                f"{path} header {header} does not match schema columns {expected}"
            )
        columns: dict[str, list[float]] = {name: [] for name in schema.names}
        y: list[int] = []
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(expected):
                raise DataError(
                    f"{path}:{line_no}: expected {len(expected)} fields, got {len(row)}"
                )
            try:
                parsed: dict[str, float] = {}
                for name, cell in zip(schema.names, row):
                    if cell in missing:
                        raise DataError(f"{path}:{line_no}: missing value in {name!r}")
                    col = schema[name]
                    if col.is_categorical:
                        parsed[name] = col.code_of(cell)
                    else:
                        try:
                            parsed[name] = float(cell)
                        except ValueError:
                            raise DataError(
                                f"{path}:{line_no}: {cell!r} is not numeric ({name!r})"
                            ) from None
                label_cell = row[-1]
                if label_cell in missing:
                    raise DataError(f"{path}:{line_no}: missing label")
                label = int(label_cell)
            except (DataError, SchemaError, ValueError):
                if on_bad_value == "drop":
                    continue
                raise
            for name, value in parsed.items():
                columns[name].append(value)
            y.append(label)
    arrays = {name: np.asarray(vals) for name, vals in columns.items()}
    return Dataset(schema, arrays, np.asarray(y), protected)
