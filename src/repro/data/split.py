"""Train/test splitting.

The paper randomly splits each dataset 70/30; the test set is never remedied
(§V-A.a).  The split here is seeded for reproducibility and supports
stratification on the label so small datasets keep both classes on each side.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.errors import DataError


def train_test_split(
    dataset: Dataset,
    test_fraction: float = 0.3,
    seed: int = 0,
    stratify: bool = True,
) -> tuple[Dataset, Dataset]:
    """Split ``dataset`` into ``(train, test)``.

    Parameters
    ----------
    test_fraction:
        Fraction of rows assigned to the test side, in (0, 1).
    seed:
        Seed for the permutation; identical inputs give identical splits.
    stratify:
        When True (default) the split preserves the positive/negative ratio
        by splitting each class independently.
    """
    if not 0.0 < test_fraction < 1.0:
        raise DataError(f"test_fraction must be in (0, 1), got {test_fraction}")
    if dataset.n_rows < 2:
        raise DataError("need at least two rows to split")
    rng = np.random.default_rng(seed)

    if stratify:
        test_idx_parts = []
        for label in (0, 1):
            idx = np.flatnonzero(dataset.y == label)
            rng.shuffle(idx)
            n_test = int(round(len(idx) * test_fraction))
            test_idx_parts.append(idx[:n_test])
        test_idx = np.concatenate(test_idx_parts)
    else:
        idx = rng.permutation(dataset.n_rows)
        test_idx = idx[: int(round(dataset.n_rows * test_fraction))]

    is_test = np.zeros(dataset.n_rows, dtype=bool)
    is_test[test_idx] = True
    train, test = dataset.take(~is_test), dataset.take(is_test)
    if train.n_rows == 0 or test.n_rows == 0:
        raise DataError("split produced an empty side; adjust test_fraction")
    return train, test


def kfold_indices(n_rows: int, n_folds: int, seed: int = 0) -> list[np.ndarray]:
    """Shuffled fold index arrays for k-fold cross-validation."""
    if n_folds < 2:
        raise DataError("need at least 2 folds")
    if n_folds > n_rows:
        raise DataError(f"cannot make {n_folds} folds from {n_rows} rows")
    rng = np.random.default_rng(seed)
    idx = rng.permutation(n_rows)
    return [fold for fold in np.array_split(idx, n_folds)]
