"""Schema objects describing the columns of a :class:`~repro.data.Dataset`.

A schema is an ordered list of :class:`Column` descriptors.  Categorical
columns carry an explicit, ordered value *domain*; cell values are stored as
integer codes indexing into that domain.  Numeric columns store ``float64``
values directly.  The paper's method operates on categorical (or discretised)
protected attributes, so the domain order also defines the unit spacing used
by the neighbouring-region distance (Definition 4 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError

CATEGORICAL = "categorical"
NUMERIC = "numeric"
_KINDS = (CATEGORICAL, NUMERIC)


@dataclass(frozen=True)
class Column:
    """Description of one dataset column.

    Parameters
    ----------
    name:
        Column name, unique within a schema.
    kind:
        Either ``"categorical"`` or ``"numeric"``.
    domain:
        For categorical columns, the ordered tuple of value labels.  Cell
        values are integer codes into this tuple.  Must be empty for numeric
        columns.
    """

    name: str
    kind: str = CATEGORICAL
    domain: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.kind not in _KINDS:
            raise SchemaError(
                f"column {self.name!r}: kind must be one of {_KINDS}, got {self.kind!r}"
            )
        if self.kind == CATEGORICAL:
            if len(self.domain) < 1:
                raise SchemaError(
                    f"categorical column {self.name!r} needs a non-empty domain"
                )
            if len(set(self.domain)) != len(self.domain):
                raise SchemaError(
                    f"categorical column {self.name!r} has duplicate domain values"
                )
        elif self.domain:
            raise SchemaError(f"numeric column {self.name!r} must not have a domain")

    @property
    def cardinality(self) -> int:
        """Number of distinct values (0 for numeric columns)."""
        return len(self.domain)

    @property
    def is_categorical(self) -> bool:
        return self.kind == CATEGORICAL

    def code_of(self, label: str) -> int:
        """Return the integer code of ``label`` in this column's domain."""
        try:
            return self.domain.index(label)
        except ValueError:
            raise SchemaError(
                f"value {label!r} not in domain of column {self.name!r}: {self.domain}"
            ) from None

    def label_of(self, code: int) -> str:
        """Return the label for integer ``code``."""
        if not 0 <= code < len(self.domain):
            raise SchemaError(
                f"code {code} out of range for column {self.name!r} "
                f"(cardinality {len(self.domain)})"
            )
        return self.domain[code]


class Schema:
    """An ordered, name-indexed collection of :class:`Column` objects."""

    def __init__(self, columns: Iterable[Column]):
        self._columns: tuple[Column, ...] = tuple(columns)
        names = [c.name for c in self._columns]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names in schema: {dupes}")
        self._by_name: dict[str, Column] = {c.name: c for c in self._columns}

    # -- container protocol -------------------------------------------------
    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; schema has {self.names}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __repr__(self) -> str:
        cols = ", ".join(
            f"{c.name}:{c.kind}" + (f"[{c.cardinality}]" if c.is_categorical else "")
            for c in self._columns
        )
        return f"Schema({cols})"

    # -- accessors ----------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    @property
    def categorical_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._columns if c.is_categorical)

    @property
    def numeric_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._columns if not c.is_categorical)

    def require(self, names: Sequence[str]) -> None:
        """Raise :class:`SchemaError` unless every name exists in the schema."""
        missing = [n for n in names if n not in self._by_name]
        if missing:
            raise SchemaError(f"unknown columns {missing}; schema has {self.names}")

    def require_categorical(self, names: Sequence[str]) -> None:
        """Raise unless every name exists and is categorical."""
        self.require(names)
        bad = [n for n in names if not self._by_name[n].is_categorical]
        if bad:
            raise SchemaError(f"columns {bad} are not categorical")

    def cardinalities(self, names: Sequence[str]) -> tuple[int, ...]:
        """Cardinalities of the given categorical columns, in the given order."""
        self.require_categorical(names)
        return tuple(self._by_name[n].cardinality for n in names)

    def subset(self, names: Sequence[str]) -> "Schema":
        """A new schema containing only ``names``, in the given order."""
        self.require(names)
        return Schema(self._by_name[n] for n in names)


def schema_from_domains(domains: Mapping[str, Sequence[str]]) -> Schema:
    """Build an all-categorical schema from a ``{name: labels}`` mapping.

    Convenience used heavily by tests and synthetic generators.
    """
    return Schema(
        Column(name, CATEGORICAL, tuple(labels)) for name, labels in domains.items()
    )
