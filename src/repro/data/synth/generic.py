"""Seeded synthetic-dataset generator with planted representation bias.

The paper's experiments run on Adult / ProPublica COMPAS / Law School.  Those
files cannot be downloaded in this environment, so each is rebuilt by a
generator that reproduces its schema, approximate marginals and — the part
the method actually depends on — *region-level class-ratio skew*: specific
intersectional regions of the protected attributes receive a positive rate
far from their surroundings, which is exactly the "biased sample collection"
(Implicit Biased Set) mechanism of §II-B.

Generation proceeds in three stages:

1. sample every categorical column independently from its marginal,
2. assign each row a positive probability — the base rate, overridden by the
   last matching :class:`BiasInjection` — and draw the binary label,
3. re-draw *signal* columns conditioned on the label (tilted categorical
   marginals; class-conditional Gaussians for numeric columns) so that an
   accuracy-optimised classifier has genuine predictive signal to learn, on
   top of which the planted region bias induces subgroup FPR/FNR divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import CATEGORICAL, NUMERIC, Column, Schema
from repro.errors import DataError


@dataclass(frozen=True)
class CategoricalSpec:
    """A categorical column to generate.

    Parameters
    ----------
    name / labels:
        Column identity and ordered value domain.
    marginal:
        Sampling probabilities, one per label (normalised if needed).
    signal:
        Label association strength in [0, 1).  With signal ``s`` the
        label-conditional distribution is tilted linearly along the code
        axis: higher codes become more likely under ``y=1`` and less likely
        under ``y=0``.  ``0`` means the column is independent of the label.
    """

    name: str
    labels: tuple[str, ...]
    marginal: tuple[float, ...]
    signal: float = 0.0

    def __post_init__(self) -> None:
        if len(self.labels) != len(self.marginal):
            raise DataError(
                f"column {self.name!r}: {len(self.labels)} labels but "
                f"{len(self.marginal)} marginal probabilities"
            )
        if len(self.labels) < 1:
            raise DataError(f"column {self.name!r} needs at least one label")
        if any(p < 0 for p in self.marginal) or sum(self.marginal) <= 0:
            raise DataError(f"column {self.name!r}: invalid marginal")
        if not 0.0 <= self.signal < 1.0:
            raise DataError(f"column {self.name!r}: signal must be in [0, 1)")

    def probs(self) -> np.ndarray:
        p = np.asarray(self.marginal, dtype=np.float64)
        return p / p.sum()

    def conditional_probs(self, label: int) -> np.ndarray:
        """Marginal tilted by ``signal`` for the given label."""
        p = self.probs()
        if self.signal == 0.0 or len(self.labels) == 1:
            return p
        k = len(self.labels)
        # Linear tilt along the code axis, centred so the tilt sums to zero.
        axis = (np.arange(k) - (k - 1) / 2.0) / max((k - 1) / 2.0, 1.0)
        direction = axis if label == 1 else -axis
        tilted = p * (1.0 + self.signal * direction)
        tilted = np.clip(tilted, 1e-12, None)
        return tilted / tilted.sum()


@dataclass(frozen=True)
class NumericSpec:
    """A numeric column drawn from class-conditional Gaussians."""

    name: str
    mean_negative: float
    mean_positive: float
    std: float = 1.0

    def __post_init__(self) -> None:
        if self.std <= 0:
            raise DataError(f"column {self.name!r}: std must be positive")


@dataclass(frozen=True)
class BiasInjection:
    """Override the positive rate inside one intersectional region.

    ``assignment`` maps column names to *labels*; rows matching the full
    conjunction get ``positive_rate`` as their Bernoulli parameter.  When
    several injections match a row, the one listed last wins — list the most
    specific regions last.
    """

    assignment: Mapping[str, str]
    positive_rate: float

    def __post_init__(self) -> None:
        if not self.assignment:
            raise DataError("bias injection needs a non-empty assignment")
        if not 0.0 <= self.positive_rate <= 1.0:
            raise DataError(
                f"positive_rate must be in [0, 1], got {self.positive_rate}"
            )


@dataclass(frozen=True)
class GeneratorConfig:
    """Full recipe for one synthetic dataset."""

    n_rows: int
    categorical: tuple[CategoricalSpec, ...]
    numeric: tuple[NumericSpec, ...] = ()
    protected: tuple[str, ...] = ()
    base_positive_rate: float = 0.5
    injections: tuple[BiasInjection, ...] = ()
    label_noise: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_rows < 1:
            raise DataError("n_rows must be positive")
        if not 0.0 < self.base_positive_rate < 1.0:
            raise DataError("base_positive_rate must be in (0, 1)")
        if not 0.0 <= self.label_noise < 0.5:
            raise DataError("label_noise must be in [0, 0.5)")
        names = [c.name for c in self.categorical] + [n.name for n in self.numeric]
        if len(set(names)) != len(names):
            raise DataError("duplicate column names in generator config")
        cat_names = {c.name for c in self.categorical}
        missing = [p for p in self.protected if p not in cat_names]
        if missing:
            raise DataError(f"protected columns {missing} are not categorical specs")
        for inj in self.injections:
            bad = [a for a in inj.assignment if a not in cat_names]
            if bad:
                raise DataError(f"injection references unknown columns {bad}")


def build_schema(config: GeneratorConfig) -> Schema:
    """Schema implied by a generator config (categorical first, then numeric)."""
    cols = [Column(c.name, CATEGORICAL, c.labels) for c in config.categorical]
    cols.extend(Column(n.name, NUMERIC) for n in config.numeric)
    return Schema(cols)


def generate(config: GeneratorConfig) -> Dataset:
    """Materialise a dataset from ``config`` (deterministic given the seed)."""
    rng = np.random.default_rng(config.seed)
    n = config.n_rows
    schema = build_schema(config)

    # Stage 1: independent categorical draws.
    columns: dict[str, np.ndarray] = {}
    for spec in config.categorical:
        columns[spec.name] = rng.choice(len(spec.labels), size=n, p=spec.probs())

    # Stage 2: positive probability per row — base rate, then injections in
    # order (later injections override earlier ones on the rows they match).
    p_positive = np.full(n, config.base_positive_rate)
    spec_by_name = {c.name: c for c in config.categorical}
    for inj in config.injections:
        match = np.ones(n, dtype=bool)
        for name, label in inj.assignment.items():
            code = spec_by_name[name].labels.index(label)
            match &= columns[name] == code
        p_positive[match] = inj.positive_rate
    y = (rng.random(n) < p_positive).astype(np.int8)
    if config.label_noise > 0.0:
        flip = rng.random(n) < config.label_noise
        y = np.where(flip, 1 - y, y)

    # Stage 3: re-draw signal-bearing columns conditioned on the label.
    for spec in config.categorical:
        if spec.signal > 0.0:
            arr = columns[spec.name]
            for label in (0, 1):
                idx = np.flatnonzero(y == label)
                arr[idx] = rng.choice(
                    len(spec.labels), size=idx.size, p=spec.conditional_probs(label)
                )
    for spec in config.numeric:
        means = np.where(y == 1, spec.mean_positive, spec.mean_negative)
        columns[spec.name] = rng.normal(means, spec.std)

    return Dataset(schema, columns, y, config.protected)


def uniform_marginal(k: int) -> tuple[float, ...]:
    """Uniform marginal over ``k`` values."""
    return tuple([1.0 / k] * k)


def make_scalability_config(
    n_rows: int,
    n_protected: int,
    cardinality: int = 3,
    n_biased_regions: int = 6,
    seed: int = 7,
) -> GeneratorConfig:
    """Config for the Fig. 9 scalability sweeps.

    Builds ``n_protected`` categorical protected attributes of the given
    cardinality, two numeric signal features, and plants ``n_biased_regions``
    random 2-attribute regions with extreme positive rates (alternating high
    and low so both FPR- and FNR-style bias is present).
    """
    if n_protected < 2:
        raise DataError("scalability config needs at least 2 protected attrs")
    rng = np.random.default_rng(seed)
    cats = tuple(
        CategoricalSpec(
            name=f"p{i}",
            labels=tuple(f"v{j}" for j in range(cardinality)),
            marginal=uniform_marginal(cardinality),
        )
        for i in range(n_protected)
    )
    injections = []
    for b in range(n_biased_regions):
        i, j = rng.choice(n_protected, size=2, replace=False)
        assignment = {
            f"p{i}": f"v{int(rng.integers(cardinality))}",
            f"p{j}": f"v{int(rng.integers(cardinality))}",
        }
        rate = 0.9 if b % 2 == 0 else 0.1
        injections.append(BiasInjection(assignment, rate))
    return GeneratorConfig(
        n_rows=n_rows,
        categorical=cats,
        numeric=(
            NumericSpec("score_a", mean_negative=-0.6, mean_positive=0.6, std=1.0),
            NumericSpec("score_b", mean_negative=0.2, mean_positive=-0.2, std=1.0),
        ),
        protected=tuple(f"p{i}" for i in range(n_protected)),
        base_positive_rate=0.45,
        injections=tuple(injections),
        label_noise=0.05,
        seed=seed,
    )
