"""Focused bias scenarios used in examples, ablations and tests.

Each scenario plants one specific pathology the paper discusses, in its
purest form, so the corresponding mechanism can be demonstrated in
isolation:

* :func:`make_checkerboard` — §VI's hiring example: per-attribute rates
  look fair while every intersection is extreme (statistical parity);
* :func:`make_undercoverage` — cells that are *small* but not class-skewed
  (what Coverage [4] fixes and the IBS deliberately does not flag);
* :func:`make_single_biased_region` — exactly one over-positive region in
  an otherwise uniform space (the minimal Hypothesis-1 instance);
* :func:`make_gradient` — class rate rising monotonically along an ordered
  attribute (where the ordinal neighbourhood metric matters).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.synth.generic import (
    BiasInjection,
    CategoricalSpec,
    GeneratorConfig,
    NumericSpec,
    generate,
    uniform_marginal,
)
from repro.errors import DataError


def make_checkerboard(n_rows: int = 8000, seed: int = 17) -> Dataset:
    """Green/purple × male/female hiring data with checkerboard acceptance.

    Acceptance ≈ 50% for (green, female) and (purple, male), ≈ 2% for the
    other two cells, so every single-attribute acceptance rate is ≈ 26%
    while the intersections are maximally disparate — the paper's §VI
    scenario verbatim.
    """
    config = GeneratorConfig(
        n_rows=n_rows,
        categorical=(
            CategoricalSpec("race", ("green", "purple"), (0.5, 0.5)),
            CategoricalSpec("gender", ("male", "female"), (0.5, 0.5)),
            CategoricalSpec(
                "degree", ("none", "bachelor", "master"), (0.3, 0.5, 0.2), signal=0.3
            ),
        ),
        numeric=(NumericSpec("experience", 3.0, 6.0, 3.0),),
        protected=("race", "gender"),
        base_positive_rate=0.25,
        injections=(
            BiasInjection({"race": "green", "gender": "female"}, 0.50),
            BiasInjection({"race": "purple", "gender": "male"}, 0.50),
            BiasInjection({"race": "green", "gender": "male"}, 0.02),
            BiasInjection({"race": "purple", "gender": "female"}, 0.02),
        ),
        label_noise=0.02,
        seed=seed,
    )
    return generate(config)


def make_undercoverage(
    n_rows: int = 3000,
    starved_fraction: float = 0.01,
    seed: int = 29,
) -> Dataset:
    """Two protected attributes with one *under-covered* (but unskewed) cell.

    The cell ``(g=g0, h=h0)`` receives roughly ``starved_fraction`` of its
    proportional share of rows, with the *same* class balance as everywhere
    else.  Coverage-style methods flag it; the IBS must not (no class-ratio
    divergence) — the distinction behind Table III's Coverage row.
    """
    if not 0.0 < starved_fraction <= 1.0:
        raise DataError("starved_fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    g = rng.integers(0, 3, size=n_rows)
    h = rng.integers(0, 3, size=n_rows)
    # Starve the (0, 0) cell by re-rolling most of its rows elsewhere.
    in_cell = (g == 0) & (h == 0)
    reroll = in_cell & (rng.random(n_rows) > starved_fraction)
    g[reroll] = rng.integers(1, 3, size=int(reroll.sum()))
    h[reroll] = rng.integers(0, 3, size=int(reroll.sum()))
    y = (rng.random(n_rows) < 0.4).astype(np.int8)  # uniform class balance

    config_schema = GeneratorConfig(
        n_rows=1,
        categorical=(
            CategoricalSpec("g", ("g0", "g1", "g2"), uniform_marginal(3)),
            CategoricalSpec("h", ("h0", "h1", "h2"), uniform_marginal(3)),
        ),
        protected=("g", "h"),
        seed=seed,
    )
    from repro.data.synth.generic import build_schema

    schema = build_schema(config_schema)
    return Dataset(schema, {"g": g, "h": h}, y, protected=("g", "h"))


def make_single_biased_region(
    n_rows: int = 2000,
    biased_rate: float = 0.9,
    base_rate: float = 0.3,
    seed: int = 31,
) -> Dataset:
    """Uniform 3×3 space with exactly one over-positive cell ``(a0, b0)``.

    The minimal instance of Hypothesis 1: one region's class ratio diverges
    from an otherwise homogeneous neighbourhood.
    """
    config = GeneratorConfig(
        n_rows=n_rows,
        categorical=(
            CategoricalSpec("a", ("a0", "a1", "a2"), uniform_marginal(3)),
            CategoricalSpec("b", ("b0", "b1", "b2"), uniform_marginal(3)),
        ),
        numeric=(NumericSpec("f", -0.5, 0.5, 1.0),),
        protected=("a", "b"),
        base_positive_rate=base_rate,
        injections=(BiasInjection({"a": "a0", "b": "b0"}, biased_rate),),
        seed=seed,
    )
    return generate(config)


def make_gradient(
    n_rows: int = 3000,
    n_levels: int = 5,
    seed: int = 37,
) -> Dataset:
    """Positive rate rising linearly along an *ordered* attribute.

    Along ``level`` (codes 0..n_levels-1) the positive rate climbs from 0.1
    to 0.9.  Under unit distances every other level is a T=1 neighbour and
    the extremes look biased against the global mixture; under the ordinal
    metric only adjacent levels compare, and the smooth gradient stops
    looking like local bias — the behaviour the §II-B refinement targets.
    """
    if n_levels < 3:
        raise DataError("need at least 3 levels for a gradient")
    rng = np.random.default_rng(seed)
    level = rng.integers(0, n_levels, size=n_rows)
    other = rng.integers(0, 2, size=n_rows)
    rate = 0.1 + 0.8 * level / (n_levels - 1)
    y = (rng.random(n_rows) < rate).astype(np.int8)

    from repro.data.schema import Column, Schema

    schema = Schema(
        [
            Column("level", "categorical", tuple(f"L{i}" for i in range(n_levels))),
            Column("other", "categorical", ("o0", "o1")),
        ]
    )
    return Dataset(
        schema, {"level": level, "other": other}, y, protected=("level", "other")
    )
