"""UCI Adult–like synthetic dataset.

Mirrors the census-income dataset of Table II: 45,222 rows, 13 training
attributes, six protected attributes ``{age, race, gender, marital_status,
relationship, country}``.  Two additional high-cardinality categorical
attributes (``education``, ``occupation``) exist so the Fig. 9 scalability
sweep can extend the protected set to eight attributes exactly as the paper
does ("we expanded the set of protected attributes with two additional
categorical attributes: education and occupation").

The planted biases reflect well-known structure in Adult: married men are
heavily over-represented among positives (>50K), certain race × gender cells
are skewed negative, and young workers are almost never positive.
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.data.synth.generic import (
    BiasInjection,
    CategoricalSpec,
    GeneratorConfig,
    NumericSpec,
    generate,
)

AGE_LABELS = ("17-25", "26-40", "41-60", ">60")
RACE_LABELS = ("White", "Black", "Asian-Pac", "Amer-Indian", "Other")
GENDER_LABELS = ("Male", "Female")
MARITAL_LABELS = ("Married", "Never-married", "Divorced", "Widowed")
RELATIONSHIP_LABELS = ("Husband", "Wife", "Not-in-family", "Own-child")
COUNTRY_LABELS = ("US", "Mexico", "Other")
EDUCATION_LABELS = ("HS", "Some-college", "Bachelors", "Masters", "Doctorate")
OCCUPATION_LABELS = (
    "Craft",
    "Sales",
    "Exec-managerial",
    "Prof-specialty",
    "Service",
    "Clerical",
)
WORKCLASS_LABELS = ("Private", "Self-emp", "Government", "Unemployed")

PROTECTED = ("age", "race", "gender", "marital_status", "relationship", "country")
SCALABILITY_PROTECTED = PROTECTED + ("education", "occupation")


def adult_config(n_rows: int = 45222, seed: int = 5) -> GeneratorConfig:
    """Generator recipe for the Adult-like dataset (positive ≈ earning >50K)."""
    categorical = (
        CategoricalSpec("age", AGE_LABELS, (0.18, 0.38, 0.35, 0.09)),
        CategoricalSpec("race", RACE_LABELS, (0.855, 0.09, 0.03, 0.01, 0.015)),
        CategoricalSpec("gender", GENDER_LABELS, (0.67, 0.33)),
        CategoricalSpec("marital_status", MARITAL_LABELS, (0.47, 0.32, 0.17, 0.04)),
        CategoricalSpec(
            "relationship", RELATIONSHIP_LABELS, (0.40, 0.05, 0.38, 0.17)
        ),
        CategoricalSpec("country", COUNTRY_LABELS, (0.90, 0.02, 0.08)),
        CategoricalSpec(
            "education", EDUCATION_LABELS, (0.38, 0.27, 0.22, 0.10, 0.03), signal=0.30
        ),
        CategoricalSpec(
            "occupation",
            OCCUPATION_LABELS,
            (0.19, 0.17, 0.19, 0.19, 0.14, 0.12),
            signal=0.18,
        ),
        CategoricalSpec("workclass", WORKCLASS_LABELS, (0.74, 0.11, 0.13, 0.02)),
    )
    numeric = (
        NumericSpec("hours_per_week", 39.0, 44.0, 11.0),
        NumericSpec("capital_gain", 0.3, 1.2, 1.1),
        NumericSpec("education_years", 10.0, 11.9, 2.6),
        NumericSpec("log_fnlwgt", 11.8, 11.9, 0.7),
    )
    injections = (
        # Broad, then specific (later injections win on overlap).
        BiasInjection({"gender": "Female"}, 0.12),
        BiasInjection({"marital_status": "Married", "gender": "Male"}, 0.44),
        BiasInjection({"age": "17-25"}, 0.05),
        # Region-level representation skew visible over the {race, gender}
        # grid (drives the Table III fairness-violation comparison): Black
        # males over-collected positive, Black females the reverse.
        BiasInjection({"race": "Black", "gender": "Male"}, 0.42),
        BiasInjection({"race": "Black", "gender": "Female"}, 0.06),
        BiasInjection({"race": "Asian-Pac", "gender": "Male"}, 0.45),
        BiasInjection({"marital_status": "Never-married"}, 0.08),
        BiasInjection({"relationship": "Own-child"}, 0.03),
        BiasInjection(
            {"marital_status": "Married", "gender": "Male", "age": "41-60"}, 0.52
        ),
        BiasInjection({"country": "Mexico"}, 0.06),
    )
    return GeneratorConfig(
        n_rows=n_rows,
        categorical=categorical,
        numeric=numeric,
        protected=PROTECTED,
        base_positive_rate=0.24,
        injections=injections,
        label_noise=0.08,
        seed=seed,
    )


def load_adult(n_rows: int = 45222, seed: int = 5) -> Dataset:
    """Materialise the Adult-like dataset (deterministic given ``seed``)."""
    return generate(adult_config(n_rows=n_rows, seed=seed))


def load_adult_scalability(n_rows: int = 45222, seed: int = 5) -> Dataset:
    """Adult-like dataset with the 8-attribute protected set of Fig. 9."""
    return load_adult(n_rows=n_rows, seed=seed).with_protected(
        SCALABILITY_PROTECTED
    )
