"""Synthetic stand-ins for the paper's three evaluation datasets.

Real Adult / ProPublica / Law School files are unavailable offline; these
generators rebuild their schema, marginals, and — the property the method
depends on — planted region-level class-ratio skew.  See DESIGN.md for the
substitution rationale.
"""

from repro.data.synth.adult import (
    load_adult,
    load_adult_scalability,
    adult_config,
    PROTECTED as ADULT_PROTECTED,
    SCALABILITY_PROTECTED as ADULT_SCALABILITY_PROTECTED,
)
from repro.data.synth.compas import load_compas, compas_config, PROTECTED as COMPAS_PROTECTED
from repro.data.synth.lawschool import (
    load_lawschool,
    lawschool_config,
    PROTECTED as LAWSCHOOL_PROTECTED,
)
from repro.data.synth.scenarios import (
    make_checkerboard,
    make_gradient,
    make_single_biased_region,
    make_undercoverage,
)
from repro.data.synth.generic import (
    BiasInjection,
    CategoricalSpec,
    GeneratorConfig,
    NumericSpec,
    build_schema,
    generate,
    make_scalability_config,
    uniform_marginal,
)

__all__ = [
    "load_adult",
    "load_adult_scalability",
    "load_compas",
    "load_lawschool",
    "adult_config",
    "compas_config",
    "lawschool_config",
    "ADULT_PROTECTED",
    "ADULT_SCALABILITY_PROTECTED",
    "COMPAS_PROTECTED",
    "LAWSCHOOL_PROTECTED",
    "BiasInjection",
    "CategoricalSpec",
    "GeneratorConfig",
    "NumericSpec",
    "build_schema",
    "generate",
    "make_scalability_config",
    "uniform_marginal",
    "make_checkerboard",
    "make_gradient",
    "make_single_biased_region",
    "make_undercoverage",
]
