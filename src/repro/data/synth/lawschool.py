"""Law School (LSAC bar-passage)–like synthetic dataset.

Mirrors Table II: 4,590 rows after the paper's balancing step (the original
LSAC data is extremely label-imbalanced, so the paper uniformly samples an
equal number of positive and negative records), 12 training attributes,
protected set ``{age, gender, race, family_income}``.

The positive label means *failing* to pass the bar in our encoding is the
negative class; positives and negatives are balanced by construction via a
post-generation resampling step identical in spirit to the paper's.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.synth.generic import (
    BiasInjection,
    CategoricalSpec,
    GeneratorConfig,
    NumericSpec,
    generate,
)

AGE_LABELS = ("<24", "24-30", ">30")
GENDER_LABELS = ("Male", "Female")
RACE_LABELS = ("White", "Black", "Other")
INCOME_LABELS = ("low", "mid", "high")
REGION_LABELS = ("Northeast", "South", "Midwest", "West")
PARTTIME_LABELS = ("No", "Yes")
TIER_LABELS = ("1", "2", "3")

PROTECTED = ("age", "gender", "race", "family_income")


def lawschool_config(n_rows: int, seed: int) -> GeneratorConfig:
    """Generator recipe (pre-balancing) for the Law School–like dataset."""
    categorical = (
        CategoricalSpec("age", AGE_LABELS, (0.45, 0.40, 0.15)),
        CategoricalSpec("gender", GENDER_LABELS, (0.56, 0.44)),
        CategoricalSpec("race", RACE_LABELS, (0.76, 0.10, 0.14)),
        CategoricalSpec("family_income", INCOME_LABELS, (0.28, 0.49, 0.23)),
        CategoricalSpec("region", REGION_LABELS, (0.27, 0.30, 0.22, 0.21)),
        CategoricalSpec("part_time", PARTTIME_LABELS, (0.89, 0.11)),
        CategoricalSpec("school_tier", TIER_LABELS, (0.25, 0.50, 0.25), signal=0.35),
    )
    numeric = (
        NumericSpec("lsat", 33.0, 38.5, 5.0),
        NumericSpec("ugpa", 3.0, 3.35, 0.4),
        NumericSpec("zfygpa", -0.3, 0.3, 0.9),
        NumericSpec("decile", 4.2, 6.3, 2.5),
        NumericSpec("work_experience", 1.8, 2.1, 1.5),
    )
    injections = (
        BiasInjection({"race": "Black"}, 0.30),
        BiasInjection({"family_income": "low"}, 0.35),
        BiasInjection({"family_income": "low", "race": "Black"}, 0.18),
        BiasInjection({"age": ">30", "part_time": "Yes"}, 0.28),
        BiasInjection({"family_income": "high", "race": "White"}, 0.70),
        BiasInjection({"gender": "Female", "age": "<24", "family_income": "low"}, 0.25),
    )
    return GeneratorConfig(
        n_rows=n_rows,
        categorical=categorical,
        numeric=numeric,
        protected=PROTECTED,
        base_positive_rate=0.52,
        injections=injections,
        label_noise=0.04,
        seed=seed,
    )


def load_lawschool(n_rows: int = 4590, seed: int = 23) -> Dataset:
    """Materialise the Law School–like dataset, label-balanced as in §V-A.

    Generates an oversized pool and uniformly subsamples ``n_rows/2``
    positives and ``n_rows/2`` negatives, matching the paper's preprocessing
    ("we conducted uniform sampling, resulting in an equal number of positive
    and negative records").
    """
    pool = generate(lawschool_config(n_rows=3 * n_rows, seed=seed))
    per_class = n_rows // 2
    rng = np.random.default_rng(seed + 1)
    pos_idx = np.flatnonzero(pool.y == 1)
    neg_idx = np.flatnonzero(pool.y == 0)
    take = np.concatenate(
        [
            rng.choice(pos_idx, size=per_class, replace=False),
            rng.choice(neg_idx, size=n_rows - per_class, replace=False),
        ]
    )
    rng.shuffle(take)
    return pool.take(take)
