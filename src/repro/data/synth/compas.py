"""ProPublica COMPAS–like synthetic dataset.

Mirrors the recidivism dataset used throughout the paper's running examples:
6,172 rows, six training attributes, protected set ``{age, race, sex}``
(Table II).  The planted biases follow the paper's own observations:

* the region ``(age='25-45', priors='>3')`` is flooded with positives
  (paper Example 4: imbalance score ≈ 2.2 vs. a 0.64 neighbourhood),
* Afr-Am males receive extra positives (paper Example 1: their FPR is 0.15
  against an overall 0.088),
* young defendants with many priors are near-deterministically positive,
  while older first-time defendants are strongly negative.
"""

from __future__ import annotations

from repro.data.dataset import Dataset
from repro.data.synth.generic import (
    BiasInjection,
    CategoricalSpec,
    GeneratorConfig,
    NumericSpec,
    generate,
)

AGE_LABELS = ("<25", "25-45", ">45")
RACE_LABELS = ("Afr-Am", "Caucasian", "Other")
SEX_LABELS = ("Male", "Female")
PRIORS_LABELS = ("0", "1-3", ">3")
CHARGE_LABELS = ("M", "F")  # misdemeanour / felony
JUVENILE_LABELS = ("0", ">0")

PROTECTED = ("age", "race", "sex")


def compas_config(n_rows: int = 6172, seed: int = 11) -> GeneratorConfig:
    """Generator recipe for the COMPAS-like dataset."""
    categorical = (
        CategoricalSpec("age", AGE_LABELS, (0.22, 0.57, 0.21)),
        CategoricalSpec("race", RACE_LABELS, (0.51, 0.34, 0.15)),
        CategoricalSpec("sex", SEX_LABELS, (0.81, 0.19)),
        CategoricalSpec("priors", PRIORS_LABELS, (0.34, 0.36, 0.30), signal=0.45),
        CategoricalSpec("charge", CHARGE_LABELS, (0.36, 0.64), signal=0.20),
        CategoricalSpec("juvenile", JUVENILE_LABELS, (0.87, 0.13), signal=0.25),
    )
    injections = (
        # Broad demographic skews first (later, more specific ones override).
        BiasInjection({"race": "Afr-Am", "sex": "Male"}, 0.58),
        BiasInjection({"age": ">45"}, 0.30),
        BiasInjection({"age": ">45", "priors": "0"}, 0.15),
        # The paper's running-example region: 25-45 with many priors is
        # heavily positive relative to its neighbours.
        BiasInjection({"age": "25-45", "priors": ">3"}, 0.70),
        BiasInjection({"age": "<25", "race": "Afr-Am"}, 0.68),
        BiasInjection({"age": "<25", "race": "Afr-Am", "priors": ">3"}, 0.85),
    )
    return GeneratorConfig(
        n_rows=n_rows,
        categorical=categorical,
        numeric=(NumericSpec("days_in_jail", 12.0, 35.0, 20.0),),
        protected=PROTECTED,
        base_positive_rate=0.42,
        injections=injections,
        label_noise=0.03,
        seed=seed,
    )


def load_compas(n_rows: int = 6172, seed: int = 11) -> Dataset:
    """Materialise the COMPAS-like dataset (deterministic given ``seed``)."""
    return generate(compas_config(n_rows=n_rows, seed=seed))
