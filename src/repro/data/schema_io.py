"""JSON persistence for schemas (used by the command-line interface).

A schema file pins down the categorical domains and the protected-attribute
set of a CSV so runs are reproducible and self-describing::

    {
      "columns": [
        {"name": "age", "kind": "categorical", "domain": ["<25", "25-45", ">45"]},
        {"name": "score", "kind": "numeric"}
      ],
      "protected": ["age"]
    }
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.data.dataset import Dataset
from repro.data.io import atomic_write_json
from repro.data.schema import CATEGORICAL, NUMERIC, Column, Schema
from repro.errors import SchemaError


def schema_to_dict(schema: Schema, protected: tuple[str, ...] = ()) -> dict:
    """JSON-serialisable representation of a schema + protected set."""
    columns = []
    for col in schema:
        entry: dict = {"name": col.name, "kind": col.kind}
        if col.is_categorical:
            entry["domain"] = list(col.domain)
        columns.append(entry)
    return {"columns": columns, "protected": list(protected)}


def schema_from_dict(payload: dict) -> tuple[Schema, tuple[str, ...]]:
    """Inverse of :func:`schema_to_dict`; validates structure."""
    if not isinstance(payload, dict) or "columns" not in payload:
        raise SchemaError("schema file must be an object with a 'columns' list")
    columns = []
    for entry in payload["columns"]:
        name = entry.get("name")
        kind = entry.get("kind", CATEGORICAL)
        if kind == CATEGORICAL:
            domain = tuple(entry.get("domain", ()))
            columns.append(Column(name, CATEGORICAL, domain))
        elif kind == NUMERIC:
            columns.append(Column(name, NUMERIC))
        else:
            raise SchemaError(f"column {name!r}: unknown kind {kind!r}")
    protected = tuple(payload.get("protected", ()))
    schema = Schema(columns)
    schema.require_categorical(protected)
    return schema, protected


def write_schema(dataset: Dataset, path: str | Path) -> None:
    """Persist ``dataset``'s schema (and protected set) as JSON."""
    payload = schema_to_dict(dataset.schema, dataset.protected)
    atomic_write_json(path, payload)


def read_schema(path: str | Path) -> tuple[Schema, tuple[str, ...]]:
    """Load a schema JSON written by :func:`write_schema`."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SchemaError(f"{path} is not valid JSON: {exc}") from exc
    return schema_from_dict(payload)
