"""Out-of-core sharded dataset satisfying the :class:`Dataset` read surface.

:class:`ShardedDataset` presents the same API the IBS engines, the hierarchy,
and ``remedy_dataset`` consume from :class:`~repro.data.Dataset` —
``region_counts(attrs, rows=...)``, ``mask``/``counts``, label and protected
access, the row-edit methods, and ``apply_delta`` — while holding only one
shard's columns resident at a time.  Disk shards memory-map their ``.npy``
column files per access and drop the mapping when the reducing loop moves on,
so peak RSS is bounded by the shard size, not the dataset size.

Edits are copy-on-write at shard granularity: ``drop``/``take`` with a
boolean mask reuse every untouched shard object, ``with_labels`` wraps shards
with a label overlay without touching their column files, and ``apply_delta``
materialises only the shard that owns the edited row.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.data.store.format import (
    LABELS_FILE,
    column_file_name,
    load_array,
    manifest_digest,
    read_manifest,
)
from repro.errors import DataError, SchemaError, StoreCorruptionError, StoreError


class DiskShard:
    """One on-disk shard; every access re-opens the backing ``.npy`` lazily.

    Nothing is cached here on purpose: a memory-mapped array holds its pages
    in the resident set for as long as it is alive, so the way a 10⁷-row scan
    stays inside a fixed memory budget is precisely that each shard's maps die
    before the next shard's are created.
    """

    __slots__ = ("directory", "n_rows", "_label_path")

    def __init__(self, directory: str | Path, n_rows: int):
        self.directory = Path(directory)
        self.n_rows = int(n_rows)
        self._label_path = self.directory / LABELS_FILE

    def column(self, index: int) -> np.ndarray:
        """Memory-mapped view of schema column ``index`` for this shard."""
        arr = load_array(self.directory / column_file_name(index))
        if arr.shape != (self.n_rows,):
            raise StoreCorruptionError(
                f"shard file {self.directory / column_file_name(index)} has "
                f"shape {arr.shape}, expected ({self.n_rows},)"
            )
        return arr

    def labels(self) -> np.ndarray:
        """This shard's int8 label slice (loaded, not mapped — it is tiny)."""
        arr = load_array(self._label_path, mmap=False)
        if arr.shape != (self.n_rows,):
            raise StoreCorruptionError(
                f"shard file {self._label_path} has shape {arr.shape}, "
                f"expected ({self.n_rows},)"
            )
        return arr.astype(np.int8, copy=False)


class MemoryShard:
    """A shard backed by in-memory arrays (edit results, appended rows)."""

    __slots__ = ("arrays", "_y", "n_rows")

    def __init__(self, arrays: Sequence[np.ndarray], y: np.ndarray):
        self.arrays = tuple(arrays)
        self._y = np.asarray(y).astype(np.int8, copy=False)
        self.n_rows = int(self._y.shape[0])

    def column(self, index: int) -> np.ndarray:
        """The in-memory array for schema column ``index``."""
        return self.arrays[index]

    def labels(self) -> np.ndarray:
        """The in-memory int8 label slice."""
        return self._y


class RelabeledShard:
    """A shard sharing another shard's columns under replacement labels.

    Keeps ``with_labels`` and relabel deltas O(rows-in-shard) without copying
    (or even touching) the column files.
    """

    __slots__ = ("base", "_y", "n_rows")

    def __init__(self, base: "DiskShard | MemoryShard | RelabeledShard", y: np.ndarray):
        if isinstance(base, RelabeledShard):
            base = base.base
        self.base = base
        self._y = np.asarray(y).astype(np.int8, copy=False)
        self.n_rows = base.n_rows
        if self._y.shape != (self.n_rows,):
            raise DataError(
                f"relabel overlay has shape {self._y.shape}, "
                f"expected ({self.n_rows},)"
            )

    def column(self, index: int) -> np.ndarray:
        """Delegates to the base shard's columns."""
        return self.base.column(index)

    def labels(self) -> np.ndarray:
        """The replacement int8 label slice."""
        return self._y


Shard = DiskShard | MemoryShard | RelabeledShard


class ShardedDataset:
    """A labelled table split row-wise across shards, reduced lazily.

    Satisfies the read/edit surface of :class:`~repro.data.Dataset` that the
    hierarchy, all three IBS engines, the remedy loop, and the ranker consume,
    so those run unmodified on datasets that never fully materialise in RAM.
    Aggregations (``region_counts``, ``mask``, ``counts``) stream shard by
    shard; only ``column``/``labels_of``/``feature_matrix``/``to_dataset``
    concatenate — their docstrings say so.

    Instances opened from disk via :meth:`open` carry ``path`` and
    ``manifest`` and can be shipped to pool workers as a :class:`StoreRef`;
    any edit returns a new dataset with ``path=None`` (it no longer denotes
    the stored bytes).
    """

    def __init__(
        self,
        schema: Schema,
        shards: Sequence[Shard],
        protected: Sequence[str] = (),
        *,
        path: Path | None = None,
        manifest: dict | None = None,
    ):
        self.schema = schema
        protected = tuple(protected)
        schema.require_categorical(protected)
        self.protected = protected
        self._shards = tuple(shards)
        self._offsets = np.cumsum([0] + [s.n_rows for s in self._shards]).astype(np.int64)
        self._col_index = {name: i for i, name in enumerate(schema.names)}
        self.path = Path(path) if path is not None else None
        self.manifest = manifest
        self._y_cache: np.ndarray | None = None
        self._lease: Path | None = None

    # -- construction ---------------------------------------------------------
    @classmethod
    def open(cls, path: str | Path) -> "ShardedDataset":
        """Open a store directory written by the registry/materialiser.

        Reads and validates the manifest, then builds lazy :class:`DiskShard`
        handles — no column file is touched until something reduces over it.
        """
        path = Path(path)
        manifest = read_manifest(path)
        schema, protected = _manifest_schema(manifest)
        shards = [
            DiskShard(path / entry["dir"], entry["stop"] - entry["start"])
            for entry in manifest["shards"]
        ]
        return cls(schema, shards, protected, path=path, manifest=manifest)

    @classmethod
    def from_dataset(cls, dataset: Dataset, shard_rows: int) -> "ShardedDataset":
        """Split an in-memory dataset into memory shards of ``shard_rows``.

        Used by tests and the property suite; the arrays are sliced views,
        not copies.
        """
        _require_shard_rows(shard_rows)
        names = dataset.schema.names
        shards: list[Shard] = []
        for start in range(0, dataset.n_rows, shard_rows):
            stop = min(start + shard_rows, dataset.n_rows)
            arrays = [dataset.column(name)[start:stop] for name in names]
            shards.append(MemoryShard(arrays, dataset.y[start:stop]))
        return cls(dataset.schema, shards, dataset.protected)

    # -- basic accessors ------------------------------------------------------
    def __len__(self) -> int:
        return int(self._offsets[-1])

    @property
    def n_rows(self) -> int:
        """Total number of rows across all shards."""
        return int(self._offsets[-1])

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return len(self._shards)

    @property
    def shard_ranges(self) -> tuple[tuple[int, int], ...]:
        """Global ``(start, stop)`` row range of each shard."""
        return tuple(
            (int(self._offsets[i]), int(self._offsets[i + 1]))
            for i in range(len(self._shards))
        )

    @property
    def y(self) -> np.ndarray:
        """All labels, concatenated once and cached (int8 — 1 byte/row)."""
        if self._y_cache is None:
            if self._shards:
                self._y_cache = np.concatenate([s.labels() for s in self._shards])
            else:
                self._y_cache = np.zeros(0, dtype=np.int8)
        return self._y_cache

    @property
    def n_positive(self) -> int:
        """Number of positive-labelled rows."""
        return int(self.y.sum())

    @property
    def n_negative(self) -> int:
        """Number of negative-labelled rows."""
        return int(self.n_rows - self.y.sum())

    def column(self, name: str) -> np.ndarray:
        """Column ``name`` concatenated across shards (materialises n rows)."""
        if name not in self._col_index:
            raise SchemaError(f"unknown column {name!r}")
        index = self._col_index[name]
        dtype = np.int64 if self.schema[name].is_categorical else np.float64
        if not self._shards:
            return np.zeros(0, dtype=dtype)
        return np.concatenate(
            [np.asarray(s.column(index), dtype=dtype) for s in self._shards]
        )

    def labels_of(self, name: str) -> np.ndarray:
        """Column values decoded to string labels (materialises n rows)."""
        col = self.schema[name]
        if not col.is_categorical:
            raise SchemaError(f"column {name!r} is numeric; has no labels")
        domain = np.asarray(col.domain, dtype=object)
        return domain[self.column(name)]

    def __repr__(self) -> str:
        return (
            f"ShardedDataset(n={self.n_rows}, shards={self.n_shards}, "
            f"protected={list(self.protected)})"
        )

    # -- pattern masks and counts ---------------------------------------------
    def _check_assignment(self, assignment: Mapping[str, int]) -> None:
        for name, code in assignment.items():
            col = self.schema[name]
            if not col.is_categorical:
                raise SchemaError(f"pattern attribute {name!r} must be categorical")
            if not 0 <= int(code) < col.cardinality:
                raise SchemaError(f"code {code} out of range for column {name!r}")

    def _shard_mask(self, shard: Shard, assignment: Mapping[str, int]) -> np.ndarray:
        out = np.ones(shard.n_rows, dtype=bool)
        for name, code in assignment.items():
            out &= np.asarray(shard.column(self._col_index[name])) == int(code)
        return out

    def mask(self, assignment: Mapping[str, int]) -> np.ndarray:
        """Boolean mask of rows matching ``{attr: code}`` conjunctively.

        The mask itself is global (1 byte/row) but each shard's columns are
        mapped, compared, and released in turn.
        """
        self._check_assignment(assignment)
        if not self._shards:
            return np.ones(0, dtype=bool)
        return np.concatenate(
            [self._shard_mask(s, assignment) for s in self._shards]
        )

    def counts(self, assignment: Mapping[str, int]) -> tuple[int, int]:
        """``(|r+|, |r-|)`` for the pattern, accumulated shard by shard."""
        self._check_assignment(assignment)
        pos = 0
        total = 0
        for shard in self._shards:
            m = self._shard_mask(shard, assignment)
            pos += int(shard.labels()[m].sum())
            total += int(m.sum())
        return pos, total - pos

    def joint_codes(self, attrs: Sequence[str]) -> tuple[np.ndarray, tuple[int, ...]]:
        """Mixed-radix joint codes over ``attrs`` (materialises n int64s)."""
        self.schema.require_categorical(attrs)
        shape = self.schema.cardinalities(attrs)
        if not self._shards:
            return np.zeros(0, dtype=np.int64), shape if attrs else ()
        codes = np.concatenate(
            [self._shard_joint_codes(s, attrs, shape) for s in self._shards]
        )
        return codes, shape if attrs else ()

    def _shard_joint_codes(
        self, shard: Shard, attrs: Sequence[str], shape: tuple[int, ...]
    ) -> np.ndarray:
        if not attrs:
            return np.zeros(shard.n_rows, dtype=np.int64)
        arrays = [np.asarray(shard.column(self._col_index[a])) for a in attrs]
        return np.ravel_multi_index(arrays, shape).astype(np.int64, copy=False)

    def region_counts(
        self, attrs: Sequence[str], rows: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, tuple[int, ...]]:
        """Per-cell positive/negative counts over ``attrs``, reduced lazily.

        Shard ``bincount``s are summed, which is integer-exact, so the result
        is byte-identical to :meth:`Dataset.region_counts` on the
        concatenated rows (the property suite pins this).  ``rows`` may be a
        boolean mask over all rows or an integer index array; either is
        sliced per shard so no shard-crossing gather happens.
        """
        self.schema.require_categorical(attrs)
        shape = self.schema.cardinalities(attrs)
        return self._reduce_counts(range(len(self._shards)), attrs, shape, rows)

    def shard_region_counts(
        self, shard_indices: Sequence[int], attrs: Sequence[str]
    ) -> tuple[np.ndarray, np.ndarray, tuple[int, ...]]:
        """Partial :meth:`region_counts` over only the listed shards.

        The shard-granular work unit the process pool fans out: summing the
        partials of a disjoint shard cover equals the full ``region_counts``.
        """
        self.schema.require_categorical(attrs)
        shape = self.schema.cardinalities(attrs)
        for i in shard_indices:
            if not 0 <= int(i) < len(self._shards):
                raise StoreError(
                    f"shard index {i} out of range; dataset has "
                    f"{len(self._shards)} shards"
                )
        return self._reduce_counts([int(i) for i in shard_indices], attrs, shape, None)

    def _reduce_counts(
        self,
        shard_indices: Sequence[int],
        attrs: Sequence[str],
        shape: tuple[int, ...],
        rows: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray, tuple[int, ...]]:
        size = int(np.prod(shape)) if shape else 1
        pos = np.zeros(size, dtype=np.int64)
        neg = np.zeros(size, dtype=np.int64)
        sorted_rows: np.ndarray | None = None
        bool_rows: np.ndarray | None = None
        if rows is not None:
            rows = np.asarray(rows)
            if rows.dtype == bool:
                if rows.shape != (self.n_rows,):
                    raise DataError(
                        f"boolean rows mask has shape {rows.shape}, "
                        f"expected ({self.n_rows},)"
                    )
                bool_rows = rows
            else:
                idx = rows.astype(np.int64, copy=True)
                idx[idx < 0] += self.n_rows
                if idx.size and (idx.min() < 0 or idx.max() >= self.n_rows):
                    raise DataError(
                        f"row index out of range for {self.n_rows} rows"
                    )
                sorted_rows = np.sort(idx)
        for i in shard_indices:
            shard = self._shards[i]
            start, stop = int(self._offsets[i]), int(self._offsets[i + 1])
            sel: np.ndarray | None = None
            if bool_rows is not None:
                sel = bool_rows[start:stop]
                if not sel.any():
                    continue
            elif sorted_rows is not None:
                lo, hi = np.searchsorted(sorted_rows, [start, stop])
                if lo == hi:
                    continue
                sel = sorted_rows[lo:hi] - start
            codes = self._shard_joint_codes(shard, attrs, shape)
            labels = shard.labels()
            if sel is not None:
                codes = codes[sel]
                labels = labels[sel]
            pos += np.bincount(codes[labels == 1], minlength=size)
            neg += np.bincount(codes[labels == 0], minlength=size)
        return pos.astype(np.int64), neg.astype(np.int64), shape

    # -- row-level edits (return new sharded datasets) -------------------------
    def take(self, indices: np.ndarray) -> "ShardedDataset":
        """New dataset with rows at ``indices`` (boolean mask or int index).

        A boolean mask is copy-on-write at shard granularity: fully-kept
        shards are reused by reference (disk shards stay on disk).  An
        integer index gathers into a single memory shard, preserving order
        and duplicates exactly like :meth:`Dataset.take`.
        """
        indices = np.asarray(indices)
        if indices.dtype == bool:
            if indices.shape != (self.n_rows,):
                raise DataError(
                    f"boolean take mask has shape {indices.shape}, "
                    f"expected ({self.n_rows},)"
                )
            shards: list[Shard] = []
            for i, shard in enumerate(self._shards):
                sub = indices[int(self._offsets[i]) : int(self._offsets[i + 1])]
                if sub.all():
                    shards.append(shard)
                elif sub.any():
                    arrays = [
                        np.asarray(shard.column(ci))[sub]
                        for ci in range(len(self.schema))
                    ]
                    shards.append(MemoryShard(arrays, shard.labels()[sub]))
            return ShardedDataset(self.schema, shards, self.protected)
        return ShardedDataset(
            self.schema, [self._gather(indices)], self.protected
        )

    def _gather(self, indices: np.ndarray) -> MemoryShard:
        idx = np.asarray(indices, dtype=np.int64).copy()
        idx[idx < 0] += self.n_rows
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_rows):
            raise DataError(f"take index out of range for {self.n_rows} rows")
        order = np.argsort(idx, kind="stable")
        sorted_idx = idx[order]
        arrays = [
            np.empty(
                idx.size,
                dtype=np.int64 if col.is_categorical else np.float64,
            )
            for col in self.schema
        ]
        y_out = np.empty(idx.size, dtype=np.int8)
        for i, shard in enumerate(self._shards):
            start, stop = int(self._offsets[i]), int(self._offsets[i + 1])
            lo, hi = np.searchsorted(sorted_idx, [start, stop])
            if lo == hi:
                continue
            local = sorted_idx[lo:hi] - start
            dest = order[lo:hi]
            for ci in range(len(self.schema)):
                arrays[ci][dest] = np.asarray(shard.column(ci))[local]
            y_out[dest] = shard.labels()[local]
        return MemoryShard(arrays, y_out)

    def drop(self, indices: np.ndarray) -> "ShardedDataset":
        """New dataset with rows at integer ``indices`` removed (shards the
        drop does not touch are reused by reference)."""
        keep = np.ones(self.n_rows, dtype=bool)
        keep[np.asarray(indices, dtype=np.int64)] = False
        return self.take(keep)

    def append_rows(self, other: "Dataset | ShardedDataset") -> "ShardedDataset":
        """New dataset with ``other``'s rows appended (schemas must match).

        ``other``'s shards (or, for an in-memory dataset, its column arrays
        wrapped as one memory shard) are adopted by reference.
        """
        if other.schema != self.schema:
            raise DataError("cannot append rows with a different schema")
        if isinstance(other, ShardedDataset):
            extra: tuple[Shard, ...] = other._shards
        else:
            arrays = [other.column(name) for name in self.schema.names]
            extra = (MemoryShard(arrays, other.y),)
        return ShardedDataset(
            self.schema, self._shards + extra, self.protected
        )

    def duplicate_rows(self, indices: np.ndarray) -> "ShardedDataset":
        """New dataset with copies of rows at ``indices`` appended."""
        return self.append_rows(self.take(np.asarray(indices, dtype=np.int64)))

    def with_labels(self, y: np.ndarray) -> "ShardedDataset":
        """New dataset sharing every shard's columns under labels ``y``.

        O(n) in label bytes only — column files are untouched.
        """
        y = np.asarray(y)
        if y.ndim != 1:
            raise DataError(f"y must be 1-D, got shape {y.shape}")
        if y.shape[0] != self.n_rows:
            raise DataError(
                f"with_labels needs {self.n_rows} labels, got {y.shape[0]}"
            )
        if y.shape[0]:
            bad = ~np.isin(y, (0, 1))
            if bad.any():
                row = int(np.flatnonzero(bad)[0])
                raise DataError(
                    f"labels must be binary 0/1; row {row} has {y[row]!r}"
                )
        y8 = y.astype(np.int8, copy=False)
        shards = [
            RelabeledShard(
                shard, y8[int(self._offsets[i]) : int(self._offsets[i + 1])]
            )
            for i, shard in enumerate(self._shards)
        ]
        return ShardedDataset(self.schema, shards, self.protected)

    def with_protected(self, protected: Sequence[str]) -> "ShardedDataset":
        """New view over the same shards with a different protected set."""
        return ShardedDataset(self.schema, self._shards, protected)

    def copy(self) -> "ShardedDataset":
        """Deep in-memory copy (one memory shard per source shard)."""
        shards = [
            MemoryShard(
                [np.asarray(s.column(ci)).copy() for ci in range(len(self.schema))],
                s.labels().copy(),
            )
            for s in self._shards
        ]
        return ShardedDataset(self.schema, shards, self.protected)

    # -- streaming-style single edits ------------------------------------------
    def apply_delta(
        self,
        kind: str,
        *,
        values: Sequence[float] | None = None,
        label: int | None = None,
        row: int | None = None,
    ) -> tuple["ShardedDataset", dict]:
        """Apply one edit, touching only the shard that owns the row.

        Same contract as :meth:`Dataset.apply_delta`: returns the new dataset
        plus a leaf-granular ``{"pattern", "dpos", "dneg"}`` count delta over
        the protected space.  An insert appends a one-row memory shard, a
        delete materialises just the owning shard, a relabel wraps the owning
        shard in a label overlay.  Value-validation errors reference
        shard-local row numbers.
        """
        from repro.core.pattern import Pattern

        shape = self.schema.cardinalities(self.protected)
        dpos = np.zeros(shape, dtype=np.int64)
        dneg = np.zeros(shape, dtype=np.int64)

        if kind == "insert":
            if values is None or label is None:
                raise DataError("insert delta needs values= and label=")
            values = list(values)
            if len(values) != len(self.schema):
                raise DataError(
                    f"insert for row {self.n_rows} has {len(values)} values "
                    f"for {len(self.schema)} schema columns "
                    f"{list(self.schema.names)}"
                )
            if int(label) not in (0, 1):
                raise DataError(
                    f"labels must be binary 0/1; row {self.n_rows} has {label!r}"
                )
            tail = Dataset(
                self.schema,
                {
                    name: np.asarray([value])
                    for name, value in zip(self.schema.names, values)
                },
                np.asarray([int(label)], dtype=np.int64),
                self.protected,
            )
            extra = MemoryShard(
                [tail.column(name) for name in self.schema.names], tail.y
            )
            out = ShardedDataset(
                self.schema, self._shards + (extra,), self.protected
            )
            cell = tuple(int(tail.column(a)[0]) for a in self.protected)
            (dpos if int(label) == 1 else dneg)[cell] += 1
        elif kind == "delete":
            if row is None:
                raise DataError("delete delta needs row=")
            self._require_row(row, "delete")
            si, local = self._owner(row)
            shard = self._shards[si]
            cell = tuple(
                int(np.asarray(shard.column(self._col_index[a]))[local])
                for a in self.protected
            )
            (dpos if int(shard.labels()[local]) == 1 else dneg)[cell] -= 1
            keep = np.ones(shard.n_rows, dtype=bool)
            keep[local] = False
            replacement = MemoryShard(
                [
                    np.asarray(shard.column(ci))[keep]
                    for ci in range(len(self.schema))
                ],
                shard.labels()[keep],
            )
            out = ShardedDataset(
                self.schema,
                self._shards[:si] + (replacement,) + self._shards[si + 1 :],
                self.protected,
            )
        elif kind == "relabel":
            if row is None or label is None:
                raise DataError("relabel delta needs row= and label=")
            self._require_row(row, "relabel")
            if label not in (0, 1):
                raise DataError(
                    f"labels must be binary 0/1; row {row} has {label!r}"
                )
            si, local = self._owner(row)
            shard = self._shards[si]
            old = int(shard.labels()[local])
            y_shard = shard.labels().copy()
            y_shard[local] = int(label)
            out = ShardedDataset(
                self.schema,
                self._shards[:si]
                + (RelabeledShard(shard, y_shard),)
                + self._shards[si + 1 :],
                self.protected,
            )
            if old != int(label):
                cell = tuple(
                    int(np.asarray(shard.column(self._col_index[a]))[local])
                    for a in self.protected
                )
                dpos[cell] += int(label) - old
                dneg[cell] += old - int(label)
        else:
            raise DataError(
                f"unknown delta kind {kind!r}; expected insert/delete/relabel"
            )
        return out, {"pattern": Pattern(), "dpos": dpos, "dneg": dneg}

    def _owner(self, row: int) -> tuple[int, int]:
        """``(shard_index, local_row)`` of global ``row``."""
        si = int(np.searchsorted(self._offsets, row, side="right")) - 1
        return si, int(row - self._offsets[si])

    def _require_row(self, row: int, verb: str) -> None:
        if not 0 <= row < self.n_rows:
            raise DataError(
                f"{verb} targets unknown row {row}; dataset has rows "
                f"0..{self.n_rows - 1}"
            )

    # -- materialisation -------------------------------------------------------
    def feature_matrix(
        self, features: Sequence[str] | None = None, one_hot: bool = True
    ) -> np.ndarray:
        """Dense design matrix over ``features`` (materialises n rows)."""
        if features is None:
            features = self.schema.names
        self.schema.require(features)
        blocks: list[np.ndarray] = []
        for name in features:
            col = self.schema[name]
            arr = self.column(name)
            if col.is_categorical and one_hot:
                block = np.zeros((self.n_rows, col.cardinality))
                block[np.arange(self.n_rows), arr] = 1.0
                blocks.append(block)
            else:
                blocks.append(arr.astype(np.float64)[:, None])
        if not blocks:
            return np.zeros((self.n_rows, 0))
        return np.hstack(blocks)

    def to_dataset(self) -> Dataset:
        """Fully materialise into an in-memory :class:`Dataset`."""
        return Dataset(
            self.schema,
            {name: self.column(name) for name in self.schema.names},
            self.y,
            self.protected,
        )

    # -- registry plumbing -----------------------------------------------------
    def store_ref(self) -> "StoreRef":
        """Picklable handle for shipping this store to pool workers.

        Only valid for a dataset opened straight from disk (edits detach it
        from the stored bytes and raise :class:`~repro.errors.StoreError`).
        """
        if self.path is None or self.manifest is None:
            raise StoreError(
                "only a dataset opened from a store can be shipped as a "
                "StoreRef; this one has in-memory edits or no backing path"
            )
        return StoreRef(
            path=str(self.path),
            digest=manifest_digest(self.manifest),
            n_rows=self.n_rows,
            n_shards=self.n_shards,
        )

    def close(self) -> None:
        """Release the registry lease held by this handle, if any."""
        if self._lease is not None:
            lease, self._lease = self._lease, None
            try:
                lease.unlink()
            except OSError:
                pass

    def __enter__(self) -> "ShardedDataset":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class StoreRef:
    """Content-pinned handle to an on-disk store, cheap to pickle.

    The worker side resolves it with :func:`open_store_ref`, which re-reads
    the manifest and refuses to attach if the manifest digest changed — a
    store rewritten under a running sweep is an error, not silent skew.
    """

    __slots__ = ("path", "digest", "n_rows", "n_shards")

    def __init__(self, path: str, digest: str, n_rows: int, n_shards: int):
        self.path = path
        self.digest = digest
        self.n_rows = int(n_rows)
        self.n_shards = int(n_shards)

    def __repr__(self) -> str:
        return (
            f"StoreRef(path={self.path!r}, n_rows={self.n_rows}, "
            f"n_shards={self.n_shards}, digest={self.digest[:12]}...)"
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StoreRef)
            and other.path == self.path
            and other.digest == self.digest
        )

    def __hash__(self) -> int:
        return hash((self.path, self.digest))

    def __getstate__(self) -> dict:
        return {
            "path": self.path,
            "digest": self.digest,
            "n_rows": self.n_rows,
            "n_shards": self.n_shards,
        }

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            setattr(self, key, value)


_OPENED: dict[tuple[str, str], ShardedDataset] = {}


def open_store_ref(ref: StoreRef) -> ShardedDataset:
    """Resolve a :class:`StoreRef` to an opened dataset (per-process cache).

    Workers call this once per distinct store and then mmap only the shards
    their cells actually reduce over.  Raises
    :class:`~repro.errors.StoreError` if the on-disk manifest no longer
    matches the digest pinned in the ref.
    """
    key = (ref.path, ref.digest)
    cached = _OPENED.get(key)
    if cached is not None:
        return cached
    dataset = ShardedDataset.open(ref.path)
    actual = manifest_digest(dataset.manifest)
    if actual != ref.digest:
        raise StoreError(
            f"store {ref.path} changed since the ref was issued "
            f"(manifest digest {actual[:12]}... != {ref.digest[:12]}...)"
        )
    _OPENED[key] = dataset
    return dataset


def clear_ref_cache() -> None:
    """Drop the per-process :func:`open_store_ref` cache (worker shutdown)."""
    _OPENED.clear()


def _manifest_schema(manifest: dict) -> tuple[Schema, tuple[str, ...]]:
    from repro.data.store.format import validate_manifest

    return validate_manifest(manifest)


def _require_shard_rows(shard_rows: int) -> None:
    if int(shard_rows) < 1:
        raise StoreError(f"shard_rows must be >= 1, got {shard_rows}")


__all__ = [
    "DiskShard",
    "MemoryShard",
    "RelabeledShard",
    "ShardedDataset",
    "StoreRef",
    "open_store_ref",
    "clear_ref_cache",
]
