"""Out-of-core sharded dataset plane: format, lazy reducer, registry.

See :mod:`repro.data.store.format` for the on-disk layout,
:mod:`repro.data.store.sharded` for :class:`ShardedDataset` (the
``Dataset``-compatible lazy reducer), and :mod:`repro.data.store.registry`
for the named cache behind the ``repro data`` CLI.
"""

from repro.data.store.format import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    file_sha256,
    manifest_digest,
    read_manifest,
    schema_digest,
)
from repro.data.store.registry import (
    Registry,
    default_root,
    iter_chunks,
    synth_chunks,
    verify_store,
    write_store,
)
from repro.data.store.sharded import (
    ShardedDataset,
    StoreRef,
    clear_ref_cache,
    open_store_ref,
)

__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "file_sha256",
    "manifest_digest",
    "read_manifest",
    "schema_digest",
    "Registry",
    "default_root",
    "iter_chunks",
    "synth_chunks",
    "verify_store",
    "write_store",
    "ShardedDataset",
    "StoreRef",
    "clear_ref_cache",
    "open_store_ref",
]
