"""Dataset registry: a cache directory of named, verified sharded stores.

The registry owns a root directory whose immediate children are store
directories (see :mod:`repro.data.store.format`).  It provides the four
``repro data`` CLI verbs:

* **materialize** — write a store from an in-memory dataset or a chunked
  synthetic generator, crash-safely: everything lands in a ``.tmp-*`` sibling
  first and is renamed into place only after the manifest (written last) is
  durable.  A process SIGKILLed mid-write leaves a ``.tmp-*`` orphan that
  ``list``/``verify`` never see and ``prune`` sweeps.
* **list** — enumerate entries with their manifests.
* **verify** — re-hash every shard file against the manifest; any mismatch
  raises :class:`~repro.errors.StoreCorruptionError` naming the shard file.
* **prune** — delete entries, refusing (without ``force``) any entry leased
  by a live process; always sweeps ``.tmp-*`` orphans and stale leases.

Leases are the refcount: ``Registry.open(name, lease=True)`` drops a pid
file under ``<entry>/.leases/`` which ``ShardedDataset.close()`` removes;
liveness is probed with ``os.kill(pid, 0)`` so leases from crashed processes
do not pin an entry forever.
"""

from __future__ import annotations

import os
import re
import shutil
from pathlib import Path
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.data.dataset import Dataset
from repro.data.store.format import (
    LABELS_FILE,
    MANIFEST_NAME,
    build_manifest,
    column_file_name,
    file_sha256,
    read_manifest,
    save_array,
    shard_dir_name,
    write_manifest,
)
from repro.data.store.sharded import ShardedDataset, _require_shard_rows
from repro.errors import StoreCorruptionError, StoreError

TMP_PREFIX = ".tmp-"
LEASE_DIR = ".leases"
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

CHAOS_ENV = "REPRO_DATA_CHAOS"

_lease_seq = 0


def default_root() -> Path:
    """Registry root: ``$REPRO_DATA_ROOT`` or ``~/.cache/repro/datasets``."""
    env = os.environ.get("REPRO_DATA_ROOT")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "datasets"


def iter_chunks(
    dataset: "Dataset | ShardedDataset", shard_rows: int
) -> Iterator[Dataset]:
    """Slice any dataset into materialisation chunks of ``shard_rows``."""
    _require_shard_rows(shard_rows)
    for start in range(0, dataset.n_rows, shard_rows):
        stop = min(start + shard_rows, dataset.n_rows)
        chunk = dataset.take(np.arange(start, stop, dtype=np.int64))
        if isinstance(chunk, ShardedDataset):
            chunk = chunk.to_dataset()
        yield chunk


def synth_chunks(
    generator: Callable[..., Dataset],
    total_rows: int,
    shard_rows: int,
    seed: int,
) -> Iterator[Dataset]:
    """Generate a large synthetic dataset one shard-sized chunk at a time.

    ``generator(n_rows=..., seed=...)`` is called once per shard with a
    distinct derived seed, so a 10⁷-row store never exists in memory as a
    whole — the dataset is *defined* shard-wise, which is exactly what makes
    it reproducible chunk by chunk.
    """
    _require_shard_rows(shard_rows)
    for i, start in enumerate(range(0, total_rows, shard_rows)):
        n = min(shard_rows, total_rows - start)
        yield generator(n_rows=n, seed=seed + i)


def _chaos_after_shard(index: int) -> None:
    """Chaos hook: ``REPRO_DATA_CHAOS=kill_after_shard:<k>`` SIGKILLs the
    writing process right after shard ``k``'s files hit disk (manifest not
    yet written) — the data-chaos drill proves the registry never exposes
    that torso."""
    plan = os.environ.get(CHAOS_ENV, "")
    if plan.startswith("kill_after_shard:") and index == int(plan.split(":", 1)[1]):
        os.kill(os.getpid(), 9)


def write_store(
    path: str | Path,
    chunks: Iterable[Dataset],
    shard_rows: int,
    *,
    source: dict | None = None,
    overwrite: bool = False,
) -> dict:
    """Write a store directory at ``path`` from an iterable of chunk datasets.

    Each chunk becomes exactly one shard.  All chunks must share the first
    chunk's schema and protected set.  Returns the manifest.  The write is
    crash-safe: files land in a ``.tmp-*`` sibling, the manifest is written
    last, and the directory is renamed into place atomically.
    """
    _require_shard_rows(shard_rows)
    path = Path(path)
    if path.exists() and not overwrite:
        raise StoreError(f"store {path} already exists (use overwrite)")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f"{TMP_PREFIX}{path.name}-{os.getpid()}"
    if tmp.exists():
        shutil.rmtree(tmp)
    tmp.mkdir()
    schema = None
    protected: tuple[str, ...] = ()
    entries: list[dict] = []
    start = 0
    for i, chunk in enumerate(chunks):
        if schema is None:
            schema, protected = chunk.schema, chunk.protected
        elif chunk.schema != schema or chunk.protected != protected:
            shutil.rmtree(tmp)
            raise StoreError(
                f"chunk {i} has a different schema/protected set than chunk 0"
            )
        shard_dir = tmp / shard_dir_name(i)
        shard_dir.mkdir()
        files: dict[str, dict] = {}
        for ci, name in enumerate(schema.names):
            fname = column_file_name(ci)
            fpath = shard_dir / fname
            save_array(fpath, chunk.column(name))
            files[fname] = {
                "sha256": file_sha256(fpath),
                "nbytes": fpath.stat().st_size,
            }
        ypath = shard_dir / LABELS_FILE
        save_array(ypath, chunk.y)
        files[LABELS_FILE] = {
            "sha256": file_sha256(ypath),
            "nbytes": ypath.stat().st_size,
        }
        entries.append(
            {
                "dir": shard_dir_name(i),
                "start": start,
                "stop": start + chunk.n_rows,
                "files": files,
            }
        )
        start += chunk.n_rows
        _chaos_after_shard(i)
    if schema is None:
        shutil.rmtree(tmp)
        raise StoreError("cannot materialize a store from zero chunks")
    manifest = build_manifest(schema, protected, entries, shard_rows, source)
    write_manifest(tmp, manifest)
    if overwrite and path.exists():
        shutil.rmtree(path)
    os.rename(tmp, path)
    return manifest


def verify_store(path: str | Path) -> dict:
    """Re-hash every file of the store at ``path`` against its manifest.

    Returns ``{"path", "n_rows", "n_shards", "files_checked",
    "bytes_checked"}`` on success; raises
    :class:`~repro.errors.StoreCorruptionError` naming the first offending
    shard file (missing, wrong size, or sha256 mismatch).
    """
    path = Path(path)
    manifest = read_manifest(path)
    files_checked = 0
    bytes_checked = 0
    for entry in manifest["shards"]:
        shard_dir = path / entry["dir"]
        for fname, meta in entry["files"].items():
            fpath = shard_dir / fname
            label = f"{entry['dir']}/{fname}"
            if not fpath.is_file():
                raise StoreCorruptionError(
                    f"{path}: shard file {label} is missing"
                )
            size = fpath.stat().st_size
            if size != meta["nbytes"]:
                raise StoreCorruptionError(
                    f"{path}: shard file {label} has {size} bytes, "
                    f"manifest records {meta['nbytes']}"
                )
            digest = file_sha256(fpath)
            if digest != meta["sha256"]:
                raise StoreCorruptionError(
                    f"{path}: shard file {label} sha256 mismatch "
                    f"(manifest {meta['sha256'][:12]}..., file {digest[:12]}...)"
                )
            files_checked += 1
            bytes_checked += size
    return {
        "path": str(path),
        "n_rows": manifest["n_rows"],
        "n_shards": len(manifest["shards"]),
        "files_checked": files_checked,
        "bytes_checked": bytes_checked,
    }


class Registry:
    """A named cache of sharded dataset stores under one root directory."""

    def __init__(self, root: str | Path | None = None):
        self.root = Path(root) if root is not None else default_root()

    # -- naming ---------------------------------------------------------------
    def path_of(self, name: str) -> Path:
        """Filesystem path of entry ``name`` (validates the name)."""
        if not _NAME_RE.match(name):
            raise StoreError(
                f"invalid dataset name {name!r}: must match "
                f"{_NAME_RE.pattern}"
            )
        return self.root / name

    def names(self) -> list[str]:
        """Sorted names of complete entries (a manifest marks completeness)."""
        if not self.root.is_dir():
            return []
        return sorted(
            child.name
            for child in self.root.iterdir()
            if child.is_dir()
            and not child.name.startswith(".")
            and (child / MANIFEST_NAME).is_file()
        )

    def entries(self) -> list[tuple[str, dict]]:
        """``(name, manifest)`` for every complete entry."""
        return [(name, read_manifest(self.root / name)) for name in self.names()]

    def tmp_dirs(self) -> list[Path]:
        """Orphaned ``.tmp-*`` directories from interrupted materialisations."""
        if not self.root.is_dir():
            return []
        return sorted(
            child
            for child in self.root.iterdir()
            if child.is_dir() and child.name.startswith(TMP_PREFIX)
        )

    # -- materialise / open ---------------------------------------------------
    def materialize(
        self,
        name: str,
        dataset: "Dataset | ShardedDataset | None" = None,
        *,
        chunks: Iterable[Dataset] | None = None,
        shard_rows: int,
        source: dict | None = None,
        overwrite: bool = False,
    ) -> ShardedDataset:
        """Write entry ``name`` from ``dataset`` or a chunk iterator; open it.

        Exactly one of ``dataset``/``chunks`` must be given.
        """
        if (dataset is None) == (chunks is None):
            raise StoreError("materialize needs exactly one of dataset= or chunks=")
        if dataset is not None:
            chunks = iter_chunks(dataset, shard_rows)
        path = self.path_of(name)
        write_store(
            path, chunks, shard_rows, source=source, overwrite=overwrite
        )
        return ShardedDataset.open(path)

    def open(self, name: str, *, lease: bool = False) -> ShardedDataset:
        """Open entry ``name``; with ``lease=True`` the handle pins the entry
        against ``prune`` until ``close()`` (or the process dies)."""
        path = self.path_of(name)
        dataset = ShardedDataset.open(path)
        if lease:
            dataset._lease = self.acquire_lease(name)
        return dataset

    # -- verification ---------------------------------------------------------
    def verify(self, name: str) -> dict:
        """Verify one entry (see :func:`verify_store`); adds ``"name"``."""
        report = verify_store(self.path_of(name))
        report["name"] = name
        return report

    def verify_all(self) -> list[dict]:
        """Verify every entry, raising on the first corruption."""
        return [self.verify(name) for name in self.names()]

    # -- leases (refcounts) ---------------------------------------------------
    def acquire_lease(self, name: str) -> Path:
        """Create a pid lease file under the entry; returns its path."""
        global _lease_seq
        lease_dir = self.path_of(name) / LEASE_DIR
        lease_dir.mkdir(exist_ok=True)
        _lease_seq += 1
        lease = lease_dir / f"{os.getpid()}-{_lease_seq}.lease"
        lease.write_text(str(os.getpid()))
        return lease

    def leases(self, name: str) -> list[tuple[int, bool]]:
        """``(pid, alive)`` for each lease file on entry ``name``."""
        lease_dir = self.path_of(name) / LEASE_DIR
        if not lease_dir.is_dir():
            return []
        out = []
        for child in sorted(lease_dir.iterdir()):
            if not child.name.endswith(".lease"):
                continue
            try:
                pid = int(child.read_text().strip())
            except (OSError, ValueError):
                continue
            out.append((pid, _pid_alive(pid)))
        return out

    def live_leases(self, name: str) -> list[int]:
        """Pids of live processes currently leasing entry ``name``."""
        return [pid for pid, alive in self.leases(name) if alive]

    # -- prune ----------------------------------------------------------------
    def prune(
        self,
        names: Iterable[str] | None = None,
        *,
        force: bool = False,
        dry_run: bool = False,
    ) -> dict:
        """Delete entries (all by default) plus ``.tmp-*`` orphans.

        Entries leased by a live process are kept unless ``force``; stale
        lease files (dead pids) never pin an entry.  Returns
        ``{"removed": [...], "kept": {name: [pids]}, "swept": [...]}``.
        """
        targets = list(names) if names is not None else self.names()
        removed: list[str] = []
        kept: dict[str, list[int]] = {}
        for name in targets:
            path = self.path_of(name)
            if not (path / MANIFEST_NAME).is_file():
                raise StoreError(f"no dataset named {name!r} under {self.root}")
            live = self.live_leases(name)
            if live and not force:
                kept[name] = live
                continue
            if not dry_run:
                shutil.rmtree(path)
            removed.append(name)
        swept = []
        for tmp in self.tmp_dirs():
            if not dry_run:
                shutil.rmtree(tmp)
            swept.append(tmp.name)
        return {"removed": removed, "kept": kept, "swept": swept}


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe (signal 0; EPERM still means alive)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


__all__ = [
    "Registry",
    "default_root",
    "write_store",
    "verify_store",
    "iter_chunks",
    "synth_chunks",
    "TMP_PREFIX",
    "LEASE_DIR",
    "CHAOS_ENV",
]
