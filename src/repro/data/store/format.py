"""On-disk format for sharded datasets: layout constants, manifest, hashing.

A store is a directory::

    <name>/
      manifest.json          # format version, schema, row ranges, file hashes
      shard-00000/
        c0000.npy            # column 0 of the schema, rows [start, stop)
        c0001.npy
        y.npy                # int8 labels for the shard's rows
      shard-00001/
        ...

Column files are plain ``.npy`` arrays named by schema column *index* (so
arbitrary column names never reach the filesystem) and are opened lazily
with ``mmap_mode="r"`` — this module is the single sanctioned place that
memory-maps store files (rule R015 flags raw ``np.load(..., mmap_mode=...)``
anywhere else).  The manifest is JSON written through the same
``atomic_write_json`` machinery as schemas and checkpoints, and records a
sha256 + byte size per file plus a hash of the schema block, so
``repro data verify`` can prove a store byte-identical to what was written.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from repro.data.io import atomic_write_json
from repro.data.schema import Schema
from repro.data.schema_io import schema_from_dict, schema_to_dict
from repro.errors import SchemaError, StoreCorruptionError, StoreError

FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
LABELS_FILE = "y.npy"


def shard_dir_name(index: int) -> str:
    """Directory name of shard ``index`` (``shard-00000``, ``shard-00001``...)."""
    return f"shard-{index:05d}"


def column_file_name(index: int) -> str:
    """File name of the schema column at position ``index`` within a shard."""
    return f"c{index:04d}.npy"


def canonical_json(payload: object) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace) for hashing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def schema_digest(schema: Schema, protected: Iterable[str]) -> str:
    """sha256 of the canonical schema + protected-set JSON block."""
    payload = schema_to_dict(schema, tuple(protected))
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def manifest_digest(manifest: Mapping[str, object]) -> str:
    """sha256 of a manifest's canonical JSON — the identity a ``StoreRef``
    pins so workers can detect a store rewritten under them."""
    return hashlib.sha256(canonical_json(dict(manifest)).encode()).hexdigest()


def file_sha256(path: str | Path, chunk_size: int = 1 << 20) -> str:
    """Streaming sha256 of a file's bytes (never loads the file whole)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            block = fh.read(chunk_size)
            if not block:
                break
            digest.update(block)
    return digest.hexdigest()


def load_array(path: str | Path, *, mmap: bool = True) -> np.ndarray:
    """Open one store ``.npy`` file, memory-mapped read-only by default.

    This is the sanctioned wrapper around ``np.load(..., mmap_mode="r")``:
    pages are faulted in on access and released when the returned array is
    garbage-collected, which is what keeps :class:`ShardedDataset`'s resident
    set bounded by one shard.  Integrity is *not* checked here — a bit-flipped
    file still loads; ``Registry.verify`` is the integrity gate.
    """
    try:
        return np.load(path, mmap_mode="r" if mmap else None, allow_pickle=False)
    except FileNotFoundError as exc:
        raise StoreCorruptionError(f"shard file {path} is missing") from exc
    except ValueError as exc:
        raise StoreCorruptionError(f"shard file {path} is not a valid .npy: {exc}") from exc


def save_array(path: str | Path, array: np.ndarray) -> None:
    """Write one store ``.npy`` file (plain ``np.save``, no pickling)."""
    with open(path, "wb") as fh:
        np.save(fh, array, allow_pickle=False)


def write_manifest(directory: str | Path, manifest: Mapping[str, object]) -> None:
    """Atomically write ``manifest.json`` into a store directory."""
    atomic_write_json(Path(directory) / MANIFEST_NAME, dict(manifest))


def build_manifest(
    schema: Schema,
    protected: tuple[str, ...],
    shards: list[dict],
    shard_rows: int,
    source: Mapping[str, object] | None = None,
) -> dict:
    """Assemble a manifest dict from per-shard entries produced by the writer."""
    n_rows = shards[-1]["stop"] if shards else 0
    manifest: dict = {
        "format_version": FORMAT_VERSION,
        "schema": schema_to_dict(schema, protected),
        "schema_sha256": schema_digest(schema, protected),
        "n_rows": int(n_rows),
        "shard_rows": int(shard_rows),
        "shards": shards,
    }
    if source is not None:
        manifest["source"] = dict(source)
    return manifest


def read_manifest(directory: str | Path) -> dict:
    """Read and structurally validate a store's ``manifest.json``.

    Raises :class:`~repro.errors.StoreError` when the file is absent or not a
    store manifest, and :class:`~repro.errors.StoreCorruptionError` when the
    structure is present but internally inconsistent (bad version, schema hash
    mismatch, non-contiguous row ranges).
    """
    path = Path(directory) / MANIFEST_NAME
    if not path.is_file():
        raise StoreError(f"{directory} is not a dataset store (no {MANIFEST_NAME})")
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise StoreCorruptionError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(manifest, dict):
        raise StoreCorruptionError(f"{path} must hold a JSON object")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise StoreError(
            f"{path}: format_version {version!r} is not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    for key in ("schema", "schema_sha256", "n_rows", "shard_rows", "shards"):
        if key not in manifest:
            raise StoreCorruptionError(f"{path}: manifest is missing {key!r}")
    validate_manifest(manifest, path)
    return manifest


def validate_manifest(manifest: Mapping[str, object], origin: object = "manifest") -> tuple[Schema, tuple[str, ...]]:
    """Check a manifest's internal consistency; return ``(schema, protected)``.

    Verifies the schema block parses, the recorded schema hash matches a
    recomputation, and the shard row ranges tile ``[0, n_rows)`` contiguously.
    """
    try:
        schema, protected = schema_from_dict(manifest["schema"])
    except SchemaError as exc:
        raise StoreCorruptionError(f"{origin}: bad schema block: {exc}") from exc
    expected = schema_digest(schema, protected)
    if manifest["schema_sha256"] != expected:
        raise StoreCorruptionError(
            f"{origin}: schema_sha256 {manifest['schema_sha256']!r} does not "
            f"match the schema block (expected {expected})"
        )
    shards = manifest["shards"]
    if not isinstance(shards, list):
        raise StoreCorruptionError(f"{origin}: 'shards' must be a list")
    cursor = 0
    for i, entry in enumerate(shards):
        for key in ("dir", "start", "stop", "files"):
            if key not in entry:
                raise StoreCorruptionError(f"{origin}: shard {i} is missing {key!r}")
        if entry["start"] != cursor or entry["stop"] < entry["start"]:
            raise StoreCorruptionError(
                f"{origin}: shard {i} covers rows [{entry['start']}, "
                f"{entry['stop']}) but the previous shard ended at {cursor}"
            )
        cursor = entry["stop"]
    if cursor != manifest["n_rows"]:
        raise StoreCorruptionError(
            f"{origin}: shards cover {cursor} rows but n_rows is {manifest['n_rows']}"
        )
    return schema, protected


__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "LABELS_FILE",
    "shard_dir_name",
    "column_file_name",
    "canonical_json",
    "schema_digest",
    "manifest_digest",
    "file_sha256",
    "load_array",
    "save_array",
    "write_manifest",
    "build_manifest",
    "read_manifest",
    "validate_manifest",
]
