"""Columnar labelled dataset used throughout the library.

The paper's pipeline needs three things from its tabular substrate: boolean
masks for conjunctive patterns over categorical attributes, fast positive /
negative counts inside such regions, and cheap row-level edits (duplicate,
drop, relabel) for the remedy samplers.  :class:`Dataset` provides exactly
that on top of plain numpy arrays — categorical columns are ``int64`` code
arrays indexing the column's domain, numeric columns are ``float64``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.data.schema import Column, Schema
from repro.errors import DataError, SchemaError


class Dataset:
    """An immutable-by-convention labelled table.

    Parameters
    ----------
    schema:
        Column descriptors.
    columns:
        ``{name: ndarray}`` with one 1-D array per schema column, all the
        same length.  Categorical arrays hold integer codes in
        ``[0, cardinality)``; numeric arrays hold floats.
    y:
        Binary labels (0/1), same length as the columns.
    protected:
        Names of the protected attributes (must be categorical columns).
        These define the intersectional space of the paper.

    Mutating methods (``take``, ``drop``, ``append_rows``, ``with_labels``)
    return new :class:`Dataset` objects; the underlying arrays of the source
    are never modified.
    """

    def __init__(
        self,
        schema: Schema,
        columns: Mapping[str, np.ndarray],
        y: np.ndarray,
        protected: Sequence[str] = (),
    ):
        self.schema = schema
        y = np.asarray(y)
        if y.ndim != 1:
            raise DataError(f"y must be 1-D, got shape {y.shape}")
        n = y.shape[0]
        if n:
            bad = ~np.isin(y, (0, 1))
            if bad.any():
                row = int(np.flatnonzero(bad)[0])
                raise DataError(
                    f"labels must be binary 0/1; row {row} has {y[row]!r}"
                )
        self.y = y.astype(np.int8, copy=False)

        self._columns: dict[str, np.ndarray] = {}
        missing = [c.name for c in schema if c.name not in columns]
        if missing:
            raise DataError(f"missing arrays for schema columns {missing}")
        extra = [name for name in columns if name not in schema]
        if extra:
            raise DataError(f"arrays {extra} have no schema column")
        for col in schema:
            arr = np.asarray(columns[col.name])
            if arr.ndim != 1 or arr.shape[0] != n:
                raise DataError(
                    f"column {col.name!r} must be 1-D of length {n}, "
                    f"got shape {arr.shape}"
                )
            if col.is_categorical:
                arr = arr.astype(np.int64, copy=False)
                if n:
                    bad = (arr < 0) | (arr >= col.cardinality)
                    if bad.any():
                        row = int(np.flatnonzero(bad)[0])
                        raise DataError(
                            f"column {col.name!r} has code {int(arr[row])} at "
                            f"row {row}, outside [0, {col.cardinality})"
                        )
            else:
                arr = arr.astype(np.float64, copy=False)
                if n:
                    bad = ~np.isfinite(arr)
                    if bad.any():
                        row = int(np.flatnonzero(bad)[0])
                        raise DataError(
                            f"column {col.name!r} has non-finite value "
                            f"{float(arr[row])!r} at row {row}; features must "
                            "be finite (no NaN/inf)"
                        )
            self._columns[col.name] = arr

        protected = tuple(protected)
        schema.require_categorical(protected)
        self.protected = protected

    # -- basic accessors ----------------------------------------------------
    def __len__(self) -> int:
        return self.y.shape[0]

    @property
    def n_rows(self) -> int:
        return self.y.shape[0]

    @property
    def n_positive(self) -> int:
        return int(self.y.sum())

    @property
    def n_negative(self) -> int:
        return int(self.n_rows - self.y.sum())

    def column(self, name: str) -> np.ndarray:
        """The raw array backing column ``name`` (do not mutate)."""
        if name not in self._columns:
            raise SchemaError(f"unknown column {name!r}")
        return self._columns[name]

    def labels_of(self, name: str) -> np.ndarray:
        """Column values decoded to their string labels (categorical only)."""
        col = self.schema[name]
        if not col.is_categorical:
            raise SchemaError(f"column {name!r} is numeric; has no labels")
        domain = np.asarray(col.domain, dtype=object)
        return domain[self._columns[name]]

    def __repr__(self) -> str:
        return (
            f"Dataset(n={self.n_rows}, +={self.n_positive}, -={self.n_negative}, "
            f"protected={list(self.protected)})"
        )

    # -- pattern masks and counts --------------------------------------------
    def mask(self, assignment: Mapping[str, int]) -> np.ndarray:
        """Boolean mask of rows matching ``{attr: code}`` conjunctively.

        An empty assignment matches every row (the level-0 "entire dataset"
        region of the hierarchy).
        """
        out = np.ones(self.n_rows, dtype=bool)
        for name, code in assignment.items():
            col = self.schema[name]
            if not col.is_categorical:
                raise SchemaError(f"pattern attribute {name!r} must be categorical")
            if not 0 <= int(code) < col.cardinality:
                raise SchemaError(
                    f"code {code} out of range for column {name!r}"
                )
            out &= self._columns[name] == int(code)
        return out

    def counts(self, assignment: Mapping[str, int]) -> tuple[int, int]:
        """``(|r+|, |r-|)`` — positive and negative rows matching the pattern."""
        m = self.mask(assignment)
        pos = int(self.y[m].sum())
        return pos, int(m.sum()) - pos

    def joint_codes(self, attrs: Sequence[str]) -> tuple[np.ndarray, tuple[int, ...]]:
        """Mixed-radix joint code of each row over categorical ``attrs``.

        Returns ``(codes, shape)`` where ``codes[i]`` is the flattened cell
        index of row ``i`` in the cross-product space of the attribute
        domains, and ``shape`` is the per-attribute cardinality tuple.  This
        is the vectorised engine behind hierarchy-level counting: a single
        ``bincount`` over the joint codes yields the size of every region at
        once.
        """
        self.schema.require_categorical(attrs)
        shape = self.schema.cardinalities(attrs)
        if not attrs:
            return np.zeros(self.n_rows, dtype=np.int64), ()
        arrays = [self._columns[a] for a in attrs]
        codes = np.ravel_multi_index(arrays, shape)
        return codes.astype(np.int64, copy=False), shape

    def region_counts(
        self, attrs: Sequence[str], rows: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, tuple[int, ...]]:
        """Positive and negative counts of every cell over ``attrs``.

        Returns ``(pos, neg, shape)`` where ``pos``/``neg`` are flat arrays of
        length ``prod(shape)`` indexed by the mixed-radix joint code.  When
        ``rows`` (a boolean mask or integer index array) is given, only those
        rows are counted — the hierarchy uses this to recount a single
        region's slice without materialising a sub-dataset.
        """
        codes, shape = self.joint_codes(attrs)
        y = self.y
        if rows is not None:
            rows = np.asarray(rows)
            codes = codes[rows]
            y = y[rows]
        size = int(np.prod(shape)) if shape else 1
        pos = np.bincount(codes[y == 1], minlength=size)
        neg = np.bincount(codes[y == 0], minlength=size)
        return pos.astype(np.int64), neg.astype(np.int64), shape

    # -- row-level edits (return new datasets) --------------------------------
    def take(self, indices: np.ndarray) -> "Dataset":
        """New dataset with rows at ``indices`` (boolean mask or int index)."""
        indices = np.asarray(indices)
        cols = {name: arr[indices] for name, arr in self._columns.items()}
        return Dataset(self.schema, cols, self.y[indices], self.protected)

    def drop(self, indices: np.ndarray) -> "Dataset":
        """New dataset with rows at integer ``indices`` removed."""
        keep = np.ones(self.n_rows, dtype=bool)
        keep[np.asarray(indices, dtype=np.int64)] = False
        return self.take(keep)

    def append_rows(self, other: "Dataset") -> "Dataset":
        """New dataset with ``other``'s rows appended (schemas must match)."""
        if other.schema != self.schema:
            raise DataError("cannot append rows with a different schema")
        cols = {
            name: np.concatenate([arr, other._columns[name]])
            for name, arr in self._columns.items()
        }
        return Dataset(
            self.schema, cols, np.concatenate([self.y, other.y]), self.protected
        )

    def duplicate_rows(self, indices: np.ndarray) -> "Dataset":
        """New dataset with copies of rows at ``indices`` appended."""
        return self.append_rows(self.take(np.asarray(indices, dtype=np.int64)))

    def with_labels(self, y: np.ndarray) -> "Dataset":
        """New dataset sharing columns but with replacement labels ``y``."""
        return Dataset(self.schema, self._columns, y, self.protected)

    def with_protected(self, protected: Sequence[str]) -> "Dataset":
        """New dataset view with a different protected-attribute set."""
        return Dataset(self.schema, self._columns, self.y, protected)

    def copy(self) -> "Dataset":
        """Deep copy (fresh arrays)."""
        cols = {name: arr.copy() for name, arr in self._columns.items()}
        return Dataset(self.schema, cols, self.y.copy(), self.protected)

    def apply_delta(
        self,
        kind: str,
        *,
        values: Sequence[float] | None = None,
        label: int | None = None,
        row: int | None = None,
    ) -> tuple["Dataset", dict]:
        """Apply one streaming-style edit; return the new dataset + count delta.

        ``kind`` is ``"insert"`` (``values`` in schema order + ``label``),
        ``"delete"`` (``row``), or ``"relabel"`` (``row`` + ``label``).
        Validation reuses the constructor, so a bad insert raises the same
        :class:`~repro.errors.DataError` column/row-naming messages the
        constructor would for that row.

        The second return value is the leaf-granular count delta over the
        protected space, shaped for
        :meth:`~repro.core.hierarchy.Hierarchy.apply_count_delta`:
        ``{"pattern": Pattern(), "dpos": ndarray, "dneg": ndarray}`` —
        feeding it to a hierarchy built from ``self`` leaves that hierarchy
        equal to one built from the returned dataset.
        """
        from repro.core.pattern import Pattern

        shape = self.schema.cardinalities(self.protected)
        dpos = np.zeros(shape, dtype=np.int64)
        dneg = np.zeros(shape, dtype=np.int64)

        def _cell(dataset: "Dataset", at: int) -> tuple[int, ...]:
            return tuple(int(dataset._columns[a][at]) for a in dataset.protected)

        if kind == "insert":
            if values is None or label is None:
                raise DataError("insert delta needs values= and label=")
            values = list(values)
            if len(values) != len(self.schema):
                raise DataError(
                    f"insert for row {self.n_rows} has {len(values)} values "
                    f"for {len(self.schema)} schema columns "
                    f"{list(self.schema.names)}"
                )
            cols = {
                name: np.concatenate([arr, np.asarray([value])])
                for (name, arr), value in zip(self._columns.items(), values)
            }
            out = Dataset(
                self.schema, cols,
                np.concatenate([self.y, np.asarray([label], dtype=np.int64)]),
                self.protected,
            )
            cell = _cell(out, out.n_rows - 1)
            (dpos if int(label) == 1 else dneg)[cell] += 1
        elif kind == "delete":
            if row is None:
                raise DataError("delete delta needs row=")
            self._require_row(row, "delete")
            cell = _cell(self, row)
            (dpos if int(self.y[row]) == 1 else dneg)[cell] -= 1
            out = self.drop([row])
        elif kind == "relabel":
            if row is None or label is None:
                raise DataError("relabel delta needs row= and label=")
            self._require_row(row, "relabel")
            if label not in (0, 1):
                raise DataError(
                    f"labels must be binary 0/1; row {row} has {label!r}"
                )
            old = int(self.y[row])
            y = self.y.copy()
            y[row] = label
            out = Dataset(self.schema, self._columns, y, self.protected)
            if old != int(label):
                cell = _cell(self, row)
                dpos[cell] += int(label) - old
                dneg[cell] += old - int(label)
        else:
            raise DataError(
                f"unknown delta kind {kind!r}; expected insert/delete/relabel"
            )
        return out, {"pattern": Pattern(), "dpos": dpos, "dneg": dneg}

    def _require_row(self, row: int, verb: str) -> None:
        if not 0 <= row < self.n_rows:
            raise DataError(
                f"{verb} targets unknown row {row}; dataset has rows "
                f"0..{self.n_rows - 1}"
            )

    # -- model-facing feature matrix ------------------------------------------
    def feature_matrix(
        self, features: Sequence[str] | None = None, one_hot: bool = True
    ) -> np.ndarray:
        """Dense ``float64`` design matrix over ``features``.

        Categorical columns are one-hot encoded (dropping nothing — the
        classifiers here do not require full rank) unless ``one_hot`` is
        False, in which case raw integer codes are emitted, which is what the
        native-categorical decision tree expects.
        """
        if features is None:
            features = self.schema.names
        self.schema.require(features)
        blocks: list[np.ndarray] = []
        for name in features:
            col = self.schema[name]
            arr = self._columns[name]
            if col.is_categorical and one_hot:
                block = np.zeros((self.n_rows, col.cardinality))
                block[np.arange(self.n_rows), arr] = 1.0
                blocks.append(block)
            else:
                blocks.append(arr.astype(np.float64)[:, None])
        if not blocks:
            return np.zeros((self.n_rows, 0))
        return np.hstack(blocks)

    # -- construction helpers --------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Iterable[Mapping[str, object]],
        label_key: str = "label",
        protected: Sequence[str] = (),
    ) -> "Dataset":
        """Build from an iterable of ``{column: label_or_value}`` dicts.

        Categorical values may be given as labels (strings) or codes (ints).
        """
        rows = list(rows)
        columns: dict[str, list[float | int]] = {c.name: [] for c in schema}
        y: list[int] = []
        for i, row in enumerate(rows):
            if label_key not in row:
                raise DataError(f"row {i} is missing the label key {label_key!r}")
            y.append(int(row[label_key]))  # type: ignore[arg-type]
            for col in schema:
                if col.name not in row:
                    raise DataError(f"row {i} is missing column {col.name!r}")
                value = row[col.name]
                if col.is_categorical and isinstance(value, str):
                    columns[col.name].append(col.code_of(value))
                else:
                    columns[col.name].append(value)  # type: ignore[arg-type]
        arrays = {name: np.asarray(vals) for name, vals in columns.items()}
        return cls(schema, arrays, np.asarray(y), protected)


def concat(datasets: Sequence[Dataset]) -> Dataset:
    """Concatenate datasets with identical schemas into one."""
    if not datasets:
        raise DataError("concat requires at least one dataset")
    out = datasets[0]
    for ds in datasets[1:]:
        out = out.append_rows(ds)
    return out


__all__ = ["Dataset", "Schema", "Column", "concat"]
