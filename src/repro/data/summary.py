"""Dataset profiling: the first look an auditor takes at training data.

:func:`summarize_dataset` produces per-column profiles (domains, counts,
numeric moments), per-protected-attribute class rates, and — the paper's
lens — the leaf-level region table with imbalance scores, ready to render
as text via :func:`summary_table` or through the CLI's ``describe`` command.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset


@dataclass(frozen=True)
class ColumnProfile:
    """Summary of one column."""

    name: str
    kind: str
    cardinality: int  # 0 for numeric
    top_value: str  # modal label or "-" for numeric
    top_fraction: float
    mean: float  # nan for categorical
    std: float  # nan for categorical


@dataclass(frozen=True)
class GroupRate:
    """Class rate of one level-1 protected group."""

    attribute: str
    value: str
    size: int
    positive_rate: float


@dataclass(frozen=True)
class RegionRow:
    """One leaf-level region with its imbalance score."""

    description: str
    size: int
    positives: int
    negatives: int
    ratio: float


@dataclass(frozen=True)
class DatasetSummary:
    """Full profile of a dataset: label balance, columns, groups, regions."""

    n_rows: int
    n_positive: int
    n_negative: int
    protected: tuple[str, ...]
    columns: tuple[ColumnProfile, ...]
    group_rates: tuple[GroupRate, ...]
    leaf_regions: tuple[RegionRow, ...]


def summarize_dataset(dataset: Dataset, max_regions: int = 20) -> DatasetSummary:
    """Profile ``dataset`` (leaf regions truncated to the largest ones)."""
    columns = []
    for col in dataset.schema:
        arr = dataset.column(col.name)
        if col.is_categorical:
            counts = np.bincount(arr, minlength=col.cardinality)
            top = int(np.argmax(counts))
            columns.append(
                ColumnProfile(
                    name=col.name,
                    kind=col.kind,
                    cardinality=col.cardinality,
                    top_value=col.label_of(top),
                    top_fraction=float(counts[top] / max(dataset.n_rows, 1)),
                    mean=float("nan"),
                    std=float("nan"),
                )
            )
        else:
            columns.append(
                ColumnProfile(
                    name=col.name,
                    kind=col.kind,
                    cardinality=0,
                    top_value="-",
                    top_fraction=float("nan"),
                    mean=float(arr.mean()) if arr.size else float("nan"),
                    std=float(arr.std()) if arr.size else float("nan"),
                )
            )

    group_rates = []
    for attr in dataset.protected:
        col = dataset.schema[attr]
        for code in range(col.cardinality):
            mask = dataset.column(attr) == code
            size = int(mask.sum())
            rate = float(dataset.y[mask].mean()) if size else float("nan")
            group_rates.append(
                GroupRate(attr, col.label_of(code), size, rate)
            )

    # Imported here: repro.core depends on repro.data, so the summary's use
    # of the hierarchy must not create an import cycle at package load.
    from repro.core.hierarchy import Hierarchy
    from repro.core.imbalance import imbalance_score

    leaf_regions: list[RegionRow] = []
    if dataset.protected and dataset.n_rows:
        hierarchy = Hierarchy(dataset, max_level=len(dataset.protected))
        leaf = hierarchy.node(dataset.protected)
        rows = sorted(
            leaf.iter_regions(min_size=1), key=lambda t: -(t[1] + t[2])
        )
        for pattern, pos, neg in rows[:max_regions]:
            leaf_regions.append(
                RegionRow(
                    description=pattern.describe(dataset.schema),
                    size=pos + neg,
                    positives=pos,
                    negatives=neg,
                    ratio=imbalance_score(pos, neg),
                )
            )

    return DatasetSummary(
        n_rows=dataset.n_rows,
        n_positive=dataset.n_positive,
        n_negative=dataset.n_negative,
        protected=dataset.protected,
        columns=tuple(columns),
        group_rates=tuple(group_rates),
        leaf_regions=tuple(leaf_regions),
    )


def summary_table(summary: DatasetSummary) -> str:
    """Render a :class:`DatasetSummary` as stacked text tables."""
    from repro.experiments.reporting import format_table

    parts = [
        f"rows: {summary.n_rows}  (+{summary.n_positive} / -{summary.n_negative})"
        f"   protected: {', '.join(summary.protected) or '(none)'}"
    ]
    parts.append(
        format_table(
            ("column", "kind", "card.", "top value", "top frac", "mean", "std"),
            [
                (c.name, c.kind, c.cardinality or "-", c.top_value,
                 c.top_fraction, c.mean, c.std)
                for c in summary.columns
            ],
            precision=3,
            title="columns",
        )
    )
    if summary.group_rates:
        parts.append(
            format_table(
                ("group", "size", "positive rate"),
                [
                    (f"{g.attribute}={g.value}", g.size, g.positive_rate)
                    for g in summary.group_rates
                ],
                precision=3,
                title="protected groups (level 1)",
            )
        )
    if summary.leaf_regions:
        parts.append(
            format_table(
                ("region", "size", "+", "-", "imbalance"),
                [
                    (r.description, r.size, r.positives, r.negatives, r.ratio)
                    for r in summary.leaf_regions
                ],
                precision=2,
                title="largest leaf regions",
            )
        )
    return "\n\n".join(parts)
