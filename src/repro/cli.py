"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``generate``  write one of the synthetic datasets (plus its schema JSON)
              to CSV so the other commands — or external tools — can use it;
``identify``  print the Implicit Biased Set of a CSV (Algorithm 1);
``remedy``    write a remedied copy of a CSV (Algorithm 2);
``audit``     train a downstream model on a train CSV, audit subgroup
              fairness on a test CSV, print unfair subgroups and indexes;
``experiment``run one of the paper's experiments by id (fig3, fig4, fig5,
              fig6, fig7, fig8, table3, fig9, robustness) on the synthetic
              data, fault-tolerantly: ``--max-retries`` / ``--cell-timeout``
              bound each sweep cell, ``--checkpoint`` persists completed
              cells, ``--resume`` restarts an interrupted sweep without
              re-running them, and ``--backend process --workers N`` runs
              the sweep cells in crash-isolated worker processes (see
              ``docs/resilience.md``);
``checkpoint``inspect or prune sweep checkpoints: ``checkpoint inspect``
              prints run id, cell counts, and age; ``checkpoint prune``
              deletes all but the newest checkpoints;
``stream``    continuously audit a *changing* dataset: ``stream init``
              creates a durable delta journal, ``stream ingest`` journals
              and incrementally applies micro-batches of row edits,
              ``stream status`` / ``stream replay`` / ``stream alarms``
              recover and inspect the audited state, and ``stream
              compact`` folds the journal into a fresh generation (see
              ``docs/streaming.md``);
``data``      manage the on-disk sharded dataset registry: ``data
              materialize`` writes a named store (from a synthetic
              generator, shard by shard, or from a CSV), ``data list``
              enumerates entries, ``data verify`` re-hashes every shard
              file against its manifest, and ``data prune`` deletes
              entries not leased by a live process and sweeps orphaned
              ``.tmp-*`` directories (see ``docs/datasets.md``);
``serve``     run the fault-tolerant audit gateway: an HTTP front over a
              stream directory (multi-producer ingest with admission
              control, deadlines, and idempotent acks) and, optionally, a
              dataset registry (verified shard fetch) with remedy-on-drift
              behind a circuit breaker (see ``docs/serving.md``);
``client``    talk to a running gateway with typed, deterministic retries:
              ``client ingest`` submits a batches file idempotently,
              ``client fetch`` installs a dataset store with client-side
              sha256 verification, ``client health`` prints the health
              document;
``analyze``   run the repo's static-analysis rules (per-file R001–R008 and
              R015–R016 plus whole-program R009–R014) over Python sources,
              gated by an optional baseline file and sped up by an
              incremental cache;
``trace``     inspect observability artefacts: ``trace summarize`` renders
              the span tree, top-k table, and metric totals of a JSONL
              trace written with ``--trace`` (see ``docs/observability.md``).

Every command that reads a CSV requires the matching ``--schema`` JSON
(written by ``generate`` or by :func:`repro.data.schema_io.write_schema`).

Observability: the pipeline commands accept ``--trace out.jsonl``.  The run
then executes under an ambient :class:`repro.obs.Tracer`; on exit the span
tree, counters, and events are serialised to the given JSONL path and a run
manifest (config hash, seed, versions, metric totals) is embedded as the
final record and written as an ``out.jsonl.manifest.json`` sidecar.
Tracing is semantically inert — outputs are byte-identical with and without
``--trace``.  ``experiment --checkpoint c.json`` additionally writes a
``c.json.manifest.json`` sidecar next to the sweep artefact.

Exit codes: 0 on success; 2 for any :class:`~repro.errors.ReproError`
(bad input, malformed schema, checkpoint mismatch, ...); 3 when an
experiment completed but one or more cells failed after their retry
budget (the printed table carries ``FAILED(...)``/``TIMEOUT`` markers);
130 on ``KeyboardInterrupt`` (completed cells are already checkpointed).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path
from typing import Sequence

from repro.audit import fairness_index, unfair_subgroups
from repro.core import METHOD_OPTIMIZED, METHODS, identify_ibs, remedy_dataset
from repro.core.samplers import TECHNIQUES
from repro.data.dataset import Dataset
from repro.data.io import atomic_write_text, read_csv, write_csv
from repro.data.schema_io import read_schema, write_schema
from repro.data.split import train_test_split
from repro.data.synth import load_adult, load_compas, load_lawschool
from repro.errors import ExperimentError, ReproError
from repro.experiments.reporting import format_table
from repro.ml.metrics import FNR, FPR
from repro.ml.models import MODEL_NAMES, make_model
from repro.obs import (
    Tracer,
    build_manifest,
    manifest_path_for,
    tracing,
    write_manifest,
)

DATASETS = {
    "adult": load_adult,
    "compas": load_compas,
    "lawschool": load_lawschool,
}

#: CLI exit-code contract (see module docstring and ``docs/resilience.md``).
EXIT_OK = 0
EXIT_REPRO_ERROR = 2
EXIT_PARTIAL = 3
EXIT_INTERRUPT = 130


def _load(csv_path: str, schema_path: str) -> Dataset:
    schema, protected = read_schema(schema_path)
    return read_csv(csv_path, schema, protected=protected)


def _manifest_params(args: argparse.Namespace) -> dict:
    """The run's full parameter set, minus plumbing, for the manifest."""
    return {
        k: v
        for k, v in vars(args).items()
        if k not in ("func", "trace") and not callable(v)
    }


def _finish_trace(args: argparse.Namespace, tracer: Tracer) -> None:
    """Write the JSONL trace plus its manifest sidecar when ``--trace`` is set."""
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return
    manifest = build_manifest(
        command=args.command,
        params=_manifest_params(args),
        seed=getattr(args, "seed", None),
        tracer=tracer,
    )
    tracer.write(trace_path, manifest=manifest.to_dict())
    write_manifest(manifest, manifest_path_for(trace_path))


# -- subcommand implementations --------------------------------------------------

def cmd_generate(args: argparse.Namespace) -> int:
    loader = DATASETS[args.dataset]
    kwargs = {"seed": args.seed}
    if args.rows is not None:
        kwargs["n_rows"] = args.rows
    dataset = loader(**kwargs)
    out = Path(args.output)
    write_csv(dataset, out)
    schema_path = out.with_suffix(".schema.json")
    write_schema(dataset, schema_path)
    print(f"wrote {dataset.n_rows} rows to {out} (schema: {schema_path})")
    return 0


def cmd_identify(args: argparse.Namespace) -> int:
    dataset = _load(args.csv, args.schema)
    reports = identify_ibs(
        dataset,
        args.tau_c,
        T=args.T,
        k=args.k,
        scope=args.scope,
        method=args.method,
    )
    rows = [
        (
            r.pattern.describe(dataset.schema),
            r.size,
            r.ratio,
            r.neighbor_ratio,
            r.difference,
        )
        for r in reports
    ]
    print(
        format_table(
            ("region", "size", "ratio_r", "ratio_rn", "difference"),
            rows,
            precision=3,
            title=f"Implicit Biased Set (tau_c={args.tau_c}, T={args.T}, k={args.k})",
        )
    )
    print(f"\n{len(reports)} biased regions")
    return 0


def cmd_remedy(args: argparse.Namespace) -> int:
    dataset = _load(args.csv, args.schema)
    result = remedy_dataset(
        dataset,
        args.tau_c,
        T=args.T,
        k=args.k,
        technique=args.technique,
        scope=args.scope,
        method=args.method,
        seed=args.seed,
    )
    write_csv(result.dataset, args.output)
    if args.audit_log:
        from repro.core.serialize import write_audit_trail

        write_audit_trail(result, args.audit_log)
        print(f"audit trail written to {args.audit_log}")
    print(
        f"remedied {result.n_regions_remedied} regions "
        f"({result.rows_touched} rows touched); "
        f"{dataset.n_rows} -> {result.dataset.n_rows} rows written to {args.output}"
    )
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    train = _load(args.train, args.schema)
    if args.test:
        test = _load(args.test, args.schema)
    else:
        train, test = train_test_split(train, args.test_fraction, seed=args.seed)
    model = make_model(args.model, seed=args.seed).fit(train)
    pred = model.predict(test)
    acc = float((pred == test.y).mean())
    print(f"model={args.model}  accuracy={acc:.4f}")
    for gamma in (FPR, FNR):
        fi = fairness_index(test, pred, gamma)
        print(f"fairness index ({gamma.upper()}): {fi:.4f}")
    unfair = unfair_subgroups(
        test, pred, gamma=args.gamma, tau_d=args.tau_d, min_size=args.k
    )
    rows = [
        (
            s.pattern.describe(test.schema),
            s.size,
            s.gamma_group,
            s.gamma_dataset,
            s.divergence,
            s.p_value,
        )
        for s in unfair
    ]
    print()
    print(
        format_table(
            ("subgroup", "size", f"{args.gamma}_g", f"{args.gamma}_D", "divergence", "p"),
            rows,
            precision=3,
            title=f"Unfair subgroups (gamma={args.gamma}, tau_d={args.tau_d})",
        )
    )
    return 0


def parse_subgroup(spec: str, schema) -> "Pattern":
    """Parse 'attr=label,attr=label' into a Pattern using schema domains."""
    from repro.core import Pattern

    assignment = {}
    for part in spec.split(","):
        if "=" not in part:
            raise SystemExit(f"bad subgroup element {part!r}; use attr=value")
        attr, label = part.split("=", 1)
        assignment[attr.strip()] = label.strip()
    return Pattern.from_labels(schema, assignment)


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.core import explain_subgroup

    dataset = _load(args.csv, args.schema)
    subgroup = parse_subgroup(args.subgroup, dataset.schema)
    explanation = explain_subgroup(
        dataset, subgroup, tau_c=args.tau_c, T=args.T, k=args.k
    )
    print(explanation.describe(dataset.schema))
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    from repro.core import plan_remedies, plan_table

    dataset = _load(args.csv, args.schema)
    plans = plan_remedies(dataset, tau_grid=args.tau_grid, k=args.k)
    print(plan_table(plans))
    return 0


def cmd_describe(args: argparse.Namespace) -> int:
    from repro.data.summary import summarize_dataset, summary_table

    dataset = _load(args.csv, args.schema)
    print(summary_table(summarize_dataset(dataset, max_regions=args.regions)))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import ReportScale, generate_report

    scale = ReportScale(
        adult_rows=args.adult_rows,
        compas_rows=args.compas_rows,
        lawschool_rows=args.lawschool_rows,
        models=tuple(args.models),
        seed=args.seed,
    )
    report = generate_report(scale)
    atomic_write_text(args.output, report.to_markdown())
    total = sum(s.seconds for s in report.sections)
    print(f"wrote {args.output} ({len(report.sections)} sections, {total:.1f}s)")
    return 0


#: Experiments whose sweeps run through param-grid helpers rather than
#: registered executor cells — the process backend cannot address them.
_INPROC_ONLY_EXPERIMENTS = ("fig7", "fig8")


def _build_executor(args: argparse.Namespace) -> "CellExecutor":
    """Assemble the fault-tolerant executor from the ``experiment`` flags."""
    from repro.resilience import (
        BACKEND_PROCESS,
        CellExecutor,
        Checkpoint,
        RetryPolicy,
        sweep_run_id,
    )

    if args.max_retries < 0:
        raise ExperimentError(f"--max-retries must be >= 0, got {args.max_retries}")
    if args.workers < 1:
        raise ExperimentError(f"--workers must be >= 1, got {args.workers}")
    if (
        args.backend == BACKEND_PROCESS
        and args.experiment in _INPROC_ONLY_EXPERIMENTS
    ):
        raise ExperimentError(
            f"--backend process is not supported for {args.experiment}: its "
            "sweep is not cell-addressable; use the default inproc backend"
        )
    checkpoint = None
    if args.resume and not args.checkpoint:
        raise ExperimentError("--resume requires --checkpoint <path>")
    if args.checkpoint:
        path = Path(args.checkpoint)
        if path.exists() and not args.resume:
            raise ExperimentError(
                f"checkpoint {path} already exists; pass --resume to continue "
                "that sweep or delete the file to start over"
            )
        run_id = sweep_run_id(
            experiment=args.experiment,
            rows=args.rows,
            models=list(args.models),
            seed=args.seed,
        )
        checkpoint = Checkpoint(path, run_id, resume=args.resume)
    policy = RetryPolicy(max_attempts=args.max_retries + 1, seed=args.seed)
    return CellExecutor(
        policy=policy,
        deadline=args.cell_timeout,
        checkpoint=checkpoint,
        backend=args.backend,
        max_workers=args.workers,
    )


def cmd_experiment(args: argparse.Namespace) -> int:
    executor = _build_executor(args)
    try:
        return _dispatch_experiment(args, executor)
    finally:
        # Releases the warm worker pool and its shared-memory datasets —
        # also on SIGINT/SIGTERM, whose drain path raises KeyboardInterrupt
        # through here after in-flight cells have finished reading.
        executor.close()


def _dispatch_experiment(args: argparse.Namespace, executor: "CellExecutor") -> int:
    # Imported lazily: the experiment modules pull in every subsystem.
    from repro.experiments import (
        identification_vs_attrs,
        run_baseline_comparison,
        run_seed_sweep,
        run_tradeoff,
        run_validation,
        speedup_summary,
        sweep_T,
        sweep_tau_c,
        validation_summary,
        validation_table,
    )

    rows = args.rows
    if args.experiment == "fig3":
        data = load_compas(rows or 6172, seed=11)
        results = run_validation(
            data, models=tuple(args.models), seed=args.seed, executor=executor
        )
        print(validation_table(results, schema=data.schema))
        print()
        print(validation_summary(results))
    elif args.experiment in ("fig4", "fig5", "fig6"):
        name, loader, tau = {
            "fig4": ("Adult", load_adult, 0.5),
            "fig5": ("Law School", load_lawschool, 0.1),
            "fig6": ("ProPublica", load_compas, 0.1),
        }[args.experiment]
        default_rows = {"fig4": 12000, "fig5": 4590, "fig6": 6172}[args.experiment]
        data = loader(rows or default_rows)
        result = run_tradeoff(
            data, name, tau_c=tau, models=tuple(args.models), seed=args.seed,
            executor=executor,
        )
        print(result.table())
    elif args.experiment == "fig7":
        data = load_compas(rows or 6172, seed=11)
        sweep = sweep_tau_c(data, "ProPublica", model=args.models[0], seed=args.seed)
        print(sweep.table("Fig. 7 — varying tau_c"))
    elif args.experiment == "fig8":
        data = load_compas(rows or 6172, seed=11)
        sweep = sweep_T(data, "ProPublica", tau_c=0.1, model=args.models[0], seed=args.seed)
        print(sweep.table("Fig. 8 — T = 1 vs T = |X|"))
    elif args.experiment == "table3":
        data = load_adult(rows or 12000, seed=5)
        print(run_baseline_comparison(data, seed=args.seed, executor=executor).table())
    elif args.experiment == "fig9":
        result = identification_vs_attrs(
            n_rows=rows or 10000, attr_grid=(2, 4, 6, 8), executor=executor
        )
        print(result.table("#attrs"))
        print(f"speedups: {speedup_summary(result)}")
    elif args.experiment == "robustness":
        data = load_compas(rows or 6172, seed=11)
        result = run_seed_sweep(
            data, "ProPublica", model=args.models[0], executor=executor
        )
        print(result.table())
    else:  # pragma: no cover - argparse choices prevent this
        raise SystemExit(f"unknown experiment {args.experiment}")
    if args.checkpoint:
        # Attach provenance to the sweep artefact: config hash, seed,
        # versions, and the run's metric totals from the ambient tracer.
        from repro.obs import current_tracer

        manifest = build_manifest(
            command=f"experiment:{args.experiment}",
            params=_manifest_params(args),
            seed=args.seed,
            tracer=current_tracer(),
        )
        write_manifest(manifest, manifest_path_for(args.checkpoint))
    if executor.n_failed:
        print(
            f"\n{executor.n_failed} cell(s) failed after retries — "
            "see the status column above",
            file=sys.stderr,
        )
        return EXIT_PARTIAL
    return EXIT_OK


def cmd_checkpoint_inspect(args: argparse.Namespace) -> int:
    from repro.resilience import inspect_checkpoint

    info = inspect_checkpoint(args.path)
    print(f"checkpoint: {info['path']}")
    print(f"run id:     {info['run_id']}")
    print(f"cells:      {info['n_cells']} ({info['n_done']} ok, "
          f"{info['n_failed']} failed)")
    if info["failed"]:
        print(f"failed:     {', '.join(info['failed'])}")
    print(f"age:        {info['age_seconds']:.0f}s")
    return 0


def cmd_checkpoint_prune(args: argparse.Namespace) -> int:
    from repro.resilience import prune_checkpoints

    deleted = prune_checkpoints(args.paths, keep_latest=args.keep_latest)
    for path in deleted:
        print(f"deleted {path}")
    print(f"pruned {len(deleted)} checkpoint(s), kept the "
          f"{args.keep_latest} newest")
    return 0


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    from repro.obs import read_trace, summarize

    print(summarize(read_trace(args.trace_file), top=args.top))
    return 0


def cmd_stream_init(args: argparse.Namespace) -> int:
    from repro.stream.journal import DeltaLog, StreamConfig

    schema, protected = read_schema(args.schema)
    config = StreamConfig(
        schema=schema,
        protected=protected,
        tau_c=args.tau_c,
        T=args.T,
        k=args.k,
        hysteresis=args.hysteresis,
        queue_limit=args.queue_limit,
        retry_budget=args.retry_budget,
        segment_bytes=args.segment_bytes,
        compact_bytes=args.compact_bytes,
    )
    log = DeltaLog.create(args.directory, config)
    log.close()
    print(
        f"initialised stream at {args.directory} "
        f"(tau_c={config.tau_c}, T={config.T}, k={config.k}, "
        f"hysteresis={config.hysteresis})"
    )
    return 0


def cmd_stream_ingest(args: argparse.Namespace) -> int:
    from repro.stream.chaos import chaos_hook_from_env
    from repro.stream.service import StreamService, read_batches_file

    batches = read_batches_file(args.batches)
    service, _report = StreamService.open(
        args.directory, allow_empty=True, chaos_hook=chaos_hook_from_env()
    )
    try:
        before = service.auditor.n_batches
        dead_before = len(service.log.dead_letters())
        service.ingest(batches)
        service.retry_dead_letters()
        if args.compact:
            service.compact()
        else:
            service.maybe_compact()
        applied = service.auditor.n_batches - before
        quarantined = len(service.log.dead_letters()) - dead_before
        print(
            f"applied {applied} of {len(batches)} batches "
            f"({len(batches) - applied} duplicate), "
            f"{quarantined} dead-letter entries"
        )
        print(f"watermark {service.auditor.watermark}, "
              f"{service.auditor.state.n_alive} rows alive")
        print(f"digest {service.auditor.digest()}")
    finally:
        service.close()
    return 0


def cmd_stream_status(args: argparse.Namespace) -> int:
    from repro.serve.protocol import canonical_json_bytes
    from repro.stream.service import StreamService

    service, report = StreamService.open(args.directory, allow_empty=False)
    try:
        status = service.status()
        if args.json:
            # Machine form: exactly the gateway health endpoint's "stream"
            # document, canonical encoding, no recovery prose.
            sys.stdout.buffer.write(canonical_json_bytes(status))
            return 0
        print(f"recovery: {report.describe()}")
        rows = [
            (key, status[key])
            for key in (
                "watermark", "n_batches", "next_row", "n_alive",
                "n_positive", "n_biased", "active_alarms",
                "generation_bytes",
            )
        ]
        print(format_table(("field", "value"), rows, title="stream status"))
        print(f"segments: {', '.join(status['segments'])}")
        print(f"digest {status['digest']}")
    finally:
        service.close()
    return 0


def _print_stream_state(auditor) -> None:
    """Replay output: the byte-compare target of the chaos harness.

    Everything here is a pure function of the journal's committed batches
    — no wall-clock, no recovery details — so two replays of equivalent
    journals print identical bytes.
    """
    schema = auditor.config.schema
    print(f"watermark {auditor.watermark}, {auditor.n_batches} batches")
    print(
        f"{auditor.state.n_alive} rows alive "
        f"({auditor.state.n_alive_positive} positive), "
        f"next row id {auditor.state.next_row_id}"
    )
    reports = auditor.reports()
    rows = [
        (
            r.pattern.describe(schema),
            r.size,
            r.ratio,
            r.neighbor_ratio,
            r.difference,
        )
        for r in reports
    ]
    print(
        format_table(
            ("region", "size", "ratio_r", "ratio_rn", "difference"),
            rows,
            precision=3,
            title=f"streamed Implicit Biased Set ({len(reports)} regions)",
        )
    )
    alarms = [
        (pattern.describe(schema), diff)
        for pattern, diff in auditor.monitor.active()
    ]
    print(
        format_table(
            ("alarmed region", "difference"),
            alarms,
            precision=3,
            title=f"active drift alarms ({len(alarms)})",
        )
    )
    print(f"digest {auditor.digest()}")


def cmd_stream_replay(args: argparse.Namespace) -> int:
    from repro.stream.engine import StreamAuditor
    from repro.stream.journal import DeltaLog

    log, _report = DeltaLog.recover(args.directory, allow_empty=False)
    try:
        auditor = StreamAuditor.from_journal(log, upto_seq=args.to_seq)
    finally:
        log.close()
    _print_stream_state(auditor)
    return 0


def cmd_stream_alarms(args: argparse.Namespace) -> int:
    from repro.stream.engine import StreamAuditor
    from repro.stream.journal import DeltaLog

    log, _report = DeltaLog.recover(args.directory, allow_empty=False)
    try:
        auditor = StreamAuditor.from_journal(log)
    finally:
        log.close()
    schema = auditor.config.schema
    active = auditor.monitor.active()
    rows = [(pattern.describe(schema), diff) for pattern, diff in active]
    print(
        format_table(
            ("alarmed region", "difference"),
            rows,
            precision=3,
            title=f"active drift alarms ({len(rows)})",
        )
    )
    if args.events:
        event_rows = [
            (e.kind, e.batch_seq, e.pattern.describe(schema),
             "-" if e.difference is None else e.difference)
            for e in auditor.monitor.events
        ]
        print(
            format_table(
                ("event", "batch seq", "region", "difference"),
                event_rows,
                precision=3,
                title=(
                    f"alarm events since the compaction horizon "
                    f"({auditor.monitor.events_dropped} earlier dropped)"
                ),
            )
        )
    return 0


def cmd_stream_compact(args: argparse.Namespace) -> int:
    from repro.stream.service import StreamService

    service, _report = StreamService.open(args.directory, allow_empty=True)
    try:
        before = service.log.generation_bytes()
        service.compact()
        print(
            f"compacted generation {service.log.generation - 1} -> "
            f"{service.log.generation}: {before} -> "
            f"{service.log.generation_bytes()} bytes"
        )
    finally:
        service.close()
    return 0


def _fmt_bytes(n: int) -> str:
    """Human size: ``1.5 MB`` style, decimal units."""
    value = float(n)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1000.0 or unit == "GB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1000.0
    return f"{int(n)} B"


def cmd_data_materialize(args: argparse.Namespace) -> int:
    from repro.data.store import Registry, synth_chunks
    from repro.errors import StoreError

    registry = Registry(args.root)
    if args.csv:
        if not args.schema:
            raise StoreError("materialize from --csv needs --schema")
        dataset = _load(args.csv, args.schema)
        store = registry.materialize(
            args.name,
            dataset,
            shard_rows=args.shard_rows,
            source={"kind": "csv", "path": str(args.csv)},
            overwrite=args.overwrite,
        )
    else:
        chunks = synth_chunks(
            DATASETS[args.generator], args.rows, args.shard_rows, args.seed
        )
        store = registry.materialize(
            args.name,
            chunks=chunks,
            shard_rows=args.shard_rows,
            source={
                "kind": "synth",
                "generator": args.generator,
                "rows": args.rows,
                "seed": args.seed,
            },
            overwrite=args.overwrite,
        )
    print(
        f"materialized {args.name}: {store.n_rows} rows in "
        f"{store.n_shards} shard(s) at {registry.path_of(args.name)}"
    )
    return EXIT_OK


def cmd_data_list(args: argparse.Namespace) -> int:
    from repro.data.store import Registry
    from repro.serve.protocol import canonical_json_bytes, registry_payload

    registry = Registry(args.root)
    if args.json:
        # Machine form: exactly the gateway's GET /datasets document.
        sys.stdout.buffer.write(canonical_json_bytes(registry_payload(registry)))
        return EXIT_OK
    rows = []
    for name, manifest in registry.entries():
        nbytes = sum(
            meta["nbytes"]
            for shard in manifest["shards"]
            for meta in shard["files"].values()
        )
        rows.append(
            [
                name,
                str(manifest["n_rows"]),
                str(len(manifest["shards"])),
                _fmt_bytes(nbytes),
                str(len(registry.live_leases(name))),
            ]
        )
    if rows:
        print(format_table(["name", "rows", "shards", "size", "leases"], rows))
    else:
        print(f"no datasets under {registry.root}")
    orphans = registry.tmp_dirs()
    if orphans:
        print(
            f"{len(orphans)} orphaned .tmp-* dir(s) from interrupted "
            f"materializations (run `repro data prune` to sweep)"
        )
    return EXIT_OK


def cmd_data_verify(args: argparse.Namespace) -> int:
    from repro.data.store import Registry

    registry = Registry(args.root)
    names = args.names or registry.names()
    for name in names:
        report = registry.verify(name)
        print(
            f"{name}: ok ({report['n_shards']} shards, "
            f"{report['files_checked']} files, "
            f"{_fmt_bytes(report['bytes_checked'])} hashed)"
        )
    print(f"verified {len(names)} dataset(s)")
    return EXIT_OK


def cmd_data_prune(args: argparse.Namespace) -> int:
    from repro.data.store import Registry

    registry = Registry(args.root)
    report = registry.prune(
        args.names or None, force=args.force, dry_run=args.dry_run
    )
    verb = "would remove" if args.dry_run else "removed"
    for name in report["removed"]:
        print(f"{verb} {name}")
    for name, pids in report["kept"].items():
        print(f"kept {name}: leased by live pid(s) {pids} (use --force)")
    for tmp in report["swept"]:
        print(f"{'would sweep' if args.dry_run else 'swept'} {tmp}")
    if not any((report["removed"], report["kept"], report["swept"])):
        print("nothing to prune")
    return EXIT_OK


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.data.store import Registry
    from repro.serve.gateway import AuditGateway, GatewayConfig
    from repro.serve.protocol import canonical_json_bytes
    from repro.serve.remedy import RemedyController, RemedyPolicy
    from repro.stream.chaos import chaos_hook_from_env
    from repro.stream.service import StreamService

    service, report = StreamService.open(
        args.directory, allow_empty=True, chaos_hook=chaos_hook_from_env()
    )
    registry = Registry(args.registry) if args.registry else None
    controller = None
    if args.remedy:
        controller = RemedyController(
            service,
            RemedyPolicy(budget=args.remedy_budget, seed=args.remedy_seed),
        )
    gateway = AuditGateway(
        service,
        registry=registry,
        config=GatewayConfig(
            host=args.host,
            port=args.port,
            admission_limit=args.admission_limit,
            deadline_seconds=args.deadline,
        ),
        controller=controller,
    )
    host, port = gateway.address
    # Ready line: one JSON document with the bound address (port 0 resolves
    # here), so wrappers can parse it and know the gateway is accepting.
    sys.stdout.buffer.write(
        canonical_json_bytes(
            {"host": host, "port": port, "recovery": report.describe()}
        )
    )
    sys.stdout.flush()
    gateway.run()  # returns after a SIGTERM/SIGINT-triggered drain
    print("drained")
    return EXIT_OK


def _gateway_client(args: argparse.Namespace):
    from repro.resilience import RetryPolicy
    from repro.serve.client import GatewayClient

    retry = RetryPolicy(
        max_attempts=args.retries, base_delay=args.backoff, jitter=0.5
    )
    return GatewayClient(args.host, args.port, retry=retry)


def cmd_client_health(args: argparse.Namespace) -> int:
    from repro.serve.protocol import canonical_json_bytes

    sys.stdout.buffer.write(canonical_json_bytes(_gateway_client(args).health()))
    return EXIT_OK


def cmd_client_ingest(args: argparse.Namespace) -> int:
    from repro.stream.service import read_batches_file

    client = _gateway_client(args)
    fresh = duplicate = 0
    for batch_id, deltas in read_batches_file(args.batches):
        ack = client.ingest(batch_id, deltas, deadline=args.deadline)
        if ack["duplicate"]:
            duplicate += 1
        else:
            fresh += 1
    print(
        f"acked {fresh + duplicate} batches ({duplicate} duplicate) "
        f"against {args.host}:{args.port}"
    )
    return EXIT_OK


def cmd_client_fetch(args: argparse.Namespace) -> int:
    client = _gateway_client(args)
    dest = client.fetch_dataset(args.name, args.dest)
    print(f"fetched {args.name} into {dest} (sha256-verified)")
    return EXIT_OK


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.runner import list_rules, run

    if args.list_rules:
        print(list_rules())
        return 0
    rule_ids = None
    if args.rules is not None:
        rule_ids = tuple(part.strip() for part in args.rules.split(",") if part.strip())
    return run(
        args.paths,
        baseline_path=args.baseline,
        update_baseline=args.update_baseline,
        prune=args.prune_baseline,
        output_format=args.format,
        rule_ids=rule_ids,
        cache_path=args.cache,
        changed_only=args.changed_only,
        show_stats=args.stats,
    )


# -- parser wiring ---------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IBS identification and dataset remedy (ICDE 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace",
            default=None,
            help="write a JSONL span/metric trace of this run (plus a "
            ".manifest.json sidecar) to this path",
        )

    p = sub.add_parser("generate", help="write a synthetic dataset to CSV")
    p.add_argument("dataset", choices=sorted(DATASETS))
    p.add_argument("output", help="output CSV path")
    p.add_argument("--rows", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)
    add_trace(p)
    p.set_defaults(func=cmd_generate)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--tau-c", dest="tau_c", type=float, default=0.1)
        p.add_argument("--T", type=float, default=1.0)
        p.add_argument("--k", type=int, default=30)
        p.add_argument("--scope", choices=("lattice", "leaf", "top"), default="lattice")

    p = sub.add_parser("identify", help="print the Implicit Biased Set of a CSV")
    p.add_argument("csv")
    p.add_argument("--schema", required=True)
    add_common(p)
    p.add_argument("--method", choices=METHODS, default=METHOD_OPTIMIZED)
    add_trace(p)
    p.set_defaults(func=cmd_identify)

    p = sub.add_parser("remedy", help="write a remedied copy of a CSV")
    p.add_argument("csv")
    p.add_argument("output")
    p.add_argument("--schema", required=True)
    add_common(p)
    p.add_argument("--technique", choices=TECHNIQUES, default="preferential")
    p.add_argument("--method", choices=METHODS, default=METHOD_OPTIMIZED)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--audit-log",
        dest="audit_log",
        default=None,
        help="also write a JSON audit trail of the applied updates",
    )
    add_trace(p)
    p.set_defaults(func=cmd_remedy)

    p = sub.add_parser("audit", help="train a model and audit subgroup fairness")
    p.add_argument("train")
    p.add_argument("--test", default=None, help="test CSV (default: split train)")
    p.add_argument("--schema", required=True)
    p.add_argument("--model", choices=MODEL_NAMES, default="dt")
    p.add_argument("--gamma", choices=("fpr", "fnr", "positive_rate"), default="fpr")
    p.add_argument("--tau-d", dest="tau_d", type=float, default=0.1)
    p.add_argument("--k", type=int, default=30)
    p.add_argument("--test-fraction", dest="test_fraction", type=float, default=0.3)
    p.add_argument("--seed", type=int, default=0)
    add_trace(p)
    p.set_defaults(func=cmd_audit)

    p = sub.add_parser("explain", help="diagnose one subgroup against the IBS")
    p.add_argument("csv")
    p.add_argument("--schema", required=True)
    p.add_argument(
        "--subgroup", required=True,
        help="comma-separated attr=label pairs, e.g. 'race=Afr-Am,sex=Male'",
    )
    p.add_argument("--tau-c", dest="tau_c", type=float, default=0.1)
    p.add_argument("--T", type=float, default=1.0)
    p.add_argument("--k", type=int, default=30)
    add_trace(p)
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("plan", help="preview remedy footprints over a tau_c grid")
    p.add_argument("csv")
    p.add_argument("--schema", required=True)
    p.add_argument(
        "--tau-grid", dest="tau_grid", nargs="+", type=float,
        default=[0.1, 0.3, 0.5],
    )
    p.add_argument("--k", type=int, default=30)
    add_trace(p)
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser("describe", help="profile a CSV: columns, groups, regions")
    p.add_argument("csv")
    p.add_argument("--schema", required=True)
    p.add_argument("--regions", type=int, default=20)
    add_trace(p)
    p.set_defaults(func=cmd_describe)

    p = sub.add_parser("report", help="regenerate every artefact into markdown")
    p.add_argument("output", help="output markdown path")
    p.add_argument("--adult-rows", dest="adult_rows", type=int, default=12000)
    p.add_argument("--compas-rows", dest="compas_rows", type=int, default=6172)
    p.add_argument(
        "--lawschool-rows", dest="lawschool_rows", type=int, default=4590
    )
    p.add_argument("--models", nargs="+", default=["dt", "lg"], choices=MODEL_NAMES)
    p.add_argument("--seed", type=int, default=0)
    add_trace(p)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "analyze", help="static-analysis pass over Python sources (R001-R014)"
    )
    p.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    p.add_argument("--baseline", default=None, help="JSON baseline of tolerated findings")
    p.add_argument(
        "--update-baseline", dest="update_baseline", action="store_true",
        help="rewrite the baseline with the current findings",
    )
    p.add_argument(
        "--prune-baseline", dest="prune_baseline", action="store_true",
        help="drop stale / missing-file baseline entries, then gate as usual",
    )
    p.add_argument(
        "--cache", default=None,
        help="incremental analysis cache file (per-file sha256 -> facts)",
    )
    p.add_argument(
        "--changed-only", dest="changed_only", action="store_true",
        help="report only findings in git-changed files",
    )
    p.add_argument(
        "--stats", action="store_true",
        help="append per-rule counts, cache hits and wall time to the report",
    )
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--rules", default=None, help="comma-separated rule ids to run")
    p.add_argument(
        "--list-rules", dest="list_rules", action="store_true",
        help="print the available rules and exit",
    )
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("experiment", help="run a paper experiment by id")
    p.add_argument(
        "experiment",
        choices=(
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table3", "fig9",
            "robustness",
        ),
    )
    p.add_argument("--rows", type=int, default=None, help="dataset size override")
    p.add_argument("--models", nargs="+", default=["dt", "lg"], choices=MODEL_NAMES)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--max-retries", dest="max_retries", type=int, default=2,
        help="re-attempts per failed cell for typed repro errors (default 2)",
    )
    p.add_argument(
        "--cell-timeout", dest="cell_timeout", type=float, default=None,
        help="wall-clock deadline per cell in seconds (default: none)",
    )
    p.add_argument(
        "--checkpoint", default=None,
        help="JSON file persisting completed cells (written atomically)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="restore completed cells from --checkpoint instead of re-running",
    )
    p.add_argument(
        "--backend", choices=("inproc", "process"), default="inproc",
        help="where sweep cells run: in-process (default) or in a pool of "
        "crash-isolated worker processes",
    )
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for --backend process (default 1)",
    )
    add_trace(p)
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("checkpoint", help="inspect or prune sweep checkpoints")
    ckpt_sub = p.add_subparsers(dest="checkpoint_command", required=True)
    p = ckpt_sub.add_parser(
        "inspect", help="print run id, cell counts, and age of a checkpoint"
    )
    p.add_argument("path", help="checkpoint JSON written by experiment --checkpoint")
    p.set_defaults(func=cmd_checkpoint_inspect)
    p = ckpt_sub.add_parser(
        "prune", help="delete all but the newest checkpoints"
    )
    p.add_argument(
        "paths", nargs="+",
        help="checkpoint files and/or directories holding *.json checkpoints",
    )
    p.add_argument(
        "--keep-latest", dest="keep_latest", type=int, default=1,
        help="how many of the newest checkpoints to keep (default 1)",
    )
    p.set_defaults(func=cmd_checkpoint_prune)

    p = sub.add_parser(
        "stream",
        help="continuously audit a changing dataset via a durable delta log",
    )
    stream_sub = p.add_subparsers(dest="stream_command", required=True)
    p = stream_sub.add_parser(
        "init", help="initialise a stream directory (journal genesis)"
    )
    p.add_argument("directory", help="stream directory to create")
    p.add_argument("--schema", required=True, help="schema JSON with protected attrs")
    p.add_argument("--tau-c", dest="tau_c", type=float, default=0.1)
    p.add_argument("--T", type=float, default=1.0)
    p.add_argument("--k", type=int, default=30)
    p.add_argument(
        "--hysteresis", type=float, default=0.0,
        help="alarm clear margin below tau_c (default 0: clear at tau_c)",
    )
    p.add_argument("--queue-limit", dest="queue_limit", type=int, default=64)
    p.add_argument("--retry-budget", dest="retry_budget", type=int, default=2)
    p.add_argument(
        "--segment-bytes", dest="segment_bytes", type=int,
        default=4 * 1024 * 1024,
        help="rotate journal segments past this size (default 4 MiB)",
    )
    p.add_argument(
        "--compact-bytes", dest="compact_bytes", type=int, default=None,
        help="auto-compact when the live generation exceeds this size",
    )
    p.set_defaults(func=cmd_stream_init)
    p = stream_sub.add_parser(
        "ingest", help="journal and apply micro-batches from a JSONL file"
    )
    p.add_argument("directory", help="initialised stream directory")
    p.add_argument(
        "batches",
        help='JSONL file of {"id": ..., "deltas": [["i",[...],label]|'
        '["d",row]|["r",row,label], ...]} lines',
    )
    p.add_argument(
        "--compact", action="store_true",
        help="fold the journal into a fresh generation after ingesting",
    )
    p.set_defaults(func=cmd_stream_ingest)
    p = stream_sub.add_parser(
        "status", help="recover the journal and print watermark/row/alarm counts"
    )
    p.add_argument("directory", help="initialised stream directory")
    p.add_argument(
        "--json", action="store_true",
        help="print the status as one canonical JSON document "
        "(byte-identical to the gateway health endpoint's 'stream' field)",
    )
    p.set_defaults(func=cmd_stream_status)
    p = stream_sub.add_parser(
        "replay", help="rebuild the audited state from the journal and print it"
    )
    p.add_argument("directory", help="initialised stream directory")
    p.add_argument(
        "--to-seq", dest="to_seq", type=int, default=None,
        help="replay only records with seq <= this offset",
    )
    p.set_defaults(func=cmd_stream_replay)
    p = stream_sub.add_parser(
        "alarms", help="print the active drift alarms (and, optionally, events)"
    )
    p.add_argument("directory", help="initialised stream directory")
    p.add_argument(
        "--events", action="store_true",
        help="also print the raise/clear event history since compaction",
    )
    p.set_defaults(func=cmd_stream_alarms)
    p = stream_sub.add_parser(
        "compact", help="fold the journal into a fresh generation now"
    )
    p.add_argument("directory", help="initialised stream directory")
    p.set_defaults(func=cmd_stream_compact)

    p = sub.add_parser(
        "data", help="manage the sharded dataset registry (see docs/datasets.md)"
    )
    data_sub = p.add_subparsers(dest="data_command", required=True)
    p = data_sub.add_parser(
        "materialize",
        help="write a named sharded store from a generator or a CSV",
    )
    p.add_argument("name", help="registry entry name")
    p.add_argument(
        "--root", default=None,
        help="registry root (default: $REPRO_DATA_ROOT or "
        "~/.cache/repro/datasets)",
    )
    p.add_argument(
        "--generator", choices=sorted(DATASETS), default="adult",
        help="synthetic generator, materialized shard by shard (default adult)",
    )
    p.add_argument(
        "--rows", type=int, default=100_000,
        help="total rows for --generator (default 100000)",
    )
    p.add_argument(
        "--shard-rows", type=int, default=100_000,
        help="rows per shard (default 100000)",
    )
    p.add_argument("--seed", type=int, default=5, help="generator seed")
    p.add_argument(
        "--csv", default=None,
        help="materialize this CSV instead of a generator (needs --schema)",
    )
    p.add_argument("--schema", default=None, help="schema JSON for --csv")
    p.add_argument(
        "--overwrite", action="store_true",
        help="replace an existing entry of the same name",
    )
    p.set_defaults(func=cmd_data_materialize)
    p = data_sub.add_parser("list", help="list registry entries")
    p.add_argument("--root", default=None, help="registry root")
    p.add_argument(
        "--json", action="store_true",
        help="print the listing as one canonical JSON document "
        "(byte-identical to the gateway's GET /datasets)",
    )
    p.set_defaults(func=cmd_data_list)
    p = data_sub.add_parser(
        "verify",
        help="re-hash every shard file of the named (or all) entries",
    )
    p.add_argument("names", nargs="*", help="entries to verify (default: all)")
    p.add_argument("--root", default=None, help="registry root")
    p.set_defaults(func=cmd_data_verify)
    p = data_sub.add_parser(
        "prune",
        help="delete entries not leased by a live process; sweep .tmp-* dirs",
    )
    p.add_argument("names", nargs="*", help="entries to prune (default: all)")
    p.add_argument("--root", default=None, help="registry root")
    p.add_argument(
        "--force", action="store_true",
        help="delete even entries leased by live processes",
    )
    p.add_argument(
        "--dry-run", action="store_true",
        help="report what would be deleted without touching disk",
    )
    p.set_defaults(func=cmd_data_prune)

    p = sub.add_parser(
        "serve",
        help="run the fault-tolerant audit gateway over a stream directory "
        "(see docs/serving.md)",
    )
    p.add_argument("directory", help="initialised stream directory to front")
    p.add_argument(
        "--registry", default=None,
        help="also serve the dataset registry at this root (GET /datasets)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0,
        help="port to bind (default 0: ephemeral; the bound port is printed "
        "in the ready line)",
    )
    p.add_argument(
        "--admission-limit", dest="admission_limit", type=int, default=8,
        help="concurrent ingest requests admitted before shedding with 429",
    )
    p.add_argument(
        "--deadline", type=float, default=10.0,
        help="default + ceiling for the per-request ingest deadline (seconds)",
    )
    p.add_argument(
        "--remedy", action="store_true",
        help="remedy-on-drift: journal an automated massaging remedy batch "
        "when new alarms raise (circuit-broken, budget-limited)",
    )
    p.add_argument(
        "--remedy-budget", dest="remedy_budget", type=int, default=8,
        help="max automated remedy batches this server will journal",
    )
    p.add_argument(
        "--remedy-seed", dest="remedy_seed", type=int, default=0,
        help="base seed for the remedy sampler (combined with the watermark)",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "client", help="talk to a running audit gateway (retrying client)"
    )
    client_sub = p.add_subparsers(dest="client_command", required=True)

    def _client_common(cp: argparse.ArgumentParser) -> None:
        cp.add_argument("--host", default="127.0.0.1")
        cp.add_argument("--port", type=int, required=True)
        cp.add_argument(
            "--retries", type=int, default=5,
            help="attempts per request (transport faults and 429/503/504)",
        )
        cp.add_argument(
            "--backoff", type=float, default=0.05,
            help="base backoff delay in seconds (exponential, jittered)",
        )

    p = client_sub.add_parser("health", help="print GET /health (canonical JSON)")
    _client_common(p)
    p.set_defaults(func=cmd_client_health)
    p = client_sub.add_parser(
        "ingest",
        help="submit a batches JSONL file through the gateway, idempotently",
    )
    p.add_argument("batches", help="JSONL file (same format as stream ingest)")
    _client_common(p)
    p.add_argument(
        "--deadline", type=float, default=None,
        help="per-request deadline to ask of the server (seconds)",
    )
    p.set_defaults(func=cmd_client_ingest)
    p = client_sub.add_parser(
        "fetch",
        help="download a dataset store, verify every sha256, install atomically",
    )
    p.add_argument("name", help="registry entry name on the server")
    p.add_argument("dest", help="local root directory to install under")
    _client_common(p)
    p.set_defaults(func=cmd_client_fetch)

    p = sub.add_parser("trace", help="inspect JSONL traces written by --trace")
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    p = trace_sub.add_parser(
        "summarize", help="render the span tree and metric totals of a trace"
    )
    p.add_argument("trace_file", help="JSONL trace written by --trace")
    p.add_argument(
        "--top", type=int, default=10,
        help="rows in the top-spans-by-self-time table (default 10)",
    )
    p.set_defaults(func=cmd_trace_summarize)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # Every command runs under an ambient tracer: instrumentation in the
    # library is a no-op-cheap contextvar lookup, and when --trace is set the
    # collected spans/metrics are flushed as JSONL with a manifest sidecar.
    # The trace is written even on failure so a crashed run can be inspected.
    tracer = Tracer()
    try:
        with tracing(tracer):
            code = args.func(args)
        _finish_trace(args, tracer)
        return code
    except KeyboardInterrupt:
        # Completed cells were flushed to the checkpoint as they finished,
        # so an interrupted sweep resumes with --resume and loses nothing.
        print("interrupted", file=sys.stderr)
        with contextlib.suppress(Exception):
            _finish_trace(args, tracer)
        return EXIT_INTERRUPT
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        with contextlib.suppress(Exception):
            _finish_trace(args, tracer)
        return EXIT_REPRO_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
