"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish schema problems from algorithmic misuse.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A dataset schema is malformed or a column reference is invalid."""


class DataError(ReproError):
    """Dataset contents violate an invariant (shape, dtype, label range)."""


class PatternError(ReproError):
    """A region/subgroup pattern is malformed or references unknown values."""


class FitError(ReproError):
    """A model received invalid training input or was used before fitting."""


class NotFittedError(FitError):
    """``predict`` was called on an estimator that has not been fitted."""


class RemedyError(ReproError):
    """The dataset remedy could not be applied to a biased region."""


class ExperimentError(ReproError):
    """An experiment harness was configured inconsistently."""


class AnalysisError(ReproError):
    """The static-analysis engine was misconfigured or hit unreadable input."""


class ResilienceError(ReproError):
    """The fault-tolerant executor was misconfigured or misused."""


class CellTimeout(ResilienceError):
    """An experiment cell exceeded its wall-clock deadline."""


class CheckpointError(ResilienceError):
    """A sweep checkpoint is unreadable, corrupt, or from another sweep."""


class WorkerCrash(ResilienceError):
    """A pool worker died mid-cell (nonzero exit, signal, or lost pipe).

    Raised (and recorded) by the process backend when a child process
    disappears while running a cell.  It is a :class:`ResilienceError`, so
    the retry policy treats a crashed attempt as retryable — the cell is
    re-dispatched to a freshly spawned worker.
    """


class ObsError(ReproError):
    """A trace/metric artefact is malformed or the tracer was misused."""


class StoreError(ReproError):
    """A sharded dataset store is malformed, missing, or misused."""


class StoreCorruptionError(StoreError):
    """A shard file or manifest fails integrity verification (hash/size)."""


class StreamError(ReproError):
    """The streaming audit engine was misconfigured or hit invalid input."""


class JournalError(StreamError):
    """The delta journal is corrupt, torn, or inconsistent with its chain."""


class DeltaError(StreamError):
    """A stream delta is malformed or violates the schema/row universe."""


class BackpressureError(StreamError):
    """The bounded ingestion queue is full; the producer must back off."""


class ServeError(ReproError):
    """The serving gateway was misconfigured or a request is invalid."""


class AdmissionError(ServeError):
    """The gateway shed a request: too many in flight (load shedding)."""


class RequestDeadlineError(ServeError):
    """A request could not be served within its per-request deadline."""


class CircuitOpenError(ServeError):
    """The remedy circuit breaker is open; automated remedies are paused."""


class DrainingError(ServeError):
    """The gateway is draining (shutdown requested); retry elsewhere/later."""


class TransportError(ServeError):
    """An HTTP round trip failed at the transport layer (connect, read)."""


class InternalError(ReproError):
    """An internal invariant was violated; indicates a bug in the library."""
