"""Engine comparison — naive vs. optimized vs. vectorized identification.

Two sweeps, each recording raw seconds plus speedup ratios in benchmark
``extra_info``:

* **width** — all three engines on the Adult-like data at 4, 6, and 8
  protected attributes (the Fig. 9a axis), keyed by ``n_attrs``;
* **depth** — vectorized vs optimized on binary synthetic attributes at
  lattice depth 10–12 (``2^depth`` leaf cells, ``3^depth`` lattice
  regions), keyed by ``depth``, with the report lists asserted identical
  at every depth.

``make bench-ibs`` runs this file with ``--benchmark-json=BENCH_ibs.json``
so later PRs can ratchet against the recorded trajectory; the acceptance
floors asserted here are vectorized ≥ 5× optimized at 8 attributes
(measured ~15×) and > 1× at every depth (measured ~5×; see
``docs/performance.md``).
"""

import os
import time

import pytest

from conftest import emit

from repro.core import (
    METHOD_NAIVE,
    METHOD_OPTIMIZED,
    METHOD_VECTORIZED,
    identify_ibs,
)
from repro.data.synth.adult import SCALABILITY_PROTECTED, load_adult
from repro.data.synth.generic import generate, make_scalability_config
from repro.obs import Tracer, tracing

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
N_ROWS = 45_222 if FULL else 12_000
TAU_C = 0.5
K = 30

DEPTH_GRID = (10, 11, 12) if FULL else (10, 12)
DEPTH_ROWS = 4000


@pytest.fixture(scope="module")
def adult8():
    return load_adult(N_ROWS, seed=5).with_protected(SCALABILITY_PROTECTED)


def _best_seconds(fn, repeats=3):
    """Best-of-N wall-clock seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _paired_ratio_seconds(fn_a, fn_b, repeats=9, inner=4):
    """Per-call seconds for two workloads plus their median b/a ratio.

    Timing the two in separate blocks lets a mid-run slowdown of the
    (shared, 1-CPU) box land entirely on one side and fabricate a large
    ratio between them, so each round runs the pair back-to-back
    (alternating which goes first) and takes the ratio *within* the
    round, where drift divides out.  Each timed sample covers ``inner``
    consecutive calls so a single scheduler burst (fixed tens of ms) is
    amortized instead of inflating one ~50 ms run by double digits, and
    the median across rounds shrugs off whichever bursts remain.
    """
    times_a: list[float] = []
    times_b: list[float] = []
    for i in range(repeats):
        order = ((fn_a, times_a), (fn_b, times_b))
        if i % 2:
            order = tuple(reversed(order))
        for fn, out in order:
            start = time.perf_counter()
            for _ in range(inner):
                fn()
            out.append((time.perf_counter() - start) / inner)
    ratios = sorted(
        b / max(a, 1e-9) for a, b in zip(times_a, times_b)
    )
    median = ratios[len(ratios) // 2]
    return min(times_a), min(times_b), median


@pytest.mark.parametrize("n_attrs", (4, 6, 8))
def test_engine_comparison(benchmark, adult8, n_attrs):
    attrs = SCALABILITY_PROTECTED[:n_attrs]

    def run(method):
        return identify_ibs(adult8, TAU_C, k=K, method=method, attrs=attrs)

    # The benchmarked subject is the vectorized engine; the others are
    # timed best-of-N below so one JSON record carries the whole comparison.
    reports = benchmark(lambda: run(METHOD_VECTORIZED))
    assert reports == run(METHOD_OPTIMIZED), "engines disagree; timings void"

    # The optimized/vectorized ratio is gated (25% tolerance vs baseline,
    # absolute >= 5x floor at 8 attributes), so it gets the same paired
    # treatment as the tracing ratio below; single runs are long enough
    # that per-sample bursts stay proportionally small.
    t_vec_o, t_opt, speedup_vs_opt = _paired_ratio_seconds(
        lambda: run(METHOD_VECTORIZED), lambda: run(METHOD_OPTIMIZED),
        repeats=7, inner=1,
    )
    # The naive engine recounts every neighbour from raw data (§III-A);
    # one repetition is plenty to place it on the chart.
    t_naive = _best_seconds(lambda: run(METHOD_NAIVE), repeats=1)

    # Same workload with a live tracer collecting spans and counters — the
    # observability acceptance floor is <10% overhead on the vectorized
    # engine at 8 attributes.  The plain/traced pair is interleaved: at
    # ~50 ms per run the gate would otherwise measure box-speed drift,
    # not tracing.
    def run_traced():
        with tracing(Tracer()):
            run(METHOD_VECTORIZED)

    t_vec, t_traced, traced_over_vec = _paired_ratio_seconds(
        lambda: run(METHOD_VECTORIZED), run_traced
    )
    trace_overhead = traced_over_vec - 1.0
    t_vec = min(t_vec, t_vec_o)

    speedup_vs_naive = t_naive / max(t_vec, 1e-9)
    benchmark.extra_info.update(
        {
            "n_attrs": n_attrs,
            "n_rows": N_ROWS,
            "regions_found": len(reports),
            "naive_seconds": round(t_naive, 4),
            "optimized_seconds": round(t_opt, 4),
            "vectorized_seconds": round(t_vec, 4),
            "traced_seconds": round(t_traced, 4),
            "trace_overhead": round(trace_overhead, 4),
            "speedup_vs_optimized": round(speedup_vs_opt, 2),
            "speedup_vs_naive": round(speedup_vs_naive, 2),
        }
    )
    emit(
        f"{n_attrs} attrs / {N_ROWS} rows: naive {t_naive:.3f}s, "
        f"optimized {t_opt:.3f}s, vectorized {t_vec:.3f}s "
        f"({speedup_vs_opt:.1f}x vs optimized, "
        f"{speedup_vs_naive:.1f}x vs naive, "
        f"tracing overhead {100 * trace_overhead:+.1f}%)"
    )

    assert speedup_vs_opt > 1.0, "vectorized must beat the scalar engine"
    if n_attrs == 8:
        assert speedup_vs_opt >= 5.0, (
            "acceptance floor: vectorized >= 5x optimized at 8 attributes"
        )
        # 10%, not lower: the obs call sites themselves cost ~1% here (10
        # spans + ~500 counter bumps per run), but on a shared 1-CPU box
        # the paired-median estimator cannot resolve below a few percent.
        # The regression this guards against — span/counter emission
        # sliding into the per-region hot path — costs multiples, not
        # percents, so the wider floor still catches it.
        assert trace_overhead < 0.10, (
            "acceptance floor: tracing adds <10% to the vectorized engine"
        )


@pytest.mark.parametrize("depth", DEPTH_GRID)
def test_engine_depth(benchmark, depth):
    """Deep-lattice sweep: binary attributes, depth-``depth`` hierarchy.

    The naive engine is hopeless here (``3^depth`` regions each re-counted
    from data), so only the two count-reusing engines are compared — with
    the full report lists asserted identical, pinning the bitset/pruning/
    scaled-cache fast paths to byte-identical results at every depth.
    """
    data = generate(
        make_scalability_config(
            n_rows=DEPTH_ROWS, n_protected=depth, cardinality=2, seed=7
        )
    )

    def run(method):
        return identify_ibs(data, TAU_C, k=K, method=method)

    # One measured round: at depth 12 a single optimized pass is ~12s, so
    # the default calibrating benchmark() loop would blow the CI budget.
    reports = benchmark.pedantic(
        lambda: run(METHOD_VECTORIZED), rounds=1, iterations=1
    )
    assert reports == run(METHOD_OPTIMIZED), (
        "engines disagree at depth; timings void"
    )

    t_vec = _best_seconds(lambda: run(METHOD_VECTORIZED), repeats=2)
    t_opt = _best_seconds(lambda: run(METHOD_OPTIMIZED), repeats=1)
    speedup_vs_opt = t_opt / max(t_vec, 1e-9)
    benchmark.extra_info.update(
        {
            "depth": depth,
            "n_rows": DEPTH_ROWS,
            "regions_found": len(reports),
            "optimized_seconds": round(t_opt, 4),
            "vectorized_seconds": round(t_vec, 4),
            "speedup_vs_optimized": round(speedup_vs_opt, 2),
        }
    )
    emit(
        f"depth {depth} / {DEPTH_ROWS} rows: optimized {t_opt:.3f}s, "
        f"vectorized {t_vec:.3f}s ({speedup_vs_opt:.1f}x vs optimized, "
        f"{len(reports)} regions)"
    )
    assert speedup_vs_opt > 1.0, "vectorized must beat the scalar engine"
