"""Engine comparison — naive vs. optimized vs. vectorized identification.

Times all three neighbourhood engines on the Adult-like data at 4, 6, and
8 protected attributes (the Fig. 9a axis) and records the raw seconds plus
speedup ratios in benchmark ``extra_info``.  ``make bench-ibs`` runs this
file with ``--benchmark-json=BENCH_ibs.json`` so later PRs can ratchet
against the recorded trajectory; the acceptance floor asserted here is
vectorized ≥ 5× optimized at 8 attributes (measured ~15×; see
``docs/performance.md``).
"""

import os
import time

import pytest

from conftest import emit

from repro.core import (
    METHOD_NAIVE,
    METHOD_OPTIMIZED,
    METHOD_VECTORIZED,
    identify_ibs,
)
from repro.data.synth.adult import SCALABILITY_PROTECTED, load_adult
from repro.obs import Tracer, tracing

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
N_ROWS = 45_222 if FULL else 12_000
TAU_C = 0.5
K = 30


@pytest.fixture(scope="module")
def adult8():
    return load_adult(N_ROWS, seed=5).with_protected(SCALABILITY_PROTECTED)


def _best_seconds(fn, repeats=3):
    """Best-of-N wall-clock seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("n_attrs", (4, 6, 8))
def test_engine_comparison(benchmark, adult8, n_attrs):
    attrs = SCALABILITY_PROTECTED[:n_attrs]

    def run(method):
        return identify_ibs(adult8, TAU_C, k=K, method=method, attrs=attrs)

    # The benchmarked subject is the vectorized engine; the others are
    # timed best-of-N below so one JSON record carries the whole comparison.
    reports = benchmark(lambda: run(METHOD_VECTORIZED))
    assert reports == run(METHOD_OPTIMIZED), "engines disagree; timings void"

    t_vec = _best_seconds(lambda: run(METHOD_VECTORIZED))
    t_opt = _best_seconds(lambda: run(METHOD_OPTIMIZED))
    # The naive engine recounts every neighbour from raw data (§III-A);
    # one repetition is plenty to place it on the chart.
    t_naive = _best_seconds(lambda: run(METHOD_NAIVE), repeats=1)

    # Same workload with a live tracer collecting spans and counters — the
    # observability acceptance floor is <5% overhead on the vectorized
    # engine at 8 attributes.
    def run_traced():
        with tracing(Tracer()):
            run(METHOD_VECTORIZED)

    t_traced = _best_seconds(run_traced)
    trace_overhead = t_traced / max(t_vec, 1e-9) - 1.0

    speedup_vs_opt = t_opt / max(t_vec, 1e-9)
    speedup_vs_naive = t_naive / max(t_vec, 1e-9)
    benchmark.extra_info.update(
        {
            "n_attrs": n_attrs,
            "n_rows": N_ROWS,
            "regions_found": len(reports),
            "naive_seconds": round(t_naive, 4),
            "optimized_seconds": round(t_opt, 4),
            "vectorized_seconds": round(t_vec, 4),
            "traced_seconds": round(t_traced, 4),
            "trace_overhead": round(trace_overhead, 4),
            "speedup_vs_optimized": round(speedup_vs_opt, 2),
            "speedup_vs_naive": round(speedup_vs_naive, 2),
        }
    )
    emit(
        f"{n_attrs} attrs / {N_ROWS} rows: naive {t_naive:.3f}s, "
        f"optimized {t_opt:.3f}s, vectorized {t_vec:.3f}s "
        f"({speedup_vs_opt:.1f}x vs optimized, "
        f"{speedup_vs_naive:.1f}x vs naive, "
        f"tracing overhead {100 * trace_overhead:+.1f}%)"
    )

    assert speedup_vs_opt > 1.0, "vectorized must beat the scalar engine"
    if n_attrs == 8:
        assert speedup_vs_opt >= 5.0, (
            "acceptance floor: vectorized >= 5x optimized at 8 attributes"
        )
        assert trace_overhead < 0.05, (
            "acceptance floor: tracing adds <5% to the vectorized engine"
        )
