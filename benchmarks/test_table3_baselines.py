"""Table III — comparison with subgroup-unfairness mitigation baselines.

Adult, X = {race, gender}, logistic regression for every pre-processing
method, fairness-violation metric.  Shapes to hold (paper):

* every baseline except Coverage improves the violation;
* Reweighting is the strongest pre-processing entry;
* FairBalance / Fair-SMOTE pay the largest accuracy cost (they force a
  balanced 1:1 class distribution the test set does not have);
* Fair-SMOTE and GerryFair are the slow entries.
"""

from conftest import emit

from repro.experiments import run_baseline_comparison


def test_table3_baseline_comparison(benchmark, adult):
    table = benchmark.pedantic(
        lambda: run_baseline_comparison(adult, gerryfair_iters=15, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(table.table())
    rows = {r.approach: r for r in table.rows}
    for name, row in rows.items():
        benchmark.extra_info[f"{name}_violation"] = round(row.fairness_violation, 4)
        benchmark.extra_info[f"{name}_accuracy"] = round(row.accuracy, 4)

    original = rows["original"].fairness_violation

    # Mitigating entries must not be worse than the original.
    for name in ("remedy", "reweighting", "gerryfair"):
        assert rows[name].fairness_violation <= original + 1e-9, name

    # Coverage addresses representation *count*, not class skew: the paper
    # finds it does not improve the violation.
    assert rows["coverage"].fairness_violation >= original - 0.003

    # Reweighting achieves (near) optimal parity in the paper.
    assert rows["reweighting"].fairness_violation <= rows["remedy"].fairness_violation + 0.01

    # Balanced-distribution methods pay an accuracy price.
    assert rows["fairbalance"].accuracy <= rows["original"].accuracy
    assert rows["fair-smote"].accuracy <= rows["original"].accuracy

    # Runtime shape: Fair-SMOTE dominates the pre-processing cost, GerryFair
    # dominates the lightweight reweighting methods.
    light = max(rows[n].seconds for n in ("coverage", "fairbalance", "reweighting"))
    assert rows["fair-smote"].seconds > light
    assert rows["gerryfair"].seconds > light
