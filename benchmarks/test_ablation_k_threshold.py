"""Ablation — the size threshold k (Problem 1's "significant regions").

The paper fixes k = 30 by the central-limit rule of thumb and ignores
smaller regions because "they may have minimal impact on classification
results and model fairness".  This ablation sweeps k and measures |IBS|,
identification runtime, and the downstream fairness index, checking that
(a) smaller k admits more regions at higher cost and (b) the fairness gain
saturates — tiny regions indeed contribute little.
"""

import time

from conftest import emit

from repro.audit import fairness_index
from repro.core import identify_ibs, remedy_dataset
from repro.data.split import train_test_split
from repro.experiments import format_table
from repro.ml import make_model

K_GRID = (10, 30, 100, 300)
TAU_C = 0.1


def test_ablation_k_threshold(benchmark, compas):
    train, test = train_test_split(compas, 0.3, seed=0)

    def run():
        rows = []
        for k in K_GRID:
            start = time.perf_counter()
            ibs = identify_ibs(train, TAU_C, k=k)
            identify_seconds = time.perf_counter() - start
            remedied = remedy_dataset(
                train, TAU_C, k=k, technique="undersampling", seed=0
            ).dataset
            pred = make_model("dt", seed=0).fit(remedied).predict(test)
            rows.append(
                (
                    k,
                    len(ibs),
                    identify_seconds,
                    fairness_index(test, pred, "fpr"),
                    float((pred == test.y).mean()),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ("k", "|IBS|", "identify (s)", "FI(FPR)", "accuracy"),
            rows,
            title="Ablation — size threshold k",
        )
    )
    sizes = {k: n for k, n, *__ in rows}
    fis = {k: fi for k, __, __s, fi, __a in rows}
    benchmark.extra_info["ibs_by_k"] = {str(k): v for k, v in sizes.items()}

    # Monotone: a larger size floor can only remove candidate regions.
    ks = list(K_GRID)
    for small, large in zip(ks[:-1], ks[1:]):
        assert sizes[large] <= sizes[small]
    # All swept settings must improve on the unmitigated model.
    base_pred = make_model("dt", seed=0).fit(train).predict(test)
    base_fi = fairness_index(test, base_pred, "fpr")
    assert fis[30] < base_fi  # the paper's default works
