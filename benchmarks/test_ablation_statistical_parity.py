"""Ablation — statistical parity (§VI's hiring scenario).

Builds the paper's green/purple checkerboard hiring data, verifies that
per-attribute acceptance rates look fair while the intersectional ones do
not, and that IBS identification finds all four skewed cells — "our method
could detect representation bias in each subgroup".
"""

from conftest import emit

from repro.audit import find_divergent_subgroups
from repro.core import Pattern, identify_ibs
from repro.data.split import train_test_split
from repro.data.synth import make_checkerboard
from repro.experiments import format_table
from repro.ml import make_model
from repro.ml.metrics import positive_rate


def test_ablation_statistical_parity(benchmark):
    dataset = make_checkerboard(8000, seed=17)
    train, test = train_test_split(dataset, 0.3, seed=0)

    def run():
        model = make_model("dt", seed=0).fit(train)
        pred = model.predict(test)
        ibs = identify_ibs(train, tau_c=0.3, T=1.0, k=30)
        divergent = find_divergent_subgroups(test, pred, gamma="positive_rate")
        return pred, ibs, divergent

    pred, ibs, divergent = benchmark.pedantic(run, rounds=1, iterations=1)
    schema = dataset.schema

    rows = []
    for attr, value in (
        ("race", "green"), ("race", "purple"),
        ("gender", "male"), ("gender", "female"),
    ):
        mask = Pattern.from_labels(schema, {attr: value}).mask(test)
        rows.append((f"{attr}={value}", positive_rate(test.y, pred, mask)))
    overall = positive_rate(test.y, pred)
    cells = {}
    for race in ("green", "purple"):
        for gender in ("male", "female"):
            p = Pattern.from_labels(schema, {"race": race, "gender": gender})
            cells[(race, gender)] = positive_rate(test.y, pred, p.mask(test))
            rows.append((f"({race}, {gender})", cells[(race, gender)]))
    emit(
        format_table(
            ("group", "acceptance rate"),
            rows,
            title=f"Ablation — statistical parity (overall rate {overall:.3f})",
        )
    )

    # Per-attribute rates all sit near the overall rate ...
    for attr, value in (
        ("race", "green"), ("race", "purple"),
        ("gender", "male"), ("gender", "female"),
    ):
        mask = Pattern.from_labels(schema, {attr: value}).mask(test)
        assert abs(positive_rate(test.y, pred, mask) - overall) < 0.05

    # ... while the intersections split into haves and have-nots.
    assert cells[("green", "female")] > cells[("green", "male")] + 0.1
    assert cells[("purple", "male")] > cells[("purple", "female")] + 0.1

    # The IBS contains all four checkerboard cells.
    ibs_patterns = {r.pattern for r in ibs}
    for race in ("green", "purple"):
        for gender in ("male", "female"):
            p = Pattern.from_labels(schema, {"race": race, "gender": gender})
            assert p in ibs_patterns, f"missing {p}"

    # The parity auditor's top subgroup is one of the skewed intersections.
    top = divergent[0].pattern
    assert top.level == 2
