"""Ablation — does the remedy damage probability calibration?

The paper only measures accuracy costs.  Because the remedy intentionally
shifts the training distribution inside biased regions, a reasonable worry
is that downstream probability estimates become globally miscalibrated.
This ablation measures the Brier score and expected calibration error of a
logistic model before and after each remedy technique.
"""

from conftest import emit

from repro.core import remedy_dataset
from repro.data.split import train_test_split
from repro.experiments import format_table
from repro.ml import brier_score, expected_calibration_error, make_model

TECHNIQUES = ("undersampling", "oversampling", "preferential", "massaging")


def test_ablation_calibration(benchmark, compas):
    train, test = train_test_split(compas, 0.3, seed=0)

    def measure(train_set, label):
        model = make_model("lg", seed=0).fit(train_set)
        probs = model.predict_proba(test)
        return (
            label,
            brier_score(test.y, probs),
            expected_calibration_error(test.y, probs),
            float((model.predict(test) == test.y).mean()),
        )

    def run():
        rows = [measure(train, "original")]
        for technique in TECHNIQUES:
            remedied = remedy_dataset(
                train, 0.1, technique=technique, seed=0
            ).dataset
            rows.append(measure(remedied, technique))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ("training data", "Brier", "ECE", "accuracy"),
            rows,
            title="Ablation — calibration before/after remedy (LG, ProPublica)",
        )
    )
    by_label = {label: (br, ece) for label, br, ece, __ in rows}
    benchmark.extra_info["brier"] = {
        label: round(br, 4) for label, (br, __) in by_label.items()
    }

    base_brier, base_ece = by_label["original"]
    for technique in TECHNIQUES:
        br, ece = by_label[technique]
        # The remedy may trade some calibration for fairness, but must not
        # destroy it: Brier stays below the 0.25 coin-flip level and within
        # a moderate factor of the unmitigated model.
        assert br < 0.25, technique
        assert br < base_brier * 1.5, technique
        assert ece < max(3 * base_ece, 0.15), technique
