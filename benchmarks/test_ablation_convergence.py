"""Ablation — iterated remedy vs. the paper's single pass (§VI limitation).

The paper concedes Algorithm 2 "does not guarantee achieving an optimal
dataset ... as adjustments in one region may impact others" but reports
"minimal impact on effectiveness".  This ablation quantifies both halves:
how many biased regions a single pass leaves behind, and how quickly the
iterated remedy (``remedy_until_converged``) drives the residual to zero.
"""

from conftest import emit

from repro.core import identify_ibs, remedy_dataset, remedy_until_converged
from repro.data.split import train_test_split
from repro.experiments import format_table

TAU_C = 0.1


def test_ablation_single_vs_multi_pass(benchmark, compas):
    train, __ = train_test_split(compas, 0.3, seed=0)

    def run():
        single = remedy_dataset(
            train, TAU_C, technique="undersampling", seed=0
        )
        multi = remedy_until_converged(
            train, TAU_C, technique="undersampling", seed=0, max_passes=5
        )
        return single, multi

    single, multi = benchmark.pedantic(run, rounds=1, iterations=1)

    before = len(identify_ibs(train, TAU_C))
    after_single = len(identify_ibs(single.dataset, TAU_C))

    rows = [("none (original)", before, train.n_rows)]
    rows.append(("1 pass (Algorithm 2)", after_single, single.dataset.n_rows))
    for i, size in enumerate(multi.ibs_sizes[1:], start=1):
        rows.append((f"{i} pass(es), iterated", size, "-"))
    emit(
        format_table(
            ("remedy", "|IBS| remaining", "rows"),
            rows,
            title="Ablation — residual biased regions per remedy pass",
        )
    )
    benchmark.extra_info["ibs_before"] = before
    benchmark.extra_info["ibs_after_single"] = after_single
    benchmark.extra_info["ibs_sizes_multi"] = list(multi.ibs_sizes)

    # The paper's 'minimal impact' claim: one pass removes most of the IBS.
    assert after_single < before * 0.5
    # The iterated remedy is at least as thorough as the single pass.
    assert multi.ibs_sizes[-1] <= after_single
    # And it makes monotone progress until its stopping rule fires.
    for a, b in zip(multi.ibs_sizes[:-2], multi.ibs_sizes[1:-1]):
        assert b < a
