"""Ablation — how accurate are the read-only remedy plans?

`plan_remedies` previews, per (tau_c, T) setting, the flagged-region count
and an estimate of the rows a remedy would touch, without modifying
anything.  This ablation compares the estimates against actual remedy runs
across the tau_c grid of Fig. 7 and asserts they rank the settings in the
same order — the property a planning tool needs.
"""

from conftest import emit

from repro.core import plan_remedies, remedy_dataset
from repro.data.split import train_test_split
from repro.experiments import format_table

TAU_GRID = (0.1, 0.3, 0.5)


def test_ablation_plan_accuracy(benchmark, compas):
    train, __ = train_test_split(compas, 0.3, seed=0)

    def run():
        plans = plan_remedies(train, tau_grid=TAU_GRID, T_values=(1.0,), k=30)
        rows = []
        for plan in plans:
            actual = remedy_dataset(
                train, plan.tau_c, T=1.0, k=30, technique="preferential", seed=0
            )
            rows.append(
                (
                    plan.tau_c,
                    plan.n_regions,
                    plan.estimated_rows_touched,
                    actual.n_regions_remedied,
                    actual.rows_touched,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ("tau_c", "plan regions", "plan rows", "actual regions", "actual rows"),
            rows,
            title="Ablation — plan estimates vs actual remedy footprints",
        )
    )

    plan_rows = [r[2] for r in rows]
    actual_rows = [r[4] for r in rows]
    # The plan must rank the settings the same way the real remedy does.
    plan_order = sorted(range(len(rows)), key=lambda i: plan_rows[i])
    actual_order = sorted(range(len(rows)), key=lambda i: actual_rows[i])
    assert plan_order == actual_order
    # Each estimate is a conservative upper bound on the actual footprint:
    # Algorithm 2's per-node recomputation means fixing deep regions also
    # fixes their ancestors, so the static sum over-counts (typically a
    # single-digit factor), but must never *under*-estimate badly.
    for plan_n, actual_n in zip(plan_rows, actual_rows):
        if actual_n == 0:
            continue
        assert plan_n >= actual_n * 0.8
        assert plan_n <= actual_n * 12.0
        benchmark.extra_info.setdefault("ratios", []).append(
            round(plan_n / actual_n, 2)
        )
