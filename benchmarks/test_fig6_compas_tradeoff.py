"""Fig. 6 — fairness-accuracy trade-off on ProPublica (tau_c = 0.1, T = 1)."""

from conftest import MODELS, emit
from tradeoff_common import check_tradeoff_shape

from repro.experiments import run_tradeoff


def test_fig6_compas_tradeoff(benchmark, compas):
    result = benchmark.pedantic(
        lambda: run_tradeoff(
            compas, "ProPublica", tau_c=0.1, T=1.0, models=MODELS, seed=0
        ),
        rounds=1,
        iterations=1,
    )
    check_tradeoff_shape(result, benchmark)
