"""Ablation — the three mitigation families side by side.

The paper's related work partitions mitigation into pre-processing (its
Remedy), in-processing (GerryFair), and post-processing (per-group
thresholds, Hardt et al.), but Table III compares only the first two
families.  This ablation completes the triangle on the Adult-like data and
checks the textbook trade-offs: post-processing is the cheapest and
requires score access only; in-processing needs full training control; the
pre-processing Remedy is model-agnostic and keeps the model untouched.
"""

from conftest import emit

from repro.experiments import format_table, run_baseline_comparison


def test_ablation_three_families(benchmark, adult):
    table = benchmark.pedantic(
        lambda: run_baseline_comparison(
            adult, gerryfair_iters=10, seed=0, include_postprocess=True
        ),
        rounds=1,
        iterations=1,
    )
    rows = {r.approach: r for r in table.rows}
    family = {
        "remedy": "pre-processing (this paper)",
        "gerryfair": "in-processing",
        "postprocess": "post-processing",
    }
    emit(
        format_table(
            ("approach", "family", "violation", "accuracy", "time (s)"),
            [
                (
                    name,
                    family.get(name, "-"),
                    rows[name].fairness_violation,
                    rows[name].accuracy,
                    rows[name].seconds,
                )
                for name in ("original", "remedy", "gerryfair", "postprocess")
            ],
            title="Ablation — pre vs in vs post processing (Adult, LG)",
        )
    )
    original = rows["original"]
    for name in ("remedy", "gerryfair", "postprocess"):
        benchmark.extra_info[f"{name}_violation"] = round(
            rows[name].fairness_violation, 4
        )
        # Every family must improve the violation without wrecking accuracy.
        assert rows[name].fairness_violation <= original.fairness_violation + 1e-9
        assert original.accuracy - rows[name].accuracy < 0.1
