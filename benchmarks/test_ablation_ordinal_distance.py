"""Ablation — unit vs. ordinal attribute distances (§II-B remark).

"In cases where there is a meaningful structure within the attribute value
domain, such as a natural numeric ordering for age groups ..., it is
reasonable and straightforward to refine the attribute distance."  The
COMPAS-like attributes ``age`` (<25, 25-45, >45) and ``priors`` (0, 1-3,
>3) are exactly such ordered domains.  The ordinal metric shrinks a T=1
neighbourhood to *adjacent* bins only; this ablation measures how that
changes the identified IBS.
"""

from conftest import emit

from repro.core import (
    Hierarchy,
    imbalance_score,
    is_biased,
    naive_neighbor_counts,
)
from repro.experiments import format_table

TAU_C = 0.1
ATTRS = ("age", "priors")


def identify_with_metric(dataset, metric: str, k: int = 30):
    """IBS over the ordered COMPAS attributes under a given metric."""
    hierarchy = Hierarchy(dataset, attrs=ATTRS)
    found = []
    for level in hierarchy.levels():
        for node in hierarchy.nodes_at_level(level):
            for pattern, pos, neg in node.iter_regions(min_size=k + 1):
                npos, nneg = naive_neighbor_counts(node, pattern, 1.0, metric=metric)
                ratio = imbalance_score(pos, neg)
                nratio = imbalance_score(npos, nneg)
                if is_biased(ratio, nratio, TAU_C):
                    found.append((pattern, ratio, nratio))
    return found


def test_ablation_ordinal_distance(benchmark, compas):
    results = benchmark.pedantic(
        lambda: {
            metric: identify_with_metric(compas, metric)
            for metric in ("euclidean-unit", "ordinal")
        },
        rounds=1,
        iterations=1,
    )
    unit = {p for p, *__ in results["euclidean-unit"]}
    ordinal = {p for p, *__ in results["ordinal"]}

    rows = [
        ("euclidean-unit (paper default)", len(unit)),
        ("ordinal (refined, adjacent bins only)", len(ordinal)),
        ("agreement (both metrics)", len(unit & ordinal)),
        ("only unit", len(unit - ordinal)),
        ("only ordinal", len(ordinal - unit)),
    ]
    emit(
        format_table(
            ("neighbourhood metric", "|IBS| over (age, priors)"),
            rows,
            title="Ablation — unit vs ordinal attribute distance (T=1)",
        )
    )
    benchmark.extra_info["unit"] = len(unit)
    benchmark.extra_info["ordinal"] = len(ordinal)
    benchmark.extra_info["agreement"] = len(unit & ordinal)

    # Both metrics must find the paper's running-example region.
    from repro.core import Pattern

    running = Pattern.from_labels(compas.schema, {"age": "25-45", "priors": ">3"})
    assert running in unit
    assert running in ordinal
    # The metrics agree on a solid core of regions.
    assert len(unit & ordinal) >= max(1, min(len(unit), len(ordinal)) // 2)
