"""Fig. 8 — the distance threshold: T = 1 vs T = |X| (DT).

Paper claims: both settings mitigate subgroup unfairness in all cases;
T = |X| tends to win on few protected attributes (ProPublica, |X| = 3)
while T = 1 is more likely optimal with many (Adult, |X| = 6).
"""

from conftest import emit

from repro.experiments import sweep_T


def test_fig8_compas_T(benchmark, compas):
    sweep = benchmark.pedantic(
        lambda: sweep_T(compas, "ProPublica", tau_c=0.1, model="dt", seed=0),
        rounds=1,
        iterations=1,
    )
    emit(sweep.table("Fig. 8 — ProPublica, T = 1 vs T = |X| (DT)"))
    for p in sweep.points:
        benchmark.extra_info[f"fi_fpr_T={p.value}"] = round(
            p.result.fairness_index_fpr, 4
        )
        # Both T settings mitigate unfairness relative to the original.
        assert (
            p.result.fairness_index_fpr <= sweep.baseline.fairness_index_fpr + 1e-9
        )


def test_fig8_adult_T(benchmark, adult):
    sweep = benchmark.pedantic(
        lambda: sweep_T(adult, "Adult", tau_c=0.5, model="dt", seed=0),
        rounds=1,
        iterations=1,
    )
    emit(sweep.table("Fig. 8 — Adult, T = 1 vs T = |X| (DT)"))
    for p in sweep.points:
        assert (
            p.result.fairness_index_fpr <= sweep.baseline.fairness_index_fpr + 1e-9
        )
