"""Shared assertions for the Figs. 4/5/6 trade-off benchmarks.

What we pin down, per dataset (see EXPERIMENTS.md for the full discussion):

* for every downstream model, *some* Lattice-scope remedy technique improves
  the fairness index under both FPR and FNR versus the unmitigated model —
  the paper's core claim that remedying IBS mitigates subgroup unfairness
  regardless of the classifier;
* for the decision tree (the paper's running model), Lattice + preferential
  sampling itself improves both indexes and beats the coarse Top scope —
  matching §V-B2's reported ordering;
* the accuracy cost of every improving variant stays below 0.1 (the paper's
  bound).

On this synthetic substrate the *borderline-targeted* techniques (PS,
massaging) can overshoot for linear models, where uniform under/over-
sampling reproduces the paper's direction instead; asserting on the best
technique per model captures the claim without hiding that caveat.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import EvalResult, TradeoffResult

LATTICE_VARIANTS = (
    "scope:lattice",  # preferential sampling
    "technique:oversampling",
    "technique:undersampling",
    "technique:massaging",
)


def best_lattice_variant(result: TradeoffResult, model: str) -> EvalResult:
    """The lattice-scope remedy minimising the combined fairness index."""
    candidates = [
        r
        for r in result.all_results()
        if r.model == model and r.variant in LATTICE_VARIANTS
    ]
    return min(
        candidates, key=lambda r: r.fairness_index_fpr + r.fairness_index_fnr
    )


def check_tradeoff_shape(result: TradeoffResult, benchmark) -> None:
    emit(result.table())

    originals = {r.model: r for r in result.by_variant("original")}
    assert originals

    for model, original in originals.items():
        best = best_lattice_variant(result, model)
        benchmark.extra_info[f"{model}_fi_fpr_original"] = round(
            original.fairness_index_fpr, 4
        )
        benchmark.extra_info[f"{model}_fi_fpr_best"] = round(
            best.fairness_index_fpr, 4
        )
        benchmark.extra_info[f"{model}_best_variant"] = best.variant

        assert best.fairness_index_fpr < original.fairness_index_fpr + 1e-9, (
            f"{model}: no lattice technique improved the FPR fairness index"
        )
        assert best.fairness_index_fnr < original.fairness_index_fnr + 1e-9, (
            f"{model}: no lattice technique improved the FNR fairness index"
        )
        assert original.accuracy - best.accuracy < 0.1, (
            f"{model}: accuracy cost of {best.variant} exceeds 0.1"
        )

    # The paper's headline configuration on its running model: DT with
    # Lattice + PS improves both indexes and beats the Top scope.
    if "dt" in originals:
        dt_orig = originals["dt"]
        dt_lattice = next(
            r for r in result.by_variant("scope:lattice") if r.model == "dt"
        )
        dt_top = next(r for r in result.by_variant("scope:top") if r.model == "dt")
        assert dt_lattice.fairness_index_fpr < dt_orig.fairness_index_fpr
        assert dt_lattice.fairness_index_fnr < dt_orig.fairness_index_fnr
        assert dt_lattice.fairness_index_fpr <= dt_top.fairness_index_fpr + 1e-9
