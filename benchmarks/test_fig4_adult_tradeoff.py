"""Fig. 4 — fairness-accuracy trade-off on Adult (tau_c = 0.5, T = 1).

Panels (a)-(c): Original vs Lattice/Leaf/Top with preferential sampling;
panel (d): the four pre-processing techniques under the Lattice scope.
"""

from conftest import MODELS, emit
from tradeoff_common import check_tradeoff_shape

from repro.experiments import run_tradeoff


def test_fig4_adult_tradeoff(benchmark, adult):
    result = benchmark.pedantic(
        lambda: run_tradeoff(adult, "Adult", tau_c=0.5, T=1.0, models=MODELS, seed=0),
        rounds=1,
        iterations=1,
    )
    check_tradeoff_shape(result, benchmark)
