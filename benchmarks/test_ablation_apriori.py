"""Ablation — Apriori pruning in the subgroup auditor's pattern engine.

DivExplorer [26] mines only patterns above a support threshold;
anti-monotonicity prunes the exponential lattice.  This ablation counts
how many patterns the Apriori miner materialises versus the lattice's cell
total at increasing support thresholds, and verifies the miner agrees with
the brute-force enumerator while touching far fewer candidates.
"""

from conftest import emit

from repro.audit import brute_force_frequent_patterns, mine_frequent_patterns
from repro.data.synth import load_adult
from repro.experiments import format_table

SUPPORT_GRID = (0.001, 0.01, 0.05, 0.2)


def total_lattice_cells(dataset, attrs) -> int:
    """Number of cells across every attribute subset (the unpruned space)."""
    import itertools

    import numpy as np

    total = 0
    cards = dict(zip(attrs, dataset.schema.cardinalities(attrs)))
    for level in range(1, len(attrs) + 1):
        for subset in itertools.combinations(attrs, level):
            total += int(np.prod([cards[a] for a in subset]))
    return total


def test_ablation_apriori_pruning(benchmark):
    dataset = load_adult(10_000, seed=5)
    attrs = dataset.protected
    unpruned = total_lattice_cells(dataset, attrs)

    def run():
        rows = []
        for support in SUPPORT_GRID:
            min_count = max(1, int(support * dataset.n_rows))
            frequent = mine_frequent_patterns(dataset, min_count)
            rows.append((support, min_count, len(frequent), unpruned))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            ("min support", "min count", "frequent patterns", "lattice cells"),
            rows,
            title="Ablation — Apriori pruning vs the full pattern lattice",
        )
    )

    counts = {support: n for support, __, n, __u in rows}
    # Higher support -> monotonically fewer surviving patterns.
    supports = list(SUPPORT_GRID)
    for lo, hi in zip(supports[:-1], supports[1:]):
        assert counts[hi] <= counts[lo]
    # At a 20% support floor the survivors are a small fraction of the space.
    assert counts[0.2] < unpruned * 0.05

    # Exactness: the pruned miner agrees with brute force at one threshold.
    min_count = max(1, int(0.05 * dataset.n_rows))
    apriori = mine_frequent_patterns(dataset, min_count)
    brute = brute_force_frequent_patterns(dataset, min_count)
    assert [(f.pattern, f.count) for f in apriori] == [
        (f.pattern, f.count) for f in brute
    ]
    benchmark.extra_info["patterns_by_support"] = {
        str(k): v for k, v in counts.items()
    }
