"""Table II — dataset characteristics.

Regenerates the paper's dataset summary (|A|, |X|, protected attributes,
data size) from the synthetic stand-ins and benchmarks their generation.
"""

from conftest import ADULT_ROWS, COMPAS_ROWS, LAWSCHOOL_ROWS, emit

from repro.data.synth import load_adult, load_compas, load_lawschool
from repro.experiments import format_table


def summarize(name, dataset):
    return (
        name,
        len(dataset.schema),
        len(dataset.protected),
        ", ".join(dataset.protected),
        dataset.n_rows,
    )


def test_table2_characteristics(benchmark, adult, compas, lawschool):
    def build():
        return (
            load_adult(min(ADULT_ROWS, 5000), seed=5),
            load_compas(min(COMPAS_ROWS, 5000), seed=11),
            load_lawschool(min(LAWSCHOOL_ROWS, 4590), seed=23),
        )

    benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [
        summarize("Adult", adult),
        summarize("ProPublica", compas),
        summarize("Law School", lawschool),
    ]
    emit(
        format_table(
            ("dataset", "|A|", "|X|", "protected attributes", "rows"),
            rows,
            title="Table II — dataset characteristics",
        )
    )
    benchmark.extra_info["adult_rows"] = adult.n_rows
    benchmark.extra_info["compas_rows"] = compas.n_rows
    benchmark.extra_info["lawschool_rows"] = lawschool.n_rows
    assert len(adult.protected) == 6
    assert len(compas.protected) == 3
    assert len(lawschool.protected) == 4
