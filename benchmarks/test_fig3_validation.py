"""Fig. 3 — connection between representation bias in IBS and unfair
subgroups (ProPublica, tau_c = 0.1, T = 1, all four models, FPR and FNR).

Paper claim to reproduce: (nearly) every unfair subgroup either belongs to
the IBS or dominates a significant biased region, and positively skewed
regions align with high-FPR subgroups.
"""

from conftest import MODELS, emit

from repro.experiments import run_validation, validation_summary, validation_table


def test_fig3_unfair_subgroups_vs_ibs(benchmark, compas):
    results = benchmark.pedantic(
        lambda: run_validation(compas, models=MODELS, tau_c=0.1, T=1.0, seed=0),
        rounds=1,
        iterations=1,
    )
    emit(validation_table(results, schema=compas.schema))
    emit(validation_summary(results))

    total_unfair = sum(r.n_unfair for r in results)
    total_explained = sum(r.n_explained for r in results)
    benchmark.extra_info["unfair_subgroups"] = total_unfair
    benchmark.extra_info["explained"] = total_explained

    assert total_unfair > 0, "the biased COMPAS data must yield unfair subgroups"
    # Paper: "nearly all unfair subgroups exhibit representation bias".
    assert total_explained / total_unfair >= 0.85

    # Directional claim: positively skewed regions go with high-FPR groups.
    for result in results:
        if result.gamma != "fpr":
            continue
        for s in result.subgroups:
            if s.in_ibs and s.subgroup.gamma_group > s.subgroup.gamma_dataset:
                assert s.skew_direction >= 0
