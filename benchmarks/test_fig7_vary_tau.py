"""Fig. 7 — fairness index and accuracy as tau_c varies (DT, T = 1).

Panel (a): ProPublica; panel (b): Adult.  Paper claim: lower tau_c remedies
more regions, generally improving fairness at some accuracy cost; the Adult
dataset (more protected attributes) stays robust even at higher tau_c.
"""

from conftest import emit

from repro.experiments import DEFAULT_TAU_GRID, sweep_tau_c


def run_panel(dataset, name):
    return sweep_tau_c(
        dataset, name, tau_grid=DEFAULT_TAU_GRID, T=1.0, model="dt", seed=0
    )


def test_fig7a_compas_tau_sweep(benchmark, compas):
    sweep = benchmark.pedantic(
        lambda: run_panel(compas, "ProPublica"), rounds=1, iterations=1
    )
    emit(sweep.table("Fig. 7a — ProPublica, varying tau_c (DT, FPR)"))
    low = next(p for p in sweep.points if p.value == 0.1)
    high = next(p for p in sweep.points if p.value == 0.9)
    benchmark.extra_info["fi_tau_0.1"] = round(low.result.fairness_index_fpr, 4)
    benchmark.extra_info["fi_tau_0.9"] = round(high.result.fairness_index_fpr, 4)

    def combined(r):
        return r.fairness_index_fpr + r.fairness_index_fnr

    # More updates (small tau) must be at least as fair overall as
    # almost-none (the paper's curve is not strictly monotone either, so we
    # compare the combined FPR+FNR index at the endpoints).
    assert combined(low.result) <= combined(high.result) + 1e-9
    # And must improve on the unmitigated baseline.
    assert combined(low.result) < combined(sweep.baseline)
    assert low.result.fairness_index_fpr < sweep.baseline.fairness_index_fpr


def test_fig7b_adult_tau_sweep(benchmark, adult):
    sweep = benchmark.pedantic(
        lambda: run_panel(adult, "Adult"), rounds=1, iterations=1
    )
    emit(sweep.table("Fig. 7b — Adult, varying tau_c (DT, FPR)"))
    low = next(p for p in sweep.points if p.value == 0.1)
    assert low.result.fairness_index_fpr <= sweep.baseline.fairness_index_fpr
    # Paper: Adult exhibits robust fairness even at higher tau_c values.
    mid = next(p for p in sweep.points if p.value == 0.5)
    assert mid.result.fairness_index_fpr <= sweep.baseline.fairness_index_fpr
