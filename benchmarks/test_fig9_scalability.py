"""Fig. 9 — scalability of IBS identification and remedy (Adult, 8 attrs).

Panels: (a) identification runtime vs #protected attributes, naive vs
optimized; (b) remedy runtime vs #attributes per technique; (c)
identification runtime vs data size; (d) remedy runtime vs data size.

Shapes to hold (paper): runtime grows exponentially in #attributes; the
optimized identifier beats the naive one by a growing factor (paper: up to
~5x); the remedy is much cheaper than identification and its ranker-based
techniques (PS, massaging) cost more than uniform undersampling.
"""

import os

from conftest import emit

from repro.experiments import (
    identification_vs_attrs,
    identification_vs_size,
    remedy_vs_attrs,
    remedy_vs_size,
    speedup_summary,
)

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
N_ROWS = 45_222 if FULL else 10_000
ATTR_GRID = (2, 3, 4, 5, 6, 7, 8) if FULL else (2, 4, 6, 8)
SIZE_GRID = (5_000, 10_000, 20_000, 45_222) if FULL else (2_500, 5_000, 10_000)


def test_fig9a_identification_vs_attrs(benchmark):
    result = benchmark.pedantic(
        lambda: identification_vs_attrs(n_rows=N_ROWS, attr_grid=ATTR_GRID),
        rounds=1,
        iterations=1,
    )
    emit(result.table("#attrs"))
    speedups = speedup_summary(result)
    emit(f"naive/optimized speedup by #attrs: { {k: round(v,1) for k,v in speedups.items()} }")
    benchmark.extra_info["speedups"] = {str(k): round(v, 2) for k, v in speedups.items()}

    top = max(ATTR_GRID)
    assert speedups[top] > 2.0, "optimized must clearly beat naive at scale"
    opt = {p.x: p.seconds for p in result.points if p.label == "optimized"}
    assert opt[top] > opt[min(ATTR_GRID)], "runtime must grow with #attrs"


def test_fig9b_remedy_vs_attrs(benchmark):
    result = benchmark.pedantic(
        lambda: remedy_vs_attrs(n_rows=N_ROWS, attr_grid=ATTR_GRID),
        rounds=1,
        iterations=1,
    )
    emit(result.table("#attrs"))
    regions = {(p.x, p.label): p.detail for p in result.points}
    # More protected attributes -> at least as many biased regions to fix.
    top, bottom = max(ATTR_GRID), min(ATTR_GRID)
    assert regions[(top, "undersampling")] >= regions[(bottom, "undersampling")]


def test_fig9c_identification_vs_size(benchmark):
    result = benchmark.pedantic(
        lambda: identification_vs_size(size_grid=SIZE_GRID, n_attrs=8),
        rounds=1,
        iterations=1,
    )
    emit(result.table("rows"))
    naive = {p.x: p.seconds for p in result.points if p.label == "naive"}
    assert naive[max(SIZE_GRID)] > naive[min(SIZE_GRID)], (
        "naive identification cost must grow with data size"
    )
    speedups = speedup_summary(result)
    assert speedups[max(SIZE_GRID)] > 1.5


def test_fig9d_remedy_vs_size(benchmark):
    result = benchmark.pedantic(
        lambda: remedy_vs_size(size_grid=SIZE_GRID, n_attrs=8),
        rounds=1,
        iterations=1,
    )
    emit(result.table("rows"))
    # Remedy cost must grow with data size for every technique (Fig. 9d's
    # series all rise).  The paper also finds the ranker-based techniques
    # (PS, massaging) costlier than uniform undersampling; with our fast
    # naive-Bayes ranker that gap is within timing jitter at these sizes,
    # so it is recorded but not asserted.
    big, small = max(SIZE_GRID), min(SIZE_GRID)
    per_technique = {}
    for p in result.points:
        per_technique.setdefault(p.label, {})[p.x] = p.seconds
    for technique, series in per_technique.items():
        assert series[big] > series[small] * 0.5, technique
    at_big = {p.label: p.seconds for p in result.points if p.x == big}
    benchmark.extra_info["seconds_at_max_size"] = {
        k: round(v, 3) for k, v in at_big.items()
    }
