"""Ablation — is the fairness improvement robust across seeds?

The paper reports single-run numbers; this ablation repeats the headline
remedy-vs-original comparison over five train/test splits and sampler seeds
and asserts the improvement is systematic, not a lucky split.
"""

from conftest import emit

from repro.core.pipeline import RemedyConfig
from repro.experiments.robustness import run_seed_sweep


def test_ablation_seed_robustness(benchmark, compas):
    result = benchmark.pedantic(
        lambda: run_seed_sweep(
            compas,
            "ProPublica",
            config=RemedyConfig(tau_c=0.1, technique="undersampling"),
            model="dt",
            seeds=range(5),
        ),
        rounds=1,
        iterations=1,
    )
    emit(result.table())
    benchmark.extra_info["improvement_rate"] = result.improvement_rate
    benchmark.extra_info["mean_improvement"] = round(result.mean_improvement, 4)
    benchmark.extra_info["mean_accuracy_cost"] = round(
        result.mean_accuracy_cost, 4
    )

    # The remedy must help in at least 4 of 5 seeds, on average by a clear
    # margin, at a mean accuracy cost below the paper's 0.1 bound.
    assert result.improvement_rate >= 0.8
    assert result.mean_improvement > 0.05
    assert result.mean_accuracy_cost < 0.1
