"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and prints
it (run pytest with ``-s`` to see the tables).  By default the workloads are
scaled down so the whole suite finishes in a few minutes; set
``REPRO_BENCH_FULL=1`` to run at the paper's dataset sizes (Table II).
"""

from __future__ import annotations

import os

import pytest

from repro.data.synth import load_adult, load_compas, load_lawschool

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

ADULT_ROWS = 45_222 if FULL else 12_000
COMPAS_ROWS = 6_172  # full size; it is small
LAWSCHOOL_ROWS = 4_590  # full size; it is small
MODELS = ("dt", "rf", "lg", "nn") if FULL else ("dt", "lg")


@pytest.fixture(scope="session")
def adult():
    return load_adult(ADULT_ROWS, seed=5)


@pytest.fixture(scope="session")
def compas():
    return load_compas(COMPAS_ROWS, seed=11)


@pytest.fixture(scope="session")
def lawschool():
    return load_lawschool(LAWSCHOOL_ROWS, seed=23)


def emit(table: str) -> None:
    """Print a regenerated paper artefact (visible with ``pytest -s``)."""
    print()
    print(table)
