"""Legacy shim so editable installs work offline (no wheel package here)."""
from setuptools import setup

setup()
